"""Discrete-event simulation kernel.

The whole simulator is driven by a single event heap, in the style of gem5's
event queue: components never busy-wait on cycles, they schedule callbacks at
future times.  Simulation time is an integer number of *ticks*; each model
decides its own tick <-> cycle mapping (the GPU model uses one tick per GPU
cycle, the SoC model converts component clocks into GPU-cycle ticks).

Events scheduled at the same tick fire in FIFO scheduling order, which keeps
runs deterministic regardless of heap tie-breaking.

Robustness (the ``repro.health`` subsystem builds on these hooks):

* :meth:`EventQueue.run` / :meth:`EventQueue.run_until` return a
  :class:`RunResult` stating *why* the loop stopped (queue drained, event
  budget exhausted, time horizon reached) instead of a bare count;
* events carry optional provenance (owning component, schedule site) and a
  raising callback can be wrapped into a :class:`SimulationError` that
  reports it — with a configurable fail-fast vs. quarantine-and-continue
  policy (``propagate`` keeps the seed behaviour of re-raising unchanged).

Performance (the ``repro.fastpath`` layer, DESIGN.md §12): the queue has a
*bucketed* calendar mode, on by default, that drains all same-tick events
from a FIFO bucket instead of re-heapifying per event — MGSim's kernel
idiom.  Ordering proof sketch: the bucket for tick T is filled from the
heap in ascending ``seq`` order (heap pops at equal time break ties on
``seq``), and any event scheduled *at* T while T is draining carries a
``seq`` larger than every event already issued, so appending it at the
tail preserves the global (time, seq) total order exactly.  Both modes are
therefore bit-identical; the golden tests pin this.
"""

from __future__ import annotations

import enum
import heapq
import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro import fastpath


class SimulationError(RuntimeError):
    """A callback raised inside the event loop.

    Carries event provenance so a failure deep in a frame is diagnosable:
    the owning component (when the scheduler was told), the schedule site
    (when provenance capture is enabled), and the tick at which the event
    fired.  The original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, tick: int = 0,
                 owner: Optional[str] = None,
                 site: Optional[str] = None,
                 callback_name: Optional[str] = None) -> None:
        super().__init__(message)
        self.tick = tick
        self.owner = owner
        self.site = site
        self.callback_name = callback_name

    @classmethod
    def from_event(cls, event: "Event", tick: int,
                   cause: BaseException) -> "SimulationError":
        name = getattr(event.callback, "__qualname__",
                       repr(event.callback))
        parts = [f"event callback {name} raised "
                 f"{type(cause).__name__}: {cause}",
                 f"tick={tick}"]
        if event.owner:
            parts.append(f"owner={event.owner}")
        if event.site:
            parts.append(f"scheduled at {event.site}")
        return cls("; ".join(parts), tick=tick, owner=event.owner,
                   site=event.site, callback_name=name)


class StopReason(enum.Enum):
    """Why an event-loop run returned."""

    DRAINED = "drained"          # no live events remain
    BUDGET = "budget"            # max_events executed
    HORIZON = "horizon"          # next event lies beyond the time limit
    STOPPED = "stopped"          # a callback called request_stop()


@dataclass(frozen=True)
class RunResult:
    """Outcome of :meth:`EventQueue.run` / :meth:`EventQueue.run_until`."""

    executed: int
    reason: StopReason

    @property
    def drained(self) -> bool:
        return self.reason is StopReason.DRAINED


class Event:
    """A scheduled callback.

    The queue orders events by (time, sequence number) so simultaneous
    events fire in the order they were scheduled; the ordering lives in
    the heap entries (plain tuples, compared at C speed), not here.

    A ``__slots__`` class rather than a dataclass: one is constructed per
    scheduled event — millions per simulated frame — and slot storage both
    shrinks the instance and speeds attribute access on the hot path.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "owner", "site")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any],
                 args: tuple = (), owner: Optional[str] = None,
                 site: Optional[str] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner
        self.site = site

    def cancel(self) -> None:
        """Deschedule this event; a cancelled event's callback never runs."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        flags = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time}, seq={self.seq}, "
                f"callback={name}{flags})")


#: Error policies for :class:`EventQueue`.
ERROR_POLICIES = ("propagate", "wrap", "quarantine")


class EventQueue:
    """A deterministic discrete-event scheduler.

    ``error_policy`` controls what happens when a callback raises:

    * ``"propagate"`` (default) — re-raise unchanged (seed behaviour);
    * ``"wrap"`` — fail fast with a :class:`SimulationError` carrying the
      event's provenance, chaining the original exception;
    * ``"quarantine"`` — record the wrapped error in :attr:`errors` and
      keep running (a poisoned component is sidelined, the frame survives).

    ``bucketed`` selects the calendar-bucket drain for same-tick events
    (see module docstring); ``None`` defers to the global
    :mod:`repro.fastpath` switch.  Both modes fire the same events in the
    same (time, seq) order — the mode is a constant-factor choice only.

    >>> q = EventQueue()
    >>> fired = []
    >>> _ = q.schedule(5, fired.append, "a")
    >>> _ = q.schedule(3, fired.append, "b")
    >>> q.run().reason
    <StopReason.DRAINED: 'drained'>
    >>> fired
    ['b', 'a']
    """

    def __init__(self, error_policy: str = "propagate",
                 debug_provenance: bool = False,
                 bucketed: Optional[bool] = None) -> None:
        if error_policy not in ERROR_POLICIES:
            raise ValueError(f"error_policy must be one of {ERROR_POLICIES},"
                             f" got {error_policy!r}")
        # Heap entries are (time, seq, event) tuples: tuple comparison runs
        # in C, which matters at millions of events per simulated frame.
        self._heap: list[tuple[int, int, Event]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_fired: int = 0
        # Calendar bucket: the FIFO of events at the tick currently being
        # drained.  ``_bucket_time`` is the tick the bucket belongs to
        # (-1 = no bucket yet); schedule() appends same-tick work here
        # directly, skipping the heap round-trip.
        self._bucketed = fastpath.enabled() if bucketed is None else bucketed
        self._bucket: deque[Event] = deque()
        self._bucket_time: int = -1
        self._stop_requested = False
        self.error_policy = error_policy
        self.debug_provenance = debug_provenance
        self.errors: list[SimulationError] = []
        # Optional trace sink (repro.trace.Tracer attaches itself here).
        # Hooks below are a single None check when tracing is off, so the
        # kernel's event schedule is untouched either way.
        self.tracer = None
        # Optional invariant checker (repro.sanitize.Sanitizer attaches
        # itself here); its per-event hook rides the fired-event cadence
        # so age scans never schedule events of their own.
        self.sanitizer = None

    @property
    def now(self) -> int:
        """Current simulation time in ticks."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for debugging/limits)."""
        return self._events_fired

    @property
    def bucketed(self) -> bool:
        """Whether the same-tick calendar-bucket drain is active."""
        return self._bucketed

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any,
                 owner: Optional[str] = None) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + int(delay), callback, args, owner)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any,
                    owner: Optional[str] = None) -> Event:
        """Schedule ``callback(*args)`` at absolute tick ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(int(time), callback, args, owner)

    def _push(self, time: int, callback: Callable[..., Any], args: tuple,
              owner: Optional[str]) -> Event:
        seq = self._seq
        # Event construction spelled out (__new__ + slot stores) to skip
        # the __init__ call frame — this is the per-event allocation site.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.owner = owner
        event.site = None
        self._seq = seq + 1
        if self.debug_provenance:
            event.site = self._capture_site()
        if time == self._bucket_time and self._bucketed:
            # Same-tick schedule while (or after) that tick's bucket is
            # live: the new seq exceeds every pending one, so a tail
            # append preserves (time, seq) order with no heap traffic.
            self._bucket.append(event)
        else:
            heapq.heappush(self._heap, (time, seq, event))
        if self.tracer is not None:
            self.tracer.kernel_scheduled(event)
        return event

    @staticmethod
    def _capture_site() -> Optional[str]:
        """First stack frame outside this module (``file:line``)."""
        frame = sys._getframe(1)
        while frame is not None and frame.f_code.co_filename == __file__:
            frame = frame.f_back
        if frame is None:
            return None
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    def advance_to(self, time: int) -> None:
        """Jump ``now`` forward with no events in between (checkpoint
        restore: a resumed run re-enters simulated time at the snapshot
        tick).  Refuses to travel backwards or over pending events."""
        if time < self._now:
            raise ValueError(
                f"cannot advance into the past (time={time}, now={self._now})")
        next_time = self.peek_time()
        if next_time is not None and next_time < time:
            raise ValueError(
                f"cannot advance over pending events (next={next_time}, "
                f"target={time})")
        self._now = int(time)

    def empty(self) -> bool:
        """True when no live events remain."""
        return self.peek_time() is None

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        bucket = self._bucket
        while bucket and bucket[0].cancelled:
            bucket.popleft()
        if bucket:
            return self._bucket_time
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        if self._bucketed:
            bucket = self._bucket
            while bucket:
                event = bucket.popleft()
                if not event.cancelled:
                    return self._fire(event)
            heap = self._heap
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
            if not heap:
                return False
            time, _, event = heapq.heappop(heap)
            self._now = time
            self._bucket_time = time
            # Pull the whole same-tick cohort out of the heap in one pass
            # (pops at equal time come out in seq order); the drain above
            # then runs them FIFO with no further heap traffic.
            while heap and heap[0][0] == time:
                bucket.append(heapq.heappop(heap)[2])
            return self._fire(event)
        # Reference path (seed behaviour): one heap pop per event.
        self._drop_cancelled_head()
        if not self._heap:
            return False
        _, __, event = heapq.heappop(self._heap)
        self._now = event.time
        return self._fire(event)

    def _fire(self, event: Event) -> bool:
        """Execute one event at ``self._now`` under the error policy."""
        self._events_fired += 1
        if self.tracer is not None:
            self.tracer.kernel_fired(event)
        if self.sanitizer is not None:
            # May raise a SanitizerViolation; deliberately outside the
            # error-policy wrapping below — a violation is a verdict, not
            # a component fault to quarantine.
            self.sanitizer.on_event(self._now, self._events_fired)
        # The policy check lives in the except clause so the happy path
        # pays nothing for it (try/except entry is free on CPython 3.11).
        try:
            event.callback(*event.args)
        except SimulationError:
            raise               # already wrapped (e.g. a watchdog report)
        except Exception as exc:
            self._apply_error_policy(event, exc)
        return True

    def _apply_error_policy(self, event: Event, exc: Exception) -> None:
        """Shared except-clause body for :meth:`_fire` and the fused loops.

        Must be called from inside an active ``except`` block (the bare
        ``raise`` re-raises the exception being handled)."""
        if self.error_policy == "propagate":
            raise
        error = SimulationError.from_event(event, self._now, exc)
        error.__cause__ = exc
        if self.error_policy == "quarantine":
            self.errors.append(error)
        else:
            raise error from exc

    def run(self, max_events: Optional[int] = None) -> RunResult:
        """Run until the queue drains (or ``max_events`` fire).

        Returns a :class:`RunResult` saying how many events executed and
        *why* the loop stopped — callers must not infer "finished" from a
        count alone (a drained queue and an exhausted budget can both
        return ``max_events``).  A callback may call :meth:`request_stop`
        to make the loop return (reason ``STOPPED``) after that event.

        This is the whole-simulation hot loop: the pop/fire cycle of
        step()+_fire() is fused into one frame (no per-event method
        calls, locals bound once).  It fires the exact same events in the
        exact same (time, seq) order as repeated :meth:`step` calls.
        """
        budget = sys.maxsize if max_events is None else max_events
        count = 0
        heappop = heapq.heappop
        heap = self._heap
        self._stop_requested = False
        if self._bucketed:
            bucket = self._bucket
            while count < budget:
                event = None
                while bucket:
                    head = bucket.popleft()
                    if not head.cancelled:
                        event = head
                        break
                if event is None:
                    while heap and heap[0][2].cancelled:
                        heappop(heap)
                    if not heap:
                        return RunResult(count, StopReason.DRAINED)
                    time, _, event = heappop(heap)
                    self._now = time
                    self._bucket_time = time
                    while heap and heap[0][0] == time:
                        bucket.append(heappop(heap)[2])
                self._events_fired += 1
                if self.tracer is not None:
                    self.tracer.kernel_fired(event)
                if self.sanitizer is not None:
                    self.sanitizer.on_event(self._now, self._events_fired)
                try:
                    event.callback(*event.args)
                except SimulationError:
                    raise
                except Exception as exc:
                    self._apply_error_policy(event, exc)
                count += 1
                if self._stop_requested:
                    return RunResult(count, StopReason.STOPPED)
            return RunResult(count, StopReason.BUDGET)
        while count < budget:
            while heap and heap[0][2].cancelled:
                heappop(heap)
            if not heap:
                return RunResult(count, StopReason.DRAINED)
            _, __, event = heappop(heap)
            self._now = event.time
            self._events_fired += 1
            if self.tracer is not None:
                self.tracer.kernel_fired(event)
            if self.sanitizer is not None:
                self.sanitizer.on_event(self._now, self._events_fired)
            try:
                event.callback(*event.args)
            except SimulationError:
                raise
            except Exception as exc:
                self._apply_error_policy(event, exc)
            count += 1
            if self._stop_requested:
                return RunResult(count, StopReason.STOPPED)
        return RunResult(count, StopReason.BUDGET)

    def request_stop(self) -> None:
        """Make the active :meth:`run` loop return after the current event.

        Called from inside an event callback (e.g. the app loop's last
        frame completing); cleared on every :meth:`run` entry."""
        self._stop_requested = True

    def run_until(self, time: int,
                  max_events: Optional[int] = None) -> RunResult:
        """Run all events scheduled strictly before-or-at ``time``.

        Advances ``now`` to ``time`` even if the queue drains earlier.
        Returns a :class:`RunResult` (reason ``HORIZON`` when stopped by
        the time limit with events still pending).  Events scheduled at
        the current tick *during* a same-tick bucket drain still execute
        this tick — they join the live bucket, which is re-checked every
        iteration (no lost wakeup).
        """
        count = 0
        reason = StopReason.BUDGET
        while max_events is None or count < max_events:
            next_time = self.peek_time()
            if next_time is None:
                reason = StopReason.DRAINED
                break
            if next_time > time:
                reason = StopReason.HORIZON
                break
            self.step()
            count += 1
        if self._now < time:
            # A budget stop can leave events pending at-or-before ``time``;
            # advancing over them would let the next step() run time
            # backwards.
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                self._now = time
        return RunResult(count, reason)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)


class Ticker:
    """Helper that re-schedules a callback at a fixed period while active.

    Components with a natural service rate (e.g. a DRAM controller draining
    its queue, a raster unit at one tile per cycle) use a :class:`Ticker` to
    wake up only while they have work, instead of being ticked every cycle.
    """

    __slots__ = ("_queue", "_period", "_callback", "_owner", "_pending",
                 "_firing", "_kick_requested", "_stopped_during_fire")

    def __init__(self, queue: EventQueue, period: int,
                 callback: Callable[[], bool],
                 owner: Optional[str] = None):
        """``callback`` returns True to keep ticking, False to go idle."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._queue = queue
        # schedule() truncates delays with int(); doing it once here keeps
        # the inlined reschedule in _fire bit-identical for float periods.
        self._period = int(period)
        self._callback = callback
        self._owner = owner
        self._pending: Optional[Event] = None
        self._firing = False
        self._kick_requested = False
        self._stopped_during_fire = False

    @property
    def active(self) -> bool:
        return (self._firing
                or (self._pending is not None and not self._pending.cancelled))

    def kick(self, delay: int = 0) -> None:
        """Ensure the ticker is running; no-op when already scheduled.

        A kick from inside the ticker's own callback (work submitted during
        the current cycle) resumes at the *next* period, never re-firing in
        the same tick.  A kick after a stop — including a stop issued from
        inside the callback — restarts the ticker (last call wins).
        """
        if self._firing:
            self._kick_requested = True
            self._stopped_during_fire = False
            return
        if self.active:
            return
        self._pending = self._queue.schedule(delay, self._fire,
                                             owner=self._owner)

    def stop(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._kick_requested = False
        # A stop from inside the callback must win over the callback's
        # return value — otherwise a component cannot shut itself down.
        self._stopped_during_fire = self._firing

    def _fire(self) -> None:
        event = self._pending        # the Event object now firing
        self._pending = None
        self._firing = True
        self._kick_requested = False
        self._stopped_during_fire = False
        keep_going = self._callback()
        self._firing = False
        if self._stopped_during_fire:
            self._stopped_during_fire = False
            return
        if keep_going or self._kick_requested:
            # Inlined self._queue.schedule(self._period, ...): this is the
            # single hottest schedule site (every ticking component, every
            # cycle), and the period is validated positive at construction.
            queue = self._queue
            if event is not None and not queue.debug_provenance:
                # Recycle the just-fired Event: the kernel dropped its
                # reference when it popped it (a fired event is never
                # cancelled), and the period is >= 1 so the new time is
                # strictly in the future — a plain heap push, never a
                # same-tick bucket append.  A fresh seq keeps the global
                # (time, seq) order identical to allocating a new Event.
                seq = queue._seq
                queue._seq = seq + 1
                event.time = time = queue._now + self._period
                event.seq = seq
                heapq.heappush(queue._heap, (time, seq, event))
                if queue.tracer is not None:
                    queue.tracer.kernel_scheduled(event)
                self._pending = event
            else:
                self._pending = queue._push(queue._now + self._period,
                                            self._fire, (), self._owner)
