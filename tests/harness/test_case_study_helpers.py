"""Unit tests for case-study sweep helpers (with synthetic results)."""

import pytest

from repro.harness.case_study1 import CS1Sweep
from repro.harness.case_study2 import PolicyComparison
from repro.soc.soc import SoCResults


def fake_results(gpu=100.0, total=200.0, display=1000, hit=0.8, bpa=400.0,
                 latency=None):
    return SoCResults(
        config_name="X", frames=[], mean_gpu_time=gpu, mean_total_time=total,
        fps_fraction=1.0, display_requests=display, display_completed=10,
        display_aborted=0, row_hit_rate=hit, bytes_per_activation=bpa,
        dram_bytes={"cpu": 0, "gpu": 0, "display": 0},
        mean_latency=latency or {"cpu": 100.0, "gpu": 200.0,
                                 "display": 50.0},
        bandwidth={"cpu": [], "gpu": [], "display": []})


class TestCS1Sweep:
    def make_sweep(self):
        sweep = CS1Sweep(load="regular")
        sweep.results[("M1", "BAS")] = fake_results(gpu=100, total=200,
                                                    display=1000)
        sweep.results[("M1", "HMC")] = fake_results(gpu=200, total=300,
                                                    display=1500, hit=0.6,
                                                    bpa=200.0)
        return sweep

    def test_normalized_gpu_time(self):
        normalized = self.make_sweep().normalized_gpu_time()
        assert normalized["M1"]["BAS"] == 1.0
        assert normalized["M1"]["HMC"] == 2.0

    def test_normalized_total_time(self):
        normalized = self.make_sweep().normalized_total_time()
        assert normalized["M1"]["HMC"] == 1.5

    def test_normalized_display_service(self):
        normalized = self.make_sweep().normalized_display_service()
        assert normalized["M1"]["HMC"] == 1.5

    def test_row_locality_vs_bas(self):
        locality = self.make_sweep().row_locality_vs_bas()
        assert locality["M1"]["row_hit_rate"] == pytest.approx(0.75)
        assert locality["M1"]["bytes_per_activation"] == pytest.approx(0.5)

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            self.make_sweep().get("M9", "BAS")


class TestPolicyComparison:
    def test_speedups(self):
        comp = PolicyComparison(workload="W1", mlb=100.0, mlc=200.0,
                                sopt=80.0, dfsl=90.0, dfsl_steady=75.0,
                                dfsl_wt=3)
        assert comp.speedup_over_mlb("mlb") == 1.0
        assert comp.speedup_over_mlb("mlc") == 0.5
        assert comp.speedup_over_mlb("sopt") == pytest.approx(1.25)
        assert comp.speedup_over_mlb("dfsl_steady") == pytest.approx(4 / 3)
