"""Fig. 14: M1 rendering bandwidth timelines, BAS vs DASH (DTB).

Paper shape: under DASH the CPU receives higher priority mid-frame, so
GPU read latency rises vs the baseline; at the end of each frame the CPU
sits nearly idle waiting for the GPU — a dependency DASH's scheduling does
not see, which is why over-prioritizing the CPU does not help the
application.
"""

from benchmarks.conftest import run_once
from repro.harness.report import ascii_sparkline, format_series


def test_fig14_timeline(benchmark, cs1_high):
    sweep = run_once(benchmark, lambda: cs1_high)
    bas = sweep.get("M1", "BAS")
    dtb = sweep.get("M1", "DTB")

    print()
    print("Fig. 14 — M1 bandwidth vs time under high load "
          "(bytes per 10k-tick window)")
    for name, results in (("BAS", bas), ("DTB", dtb)):
        for source in ("cpu", "gpu"):
            series = results.bandwidth[source]
            print(f"  {name}.{source:3s} "
                  f"{ascii_sparkline([v for _, v in series])}")
            print(" ", format_series(f"{name}.{source}", series[:20]))

    print(f"GPU mean DRAM latency: BAS={bas.mean_latency['gpu']:.0f} "
          f"DTB={dtb.mean_latency['gpu']:.0f} "
          f"(+{(dtb.mean_latency['gpu'] / bas.mean_latency['gpu'] - 1) * 100:.1f}%)")
    print(f"CPU mean DRAM latency: BAS={bas.mean_latency['cpu']:.0f} "
          f"DTB={dtb.mean_latency['cpu']:.0f}")
    print(f"app frame totals: BAS={bas.mean_total_time:.0f} "
          f"DTB={dtb.mean_total_time:.0f}")

    # Shape 1 (Fig. 14 t2): DASH favors the CPU — CPU latency improves...
    assert dtb.mean_latency["cpu"] < bas.mean_latency["cpu"] * 1.02, \
        "DASH should (at least not hurt) CPU memory latency"
    # Shape 2: ...but that does not translate into faster frames, because
    # the CPU ends up waiting on the GPU anyway (the unseen dependency).
    assert dtb.mean_total_time >= bas.mean_total_time * 0.95, \
        "prioritizing the CPU must not speed up the application"

    # Shape 3 (Fig. 14-7): the CPU goes idle at the end of each frame —
    # its traffic during the GPU phase is far below its prepare-phase rate.
    cpu = dict(bas.bandwidth["cpu"])

    def mean_cpu(t0, t1):
        keys = [t for t in cpu if t0 <= t < t1]
        return sum(cpu[t] for t in keys) / max(len(keys), 1)

    prep = [mean_cpu(r.start, r.cpu_done) for r in bas.frames[1:]]
    render = [mean_cpu(r.cpu_done, r.gpu_done) for r in bas.frames[1:]]
    assert sum(prep) / len(prep) > sum(render) / len(render), \
        "CPU demand should drop during the GPU phase (frame-end idle)"


def test_fig14_fastpath_artifact():
    """Measure the fastpath on the Fig. 14 unit and emit BENCH_fig14.json.

    Runs the case-study-I M1/BAS/high workload twice (fastpath on, then
    off), checks bit-identity, and writes the artifact next to the repo
    root (override with ``REPRO_BENCH_OUT``).  ``REPRO_BENCH_SCALE``
    selects the operating point (default ``smoke`` here so the benchmark
    suite stays fast; ``python -m repro bench`` publishes the default
    scale).
    """
    import os

    from repro import bench

    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    report = bench.run_fig14(scale)
    path = bench.write_report(report, os.environ.get("REPRO_BENCH_OUT", "."))
    print()
    print(bench.format_summary(report))
    print(f"wrote {path}")
    failures = bench.gate(report)
    assert not failures, "\n".join(failures)


def test_fig14_trace_smoke(tmp_path):
    """One frame under tracing: phase spans must tile each app frame with
    no gap and no overlap (the Fig. 14 decomposition), and the emitted
    Chrome-trace JSON must be well-formed."""
    from repro.harness.case_study1 import CS1Config, run_cs1
    from repro.trace import TraceConfig, load_trace, validate_trace

    path = tmp_path / "fig14-smoke-trace.json"
    config = CS1Config(width=48, height=36, num_frames=1, texture_size=64,
                       gpu_frame_period_ticks=120_000,
                       display_period_ticks=60_000,
                       cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    results = run_cs1("M1", "BAS", "high", config=config,
                      trace=TraceConfig(path=str(path), profile=True))

    warnings = validate_trace(load_trace(str(path)))
    assert all("async" in w for w in warnings)

    attribution = results.profile
    frames = attribution.frames("app")
    assert frames, "tracing must capture at least one app frame"
    for frame, phases in frames:
        assert phases, f"{frame.name} has no phase spans"
        cursor = frame.start
        for phase in sorted(phases, key=lambda s: s.start):
            assert phase.start == cursor, (
                f"{phase.name} leaves a gap or overlaps in {frame.name}")
            cursor = phase.end
        assert cursor == frame.end, f"{frame.name} is not fully covered"

    print()
    print(attribution.format(buckets=40))

    for track, busy in attribution.busy_ticks.items():
        assert 0 <= busy <= attribution.end_tick, track
