"""DFSL: dynamic fragment-shading load-balancing (paper §6.3, Algorithm 1).

DFSL exploits frame-to-frame temporal coherence: it periodically spends
``EvalFrames = MaxWT - MinWT`` frames rendering with each candidate
work-tile (WT) size, then locks in the fastest size for ``RunFrames``
frames, then re-evaluates.  The controller is driver-level state: feed it
measured frame times, ask it which WT size to render the next frame with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MAX_TIME = float("inf")


@dataclass
class DFSLController:
    """Algorithm 1, faithfully: evaluation phase then run phase."""

    min_wt: int = 1
    max_wt: int = 10
    run_frames: int = 100

    current_frame: int = 0
    wt_size: int = field(init=False)
    wt_best: int = field(init=False)
    min_exec_time: float = field(init=False, default=MAX_TIME)
    _pending_wt: int = field(init=False, default=0)
    history: list[tuple[int, int, float, str]] = field(init=False,
                                                       default_factory=list)

    def __post_init__(self) -> None:
        if self.min_wt < 1 or self.max_wt <= self.min_wt:
            raise ValueError("need 1 <= min_wt < max_wt")
        if self.run_frames < 1:
            raise ValueError("run_frames must be positive")
        self.wt_size = self.min_wt
        self.wt_best = self.min_wt

    @property
    def eval_frames(self) -> int:
        return self.max_wt - self.min_wt

    @property
    def cycle_length(self) -> int:
        return self.eval_frames + self.run_frames

    @property
    def in_evaluation(self) -> bool:
        return self.current_frame % self.cycle_length < self.eval_frames

    def begin_frame(self) -> int:
        """WT size to render the upcoming frame with."""
        phase = self.current_frame % self.cycle_length
        if phase == 0:
            self.min_exec_time = MAX_TIME
            self.wt_size = self.min_wt
            self.wt_best = self.min_wt
        if phase < self.eval_frames:
            self._pending_wt = self.wt_size
        else:
            self._pending_wt = self.wt_best
        return self._pending_wt

    def end_frame(self, exec_time: float) -> None:
        """Report the measured execution time of the frame just rendered."""
        phase = self.current_frame % self.cycle_length
        if phase < self.eval_frames:
            if exec_time < self.min_exec_time:
                self.min_exec_time = exec_time
                self.wt_best = self._pending_wt
            self.wt_size += 1
            mode = "eval"
        else:
            mode = "run"
        self.history.append((self.current_frame, self._pending_wt,
                             exec_time, mode))
        self.current_frame += 1
