"""The SIMT core timing model (Table 2).

A core holds resident warps (vertex, fragment or compute work — unified
shaders), issues up to ``num_schedulers`` instructions per cycle from ready
warps in loose round-robin order, and replays each warp's recorded
instruction trace:

* ALU/SFU/CTRL ops block the warp for their latency class (in-order issue
  per warp, no intra-warp ILP — a documented simplification);
* MEM ops run through the coalescer and the per-type L1 caches; the warp
  blocks until every coalesced transaction returns;
* every 8th instruction charges an instruction-cache access (one line of
  the program), modeling L1I traffic without per-op fetch bookkeeping.

The core wakes only when it has issueable work: blocked-on-memory warps
re-arm the scheduler from cache callbacks, so idle periods cost no events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.config import SIMTCoreConfig
from repro.common.events import EventQueue, Ticker
from repro.common.ports import Link
from repro.common.stats import StatGroup
from repro.gpu.caches import Cache
from repro.gpu.coalescer import coalesce
from repro.memory.request import MemRequest
from repro.shader.interpreter import WarpTrace
from repro.shader.isa import DEFAULT_LATENCY, LatencyClass, MemSpace

PROGRAM_BASE = 0x0400_0000      # virtual region for instruction fetches
OPS_PER_ILINE = 8


@dataclass
class WarpTask:
    """A warp's recorded trace queued for timing execution."""

    trace: WarpTrace
    kind: str                                   # vertex | fragment | compute
    on_complete: Optional[Callable[["WarpTask"], None]] = None
    program_id: int = 0
    metadata: dict = field(default_factory=dict)


class _ResidentWarp:
    __slots__ = ("task", "op_index", "ready_at", "outstanding", "num_ops")

    def __init__(self, task: WarpTask) -> None:
        self.task = task
        self.op_index = 0
        self.ready_at = 0
        self.outstanding = 0        # pending memory transactions
        self.num_ops = len(task.trace.ops)   # scan-loop bound, len()-free


class SIMTCore:
    """One shader core; see module docstring."""

    def __init__(self, events: EventQueue, config: SIMTCoreConfig,
                 core_id: int, l2_port, noc_latency: int = 8,
                 stats: Optional[StatGroup] = None) -> None:
        self.events = events
        self.config = config
        self.core_id = core_id
        self.stats = stats or StatGroup(f"core{core_id}")
        # One core-to-L2 link, fanned into by all five L1 mem ports.
        self.link = Link(events, f"core{core_id}.link", latency=noc_latency)
        self.link.connect(l2_port)
        self.l1i = Cache(events, config.l1i, f"core{core_id}.l1i", self.link)
        self.l1d = Cache(events, config.l1d, f"core{core_id}.l1d", self.link)
        self.l1t = Cache(events, config.l1t, f"core{core_id}.l1t", self.link)
        self.l1z = Cache(events, config.l1z, f"core{core_id}.l1z", self.link)
        self.l1c = Cache(events, config.l1c, f"core{core_id}.l1c", self.link)
        self._space_routes = {
            MemSpace.TEXTURE: self.l1t,
            MemSpace.DEPTH: self.l1z,
            MemSpace.CONST: self.l1c,
            MemSpace.VERTEX: self.l1c,
            MemSpace.COLOR: self.l1d,
            MemSpace.GLOBAL: self.l1d,
            MemSpace.INSTRUCTION: self.l1i,
        }
        self._resident: list[_ResidentWarp] = []
        self._waiting: list[WarpTask] = []
        self._retire_candidates: list[_ResidentWarp] = []
        self._track = f"core{core_id}"
        self._trace_busy = False    # a "busy" span is open on our track
        self._rr_offset = 0
        self._ticker = Ticker(events, period=1, callback=self._cycle)
        self._latency = dict(DEFAULT_LATENCY)
        self._latency[LatencyClass.ALU] = config.alu_latency
        self._latency[LatencyClass.SFU] = config.sfu_latency
        # Hot-path caches: the scheduler cycle fires every GPU tick while
        # work is resident, so per-cycle dict lookups and attribute chains
        # add up.  Counters are bound lazily (first increment) to keep the
        # stats dump's creation-order contract unchanged.
        self._l1d_line_bytes = config.l1d.line_bytes
        self._l1i_line_bytes = config.l1i.line_bytes
        self._num_schedulers = config.num_schedulers
        self._unblocked = 0         # resident warps with outstanding == 0
        self._next_ready = 0        # lower bound on the next issueable tick
        self._ctr_issued = None
        self._ctr_busy = None
        self._ctr_mem = None
        self._ctr_retired = None
        self._ctr_kinds: dict[str, object] = {}

    # -- submission ---------------------------------------------------------------

    def submit(self, task: WarpTask) -> None:
        counter = self._ctr_kinds.get(task.kind)
        if counter is None:
            counter = self._ctr_kinds[task.kind] = self.stats.counter(
                f"warps.{task.kind}")
        counter.add()
        if len(self._resident) < self.config.max_warps:
            self._install(task)
        else:
            self._waiting.append(task)
        self._trace_activity()
        self._ticker.kick()

    def _install(self, task: WarpTask) -> None:
        warp = _ResidentWarp(task)
        warp.ready_at = now = self.events.now
        self._resident.append(warp)
        self._unblocked += 1
        if now < self._next_ready:
            self._next_ready = now
        if not task.trace.ops:
            self._retire_candidates.append(warp)

    @property
    def resident_warps(self) -> int:
        return len(self._resident)

    @property
    def pending_work(self) -> int:
        return len(self._resident) + len(self._waiting)

    def cache_for(self, space: MemSpace) -> Cache:
        return self._space_routes[space]

    # -- the scheduler cycle --------------------------------------------------------

    def _cycle(self) -> bool:
        now = self.events._now
        issued = 0
        resident = self._resident
        count = len(resident)
        # Idle fast exit: when no retire is pending and either every warp
        # is blocked on memory or none becomes ready before ``_next_ready``
        # (a conservative lower bound), this cycle's scan would issue
        # nothing and touch no stats — only the round-robin offset moves.
        if (count and not self._retire_candidates
                and (self._unblocked == 0 or now < self._next_ready)):
            self._rr_offset = (self._rr_offset + 1) % count
            return self._unblocked > 0
        if count:
            # Loose round-robin without materializing an index list: start
            # at the (normalized) offset and wrap once — same visit order
            # as the seed's ``(offset + i) % count`` construction.
            budget = self._num_schedulers
            index = self._rr_offset % count
            self._rr_offset = (self._rr_offset + 1) % count
            for _ in range(count):
                if issued >= budget:
                    break
                warp = resident[index]
                index += 1
                if index == count:
                    index = 0
                if (warp.outstanding > 0 or warp.ready_at > now
                        or warp.op_index >= warp.num_ops):
                    continue
                self._issue(warp, now)
                issued += 1
        if not issued:
            # The scan proved nothing is issueable right now; tighten the
            # bound so the fast exit covers the wait until the next warp's
            # latency expires (memory wake-ups lower it via _mem_done).
            bound = 1 << 62
            for warp in resident:
                if (warp.outstanding == 0 and warp.op_index < warp.num_ops
                        and warp.ready_at < bound):
                    bound = warp.ready_at
            self._next_ready = bound
        if issued:
            ctr = self._ctr_issued
            if ctr is None:
                ctr = self._ctr_issued = self.stats.counter("issued")
                self._ctr_busy = self.stats.counter("busy_cycles")
            ctr.add(issued)
            self._ctr_busy.add()
        if self._retire_candidates:
            self._retire_finished()
        # Keep ticking while any warp could issue soon; all-blocked cores
        # go idle and are re-kicked by memory callbacks.  ``_unblocked``
        # tracks resident warps with no outstanding transactions, making
        # this a counter check instead of a per-cycle scan.
        return bool(resident) and self._unblocked > 0

    def _issue(self, warp: _ResidentWarp, now: int) -> None:
        task = warp.task
        op = task.trace.ops[warp.op_index]
        warp.op_index += 1
        if warp.op_index >= warp.num_ops:
            self._retire_candidates.append(warp)
        if warp.op_index % OPS_PER_ILINE == 1:
            line_bytes = self._l1i_line_bytes
            iline = (PROGRAM_BASE + task.program_id * 4096
                     + (op.pc // OPS_PER_ILINE) * line_bytes)
            l1i = self.l1i
            l1i._handle(MemRequest(address=iline, size=line_bytes,
                                   write=False, source=l1i.source))
        latency_class = op.latency_class
        if latency_class is LatencyClass.MEM and op.accesses:
            line_bytes = self._l1d_line_bytes
            transactions = coalesce(op.accesses, line_bytes=line_bytes)
            warp.outstanding = len(transactions)
            self._unblocked -= 1
            ctr = self._ctr_mem
            if ctr is None:
                ctr = self._ctr_mem = self.stats.counter("mem_transactions")
            ctr.add(len(transactions))
            routes = self._space_routes
            mem_done = self._mem_done
            # One completion closure per op (every transaction wakes the
            # same warp) handed straight to _handle — the access() shim
            # would wrap a zero-arg lambda per transaction on top of it.
            callback = lambda completed, w=warp: mem_done(w)  # noqa: E731
            for transaction in transactions:
                cache = routes[transaction.space]
                cache._handle(MemRequest(address=transaction.line_address,
                                         size=line_bytes,
                                         write=transaction.write,
                                         source=cache.source,
                                         callback=callback))
        else:
            if latency_class is LatencyClass.MEM:
                latency_class = LatencyClass.ALU     # masked-out memory op
            warp.ready_at = ready = now + self._latency[latency_class]
            if ready < self._next_ready:
                self._next_ready = ready

    def _mem_done(self, warp: _ResidentWarp) -> None:
        warp.outstanding -= 1
        if warp.outstanding == 0:
            self._unblocked += 1
            warp.ready_at = now = self.events._now
            if now < self._next_ready:
                self._next_ready = now
            self._ticker.kick()

    def _retire_finished(self) -> None:
        if not self._retire_candidates:
            return
        now = self.events.now
        still_pending: list[_ResidentWarp] = []
        finished: list[_ResidentWarp] = []
        for warp in self._retire_candidates:
            if warp.outstanding == 0 and warp.ready_at <= now:
                finished.append(warp)
            else:
                still_pending.append(warp)
        self._retire_candidates = still_pending
        if not finished:
            return
        ctr = self._ctr_retired
        if ctr is None:
            ctr = self._ctr_retired = self.stats.counter("warps_retired")
        for warp in finished:
            self._resident.remove(warp)
            self._unblocked -= 1        # finished warps have outstanding == 0
            ctr.add()
            if warp.task.on_complete is not None:
                warp.task.on_complete(warp.task)
        while self._waiting and len(self._resident) < self.config.max_warps:
            self._install(self._waiting.pop(0))
        self._trace_activity()

    def _trace_activity(self) -> None:
        """Maintain the core's busy span + resident-warp occupancy counter."""
        tracer = self.events.tracer
        if tracer is None:
            return
        busy = bool(self._resident)
        if busy != self._trace_busy:
            self._trace_busy = busy
            if busy:
                tracer.begin(self._track, "busy")
            else:
                tracer.end(self._track, "busy")
        tracer.counter(self._track, "resident_warps", len(self._resident))

    # -- aggregate stats ---------------------------------------------------------

    def cache_misses(self) -> dict[str, int]:
        return {
            "l1i": self.l1i.miss_count,
            "l1d": self.l1d.miss_count,
            "l1t": self.l1t.miss_count,
            "l1z": self.l1z.miss_count,
            "l1c": self.l1c.miss_count,
        }
