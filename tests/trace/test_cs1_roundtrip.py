"""Round-trip: trace a (scaled-down) case-study-I run, reload, re-reduce."""

import json

import pytest

from repro.harness.case_study1 import CS1Config, run_cs1
from repro.trace import TraceConfig, load_trace, profile, validate_trace

pytestmark = [pytest.mark.slow, pytest.mark.full_system]


def _tiny_cs1() -> CS1Config:
    return CS1Config(width=48, height=36, num_frames=2, texture_size=64,
                     gpu_frame_period_ticks=120_000,
                     display_period_ticks=60_000,
                     cpu_work_per_frame=40, cpu_fixed_ticks=5_000)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "cs1.json"
    results = run_cs1("M1", "BAS", config=_tiny_cs1(),
                      trace=TraceConfig(path=str(path), profile=True))
    return results, load_trace(str(path))


def test_emitted_trace_is_well_formed(traced_run):
    _, loaded = traced_run
    warnings = validate_trace(loaded)
    assert all("async" in w for w in warnings)


def test_round_trip_preserves_every_record(traced_run):
    _, loaded = traced_run
    assert json.loads(json.dumps(loaded)) == loaded
    assert loaded["traceEvents"], "trace must not be empty"
    assert loaded["otherData"]["end_tick"] > 0


def test_reloaded_trace_reduces_to_the_in_process_profile(traced_run):
    results, loaded = traced_run
    assert results.profile is not None
    reduced = profile(loaded)
    assert reduced.end_tick == results.profile.end_tick
    assert reduced.busy_ticks == results.profile.busy_ticks
    assert reduced.kernel_fired == results.profile.kernel_fired


def test_profile_decomposes_the_frames(traced_run):
    results, _ = traced_run
    frames = results.profile.frames("app")
    assert len(frames) == 2
    for _, phases in frames:
        assert {p.name for p in phases} == {"cpu_prepare", "gpu_render"}
    assert results.profile.busy_ticks["app"] > 0
    assert results.profile.utilization("app") <= 1.0
