"""Tests for the cache model and coalescer."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import CacheConfig
from repro.common.events import EventQueue
from repro.gpu.caches import Cache, LatencyPort, PerfectMemory
from repro.gpu.coalescer import CoalescedAccess, coalesce, coalescing_ratio
from repro.shader.interpreter import MemAccess
from repro.shader.isa import MemSpace


def make_cache(size=1024, ways=2, line=128, mem_latency=100):
    events = EventQueue()
    memory = PerfectMemory(events, latency=mem_latency)
    cache = Cache(events, CacheConfig(size, line_bytes=line, ways=ways),
                  "test", memory)
    return events, cache, memory


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        events, cache, memory = make_cache()
        times = []
        cache.access(0, 128, False, lambda: times.append(events.now))
        events.run()
        cache.access(0, 128, False, lambda: times.append(events.now))
        start = events.now
        events.run()
        assert times[0] >= 100                      # went to memory
        assert times[1] - start == cache.config.hit_latency
        assert cache.hit_rate == 0.5
        assert memory.accesses == 1

    def test_different_lines_miss_separately(self):
        events, cache, memory = make_cache()
        cache.access(0, 128, False, None)
        cache.access(128, 128, False, None)
        events.run()
        assert memory.accesses == 2

    def test_mshr_merges_secondary_miss(self):
        events, cache, memory = make_cache()
        done = []
        cache.access(0, 128, False, lambda: done.append("a"))
        cache.access(0, 128, False, lambda: done.append("b"))
        events.run()
        assert sorted(done) == ["a", "b"]
        assert memory.accesses == 1
        assert cache.stats.counter("mshr_merges").value == 1

    def test_lru_eviction(self):
        # 2-way, line 128, 1024 bytes -> 4 sets. Same set: stride 512.
        events, cache, memory = make_cache(size=1024, ways=2)
        for address in (0, 512, 1024):    # third line evicts the first
            cache.access(address, 128, False, None)
            events.run()
        assert not cache.contains(0)
        assert cache.contains(512)
        assert cache.contains(1024)

    def test_lru_touch_refreshes(self):
        events, cache, memory = make_cache(size=1024, ways=2)
        for address in (0, 512):
            cache.access(address, 128, False, None)
            events.run()
        cache.access(0, 128, False, None)     # touch 0: now MRU
        events.run()
        cache.access(1024, 128, False, None)  # evicts 512, not 0
        events.run()
        assert cache.contains(0)
        assert not cache.contains(512)

    def test_dirty_eviction_writes_back(self):
        events, cache, memory = make_cache(size=1024, ways=2)
        cache.access(0, 128, True, None)      # dirty line
        events.run()
        reads_before = memory.accesses
        cache.access(512, 128, False, None)
        cache.access(1024, 128, False, None)  # evicts dirty line 0
        events.run()
        assert cache.stats.counter("writebacks").value == 1
        # fills for 512 & 1024 plus one writeback
        assert memory.accesses == reads_before + 3

    def test_flush_dirty(self):
        events, cache, memory = make_cache()
        cache.access(0, 128, True, None)
        cache.access(128, 128, True, None)
        cache.access(256, 128, False, None)
        events.run()
        before = memory.accesses
        assert cache.flush_dirty() == 2
        events.run()
        assert memory.accesses == before + 2
        assert cache.flush_dirty() == 0       # idempotent

    def test_write_allocate(self):
        events, cache, memory = make_cache()
        cache.access(0, 128, True, None)
        events.run()
        assert cache.contains(0)
        assert memory.accesses == 1           # fill on write miss


class TestMSHREdgeCases:
    def test_secondary_write_miss_merges_dirty_into_read_fill(self):
        """A write merging into a read miss's MSHR must dirty the filled
        line, or the write is silently lost at eviction time."""
        events, cache, memory = make_cache(size=1024, ways=2)
        done = []
        cache.access(0, 128, False, lambda: done.append("read"))
        cache.access(0, 128, True, lambda: done.append("write"))
        assert cache._mshrs[0].write        # the merge dirtied the entry
        events.run()
        assert sorted(done) == ["read", "write"]
        assert cache.stats.counter("mshr_merges").value == 1
        # Evict line 0 (2-way set, stride 512): the merged write must
        # surface as a writeback.
        cache.access(512, 128, False, None)
        cache.access(1024, 128, False, None)
        events.run()
        assert cache.stats.counter("writebacks").value == 1

    def test_concurrent_fills_racing_eviction_in_one_set(self):
        """Three outstanding misses to a 2-way set: the last fill evicts a
        line installed by an earlier fill of the same burst, and every
        waiter still completes exactly once."""
        events, cache, memory = make_cache(size=1024, ways=2)
        done = []
        for address in (0, 512, 1024):      # all map to set 0
            cache.access(address, 128, False,
                         lambda a=address: done.append(a))
        assert len(cache._mshrs) == 3       # all in flight at once
        events.run()
        assert sorted(done) == [0, 512, 1024]
        assert cache._mshrs == {}
        assert cache.stats.counter("evictions").value == 1
        resident = [a for a in (0, 512, 1024) if cache.contains(a)]
        assert len(resident) == 2           # ways bound still holds

    def test_mshr_occupancy_histogram_tracks_full_occupancy(self):
        events, cache, memory = make_cache()
        for index in range(8):
            cache.access(index * 128, 128, False, None)
        assert len(cache._mshrs) == 8
        occupancy = cache.stats.histogram("mshr_occupancy")
        assert occupancy.count == 8         # one sample per allocation
        assert occupancy.maximum == 8       # recorded at peak
        events.run()
        assert cache._mshrs == {}           # all fills drained

    def test_mshr_allocation_tick_is_current_time(self):
        events, cache, memory = make_cache()
        cache.access(0, 128, False, None)
        events.run()
        assert events.now >= 100
        cache.access(4096, 128, False, None)
        assert cache._mshrs[cache.line_of(4096)].allocated_at == events.now


class TestLatencyPort:
    def test_adds_latency(self):
        events = EventQueue()
        memory = PerfectMemory(events, latency=10)
        port = LatencyPort(events, latency=5, next_level=memory)
        done = []
        port.access(0, 128, False, lambda: done.append(events.now))
        events.run()
        assert done == [15]


class TestCoalescer:
    def lane_accesses(self, addresses, space=MemSpace.GLOBAL, size=4,
                      write=False):
        return [MemAccess(space, a, size, write) for a in addresses]

    def test_sequential_warp_coalesces_to_one_line(self):
        accesses = self.lane_accesses([i * 4 for i in range(32)])
        out = coalesce(accesses)
        assert len(out) == 1
        assert out[0].line_address == 0

    def test_strided_warp_spans_lines(self):
        accesses = self.lane_accesses([i * 128 for i in range(32)])
        assert len(coalesce(accesses)) == 32

    def test_spaces_kept_separate(self):
        accesses = (self.lane_accesses([0], MemSpace.TEXTURE)
                    + self.lane_accesses([0], MemSpace.DEPTH))
        out = coalesce(accesses)
        assert len(out) == 2
        assert {a.space for a in out} == {MemSpace.TEXTURE, MemSpace.DEPTH}

    def test_reads_and_writes_distinct(self):
        accesses = (self.lane_accesses([0], write=False)
                    + self.lane_accesses([0], write=True))
        assert len(coalesce(accesses)) == 2

    def test_access_straddling_lines(self):
        accesses = [MemAccess(MemSpace.GLOBAL, 120, 16)]
        out = coalesce(accesses)
        assert {a.line_address for a in out} == {0, 128}

    def test_ratio(self):
        accesses = self.lane_accesses([i * 4 for i in range(32)])
        assert coalescing_ratio(accesses) == 32.0
        assert coalescing_ratio([]) == 0.0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=64))
    def test_coalesced_lines_unique(self, addresses):
        out = coalesce(self.lane_accesses(addresses))
        keys = [(a.space, a.line_address, a.write) for a in out]
        assert len(keys) == len(set(keys))
        for access in out:
            assert access.line_address % 128 == 0
