"""Mesh representation and primitive iteration.

A :class:`Mesh` carries per-vertex attribute arrays (position, normal, uv,
color) plus an index array and a primitive mode.  Primitive modes with
vertex sharing (strips, fans) matter to the timing model: the vertex
launcher overlaps warp batches so primitive assembly never needs vertices
from another warp (paper §3.3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np


class PrimitiveMode(enum.Enum):
    """Supported OpenGL primitive topologies."""

    TRIANGLES = "triangles"
    TRIANGLE_STRIP = "triangle_strip"
    TRIANGLE_FAN = "triangle_fan"

    @property
    def verts_shared(self) -> int:
        """Vertices shared between consecutive primitives (drives warp overlap)."""
        if self is PrimitiveMode.TRIANGLES:
            return 0
        return 2


@dataclass
class Mesh:
    """Indexed triangle mesh with optional per-vertex attributes.

    ``positions`` is (N, 3); ``normals`` (N, 3), ``uvs`` (N, 2) and
    ``colors`` (N, 4) are optional and default to sensible constants when
    absent (flat normals derived later, uv = 0, color = white).
    """

    positions: np.ndarray
    indices: np.ndarray
    normals: Optional[np.ndarray] = None
    uvs: Optional[np.ndarray] = None
    colors: Optional[np.ndarray] = None
    mode: PrimitiveMode = PrimitiveMode.TRIANGLES
    name: str = field(default="mesh")

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got {self.indices.shape}")
        n = len(self.positions)
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("index out of vertex range")
        for attr_name, width in (("normals", 3), ("uvs", 2), ("colors", 4)):
            attr = getattr(self, attr_name)
            if attr is not None:
                attr = np.asarray(attr, dtype=np.float64)
                if attr.shape != (n, width):
                    raise ValueError(
                        f"{attr_name} must be ({n}, {width}), got {attr.shape}"
                    )
                setattr(self, attr_name, attr)

    @property
    def num_vertices(self) -> int:
        return len(self.positions)

    @property
    def num_primitives(self) -> int:
        k = len(self.indices)
        if self.mode is PrimitiveMode.TRIANGLES:
            return k // 3
        return max(0, k - 2)

    def triangles(self) -> Iterator[tuple[int, int, int]]:
        """Yield index triples in draw-call order, unrolling strips/fans.

        Strip winding alternates per OpenGL so all triangles keep a
        consistent facing.
        """
        idx = self.indices
        if self.mode is PrimitiveMode.TRIANGLES:
            for i in range(0, len(idx) - 2, 3):
                yield int(idx[i]), int(idx[i + 1]), int(idx[i + 2])
        elif self.mode is PrimitiveMode.TRIANGLE_STRIP:
            for i in range(len(idx) - 2):
                if i % 2 == 0:
                    yield int(idx[i]), int(idx[i + 1]), int(idx[i + 2])
                else:
                    yield int(idx[i + 1]), int(idx[i]), int(idx[i + 2])
        elif self.mode is PrimitiveMode.TRIANGLE_FAN:
            for i in range(1, len(idx) - 1):
                yield int(idx[0]), int(idx[i]), int(idx[i + 1])
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled mode {self.mode}")

    def with_computed_normals(self) -> "Mesh":
        """Return a copy with area-weighted smooth vertex normals."""
        normals = np.zeros_like(self.positions)
        for a, b, c in self.triangles():
            face = np.cross(
                self.positions[b] - self.positions[a],
                self.positions[c] - self.positions[a],
            )
            normals[a] += face
            normals[b] += face
            normals[c] += face
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        lengths[lengths == 0.0] = 1.0
        return Mesh(
            positions=self.positions,
            indices=self.indices,
            normals=normals / lengths,
            uvs=self.uvs,
            colors=self.colors,
            mode=self.mode,
            name=self.name,
        )

    def transformed(self, matrix: np.ndarray) -> "Mesh":
        """Return a copy with positions transformed by a 4x4 matrix."""
        homo = np.hstack([self.positions, np.ones((self.num_vertices, 1))])
        moved = (matrix @ homo.T).T
        positions = moved[:, :3] / moved[:, 3:4]
        normals = self.normals
        if normals is not None:
            nmat = np.linalg.inv(matrix[:3, :3]).T
            normals = (nmat @ normals.T).T
            lengths = np.linalg.norm(normals, axis=1, keepdims=True)
            lengths[lengths == 0.0] = 1.0
            normals = normals / lengths
        return Mesh(
            positions=positions,
            indices=self.indices,
            normals=normals,
            uvs=self.uvs,
            colors=self.colors,
            mode=self.mode,
            name=self.name,
        )

    def merged_with(self, other: "Mesh") -> "Mesh":
        """Concatenate two TRIANGLES meshes into one."""
        if self.mode is not PrimitiveMode.TRIANGLES or other.mode is not PrimitiveMode.TRIANGLES:
            raise ValueError("merging requires TRIANGLES meshes (unroll strips first)")

        def _attr(mesh: Mesh, name: str, width: int, default: float) -> np.ndarray:
            attr = getattr(mesh, name)
            if attr is None:
                attr = np.full((mesh.num_vertices, width), default)
            return attr

        positions = np.vstack([self.positions, other.positions])
        indices = np.concatenate([self.indices, other.indices + self.num_vertices])
        return Mesh(
            positions=positions,
            indices=indices,
            normals=np.vstack([_attr(self, "normals", 3, 0.0),
                               _attr(other, "normals", 3, 0.0)]),
            uvs=np.vstack([_attr(self, "uvs", 2, 0.0),
                           _attr(other, "uvs", 2, 0.0)]),
            colors=np.vstack([_attr(self, "colors", 4, 1.0),
                              _attr(other, "colors", 4, 1.0)]),
            mode=PrimitiveMode.TRIANGLES,
            name=self.name,
        )

    def unrolled(self) -> "Mesh":
        """Return an equivalent TRIANGLES mesh (strips/fans expanded)."""
        if self.mode is PrimitiveMode.TRIANGLES:
            return self
        flat = [i for tri in self.triangles() for i in tri]
        return Mesh(
            positions=self.positions,
            indices=np.array(flat, dtype=np.int64),
            normals=self.normals,
            uvs=self.uvs,
            colors=self.colors,
            mode=PrimitiveMode.TRIANGLES,
            name=self.name,
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (min, max) corners of the mesh."""
        return self.positions.min(axis=0), self.positions.max(axis=0)
