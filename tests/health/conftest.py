"""Session-scoped baseline run shared by the health acceptance tests."""

import pytest

from tests.health.full_system import build_soc


@pytest.fixture(scope="session")
def clean_run():
    """One health-free single-frame run: (results, framebuffer copy)."""
    soc = build_soc(num_frames=1, health=None)
    results = soc.run()
    return results, soc.gpu.fb.color.copy()
