"""Tests for the discrete-event kernel."""

import pytest

from repro.common.events import (EventQueue, SimulationError, StopReason,
                                 Ticker)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, fired.append, "late")
        q.schedule(3, fired.append, "early")
        q.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(7, fired.append, i)
        q.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(42, lambda: seen.append(q.now))
        q.run()
        assert seen == [42]
        assert q.now == 42

    def test_schedule_from_within_event(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append(("first", q.now))
            q.schedule(10, lambda: fired.append(("second", q.now)))

        q.schedule(5, first)
        q.run()
        assert fired == [("first", 5), ("second", 15)]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_at(5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(5, fired.append, "x")
        ev.cancel()
        q.run()
        assert fired == []

    def test_run_until_stops_at_boundary(self):
        q = EventQueue()
        fired = []
        q.schedule(5, fired.append, "a")
        q.schedule(10, fired.append, "b")
        q.schedule(15, fired.append, "c")
        q.run_until(10)
        assert fired == ["a", "b"]
        assert q.now == 10
        q.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_advances_time_past_empty_queue(self):
        q = EventQueue()
        q.run_until(100)
        assert q.now == 100

    def test_run_max_events(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(i, fired.append, i)
        result = q.run(max_events=3)
        assert result.executed == 3
        assert result.reason is StopReason.BUDGET
        assert fired == [0, 1, 2]

    def test_run_reports_drained_vs_budget(self):
        """A drained queue and an exhausted budget can both execute
        max_events — only the reason distinguishes them."""
        q = EventQueue()
        for i in range(3):
            q.schedule(i, lambda: None)
        result = q.run(max_events=3)
        assert result.executed == 3
        assert result.reason is StopReason.BUDGET   # not proven drained
        result = q.run()
        assert result.executed == 0
        assert result.reason is StopReason.DRAINED
        assert result.drained

    def test_run_until_reports_horizon(self):
        q = EventQueue()
        q.schedule(5, lambda: None)
        q.schedule(50, lambda: None)
        result = q.run_until(10)
        assert result.executed == 1
        assert result.reason is StopReason.HORIZON
        result = q.run_until(100)
        assert result.reason is StopReason.DRAINED

    def test_empty_and_peek(self):
        q = EventQueue()
        assert q.empty()
        assert q.peek_time() is None
        ev = q.schedule(9, lambda: None)
        assert q.peek_time() == 9
        ev.cancel()
        assert q.empty()

    def test_events_fired_counter(self):
        q = EventQueue()
        for i in range(4):
            q.schedule(i, lambda: None)
        q.run()
        assert q.events_fired == 4


class TestErrorPolicies:
    def test_propagate_is_default_and_reraises_unchanged(self):
        q = EventQueue()

        def boom():
            raise KeyError("missing")

        q.schedule(5, boom)
        with pytest.raises(KeyError):
            q.run()

    def test_wrap_carries_provenance(self):
        q = EventQueue(error_policy="wrap")

        def boom():
            raise ValueError("bad state")

        q.schedule(7, boom, owner="dram.ch0")
        with pytest.raises(SimulationError) as excinfo:
            q.run()
        error = excinfo.value
        assert error.tick == 7
        assert error.owner == "dram.ch0"
        assert "boom" in error.callback_name
        assert isinstance(error.__cause__, ValueError)

    def test_wrap_is_fail_fast(self):
        q = EventQueue(error_policy="wrap")
        fired = []
        q.schedule(1, lambda: (_ for _ in ()).throw(RuntimeError("x")))
        q.schedule(2, fired.append, "after")
        with pytest.raises(SimulationError):
            q.run()
        assert fired == []      # nothing after the failure ran

    def test_quarantine_continues_and_records(self):
        q = EventQueue(error_policy="quarantine")
        fired = []

        def boom():
            raise RuntimeError("poisoned component")

        q.schedule(1, boom)
        q.schedule(2, fired.append, "survives")
        result = q.run()
        assert result.drained
        assert fired == ["survives"]
        assert len(q.errors) == 1
        assert q.errors[0].tick == 1

    def test_wrap_passes_simulation_errors_through(self):
        """A deliberate SimulationError (e.g. a watchdog report) must not
        be double-wrapped."""
        q = EventQueue(error_policy="wrap")
        original = SimulationError("watchdog: stuck", tick=3, owner="wd")

        def report():
            raise original

        q.schedule(3, report)
        with pytest.raises(SimulationError) as excinfo:
            q.run()
        assert excinfo.value is original

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            EventQueue(error_policy="ignore")

    def test_debug_provenance_records_schedule_site(self):
        q = EventQueue(debug_provenance=True)
        event = q.schedule(1, lambda: None)
        assert event.site is not None
        assert "test_events.py" in event.site


class TestAdvanceTo:
    def test_advance_jumps_time(self):
        q = EventQueue()
        q.advance_to(5_000)
        assert q.now == 5_000
        seen = []
        q.schedule(10, lambda: seen.append(q.now))
        q.run()
        assert seen == [5_010]

    def test_advance_backwards_rejected(self):
        q = EventQueue()
        q.advance_to(100)
        with pytest.raises(ValueError):
            q.advance_to(50)

    def test_advance_over_pending_events_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        with pytest.raises(ValueError):
            q.advance_to(20)


class TestTicker:
    def test_ticker_runs_while_callback_true(self):
        q = EventQueue()
        ticks = []

        def cb():
            ticks.append(q.now)
            return len(ticks) < 3

        t = Ticker(q, period=10, callback=cb)
        t.kick()
        q.run()
        assert ticks == [0, 10, 20]

    def test_kick_idempotent(self):
        q = EventQueue()
        count = [0]

        def cb():
            count[0] += 1
            return False

        t = Ticker(q, period=5, callback=cb)
        t.kick()
        t.kick()
        t.kick()
        q.run()
        assert count[0] == 1

    def test_stop_prevents_future_ticks(self):
        q = EventQueue()
        ticks = []
        t = Ticker(q, period=5, callback=lambda: ticks.append(q.now) or True)
        t.kick()
        q.run(max_events=2)
        t.stop()
        q.run()
        assert len(ticks) == 2

    def test_invalid_period(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            Ticker(q, period=0, callback=lambda: False)

    def test_kick_with_delay(self):
        q = EventQueue()
        ticks = []
        t = Ticker(q, period=5, callback=lambda: ticks.append(q.now) or False)
        t.kick(delay=7)
        q.run()
        assert ticks == [7]

    def test_rekick_after_idle(self):
        q = EventQueue()
        ticks = []
        t = Ticker(q, period=5, callback=lambda: ticks.append(q.now) or False)
        t.kick()
        q.run()
        assert ticks == [0]
        q.schedule(20, t.kick)
        q.run()
        assert ticks == [0, 20]


class TestTickerEdgeCases:
    def test_kick_during_fire_resumes_next_period(self):
        """A kick from inside the callback (work arriving mid-cycle) must
        resume at the next period, never re-fire in the same tick."""
        q = EventQueue()
        ticks = []

        def cb():
            ticks.append(q.now)
            if len(ticks) == 1:
                t.kick()        # re-entrant kick while firing
            return False        # callback itself says "go idle"

        t = Ticker(q, period=10, callback=cb)
        t.kick()
        q.run()
        assert ticks == [0, 10]     # kick won over the False return

    def test_stop_during_fire_wins_over_keep_going(self):
        """A component stopping itself from inside its own callback must
        not be resurrected by the callback's True return."""
        q = EventQueue()
        ticks = []

        def cb():
            ticks.append(q.now)
            t.stop()
            return True         # would normally reschedule

        t = Ticker(q, period=5, callback=cb)
        t.kick()
        q.run()
        assert ticks == [0]

    def test_stop_then_kick_during_fire_restarts(self):
        """stop() then kick() inside one firing: last call wins."""
        q = EventQueue()
        ticks = []

        def cb():
            ticks.append(q.now)
            if len(ticks) == 1:
                t.stop()
                t.kick()
            return False

        t = Ticker(q, period=5, callback=cb)
        t.kick()
        q.run()
        assert ticks == [0, 5]

    def test_stop_while_pending_cancels_cleanly(self):
        q = EventQueue()
        ticks = []
        t = Ticker(q, period=5, callback=lambda: ticks.append(q.now) or True)
        t.kick(delay=3)
        assert t.active
        t.stop()
        assert not t.active
        q.run()
        assert ticks == []
        assert q.now == 0       # cancelled events never advance the clock
        # The cancelled pending event must not block a later restart.
        t.kick()
        q.run(max_events=1)
        assert ticks == [0]

    def test_zero_delay_kick_fires_after_same_tick_events(self):
        """kick(0) schedules at the current tick *behind* events already
        queued for that tick (FIFO order), so a producer scheduling work
        then kicking a consumer in the same tick is race-free."""
        q = EventQueue()
        order = []
        q.schedule(0, order.append, "already-queued")
        t = Ticker(q, period=5, callback=lambda: order.append("tick") or False)
        t.kick(0)
        q.schedule(0, order.append, "queued-after-kick")
        q.run()
        assert order == ["already-queued", "tick", "queued-after-kick"]

    def test_cancelled_pending_is_not_active(self):
        q = EventQueue()
        t = Ticker(q, period=5, callback=lambda: False)
        t.kick()
        t._pending.cancel()     # event cancelled behind the ticker's back
        assert not t.active
        t.kick()                # must re-arm, not assume still scheduled
        assert t.active


class TestCancelledHeads:
    """The lazy-deletion path (_drop_cancelled_head) with runs of
    cancelled events at the front of the heap."""

    def test_consecutive_cancelled_heads_are_skipped(self):
        q = EventQueue()
        fired = []
        events = [q.schedule(t, fired.append, t) for t in (1, 2, 3, 4)]
        for event in events[:3]:
            event.cancel()
        assert q.peek_time() == 4           # drops all three in one sweep
        assert q.step() is True
        assert fired == [4]
        assert q.now == 4
        assert q.empty()

    def test_queue_of_only_cancelled_events_is_empty(self):
        q = EventQueue()
        for event in [q.schedule(t, lambda: None) for t in (1, 2, 3)]:
            event.cancel()
        assert q.empty()
        assert q.peek_time() is None
        assert q.step() is False
        assert q.events_fired == 0
        assert q.now == 0                   # nothing fired, clock untouched

    def test_cancelled_head_does_not_hide_later_same_tick_event(self):
        q = EventQueue()
        fired = []
        first = q.schedule(5, fired.append, "cancelled")
        q.schedule(5, fired.append, "live")
        first.cancel()
        q.run()
        assert fired == ["live"]


class TestScheduleAtBoundaries:
    def test_schedule_at_now_is_allowed(self):
        q = EventQueue()
        q.run_until(10)
        fired = []
        q.schedule_at(10, fired.append, "boundary")
        q.run()
        assert fired == ["boundary"]
        assert q.now == 10

    def test_schedule_at_in_the_past_is_rejected(self):
        q = EventQueue()
        q.run_until(10)
        with pytest.raises(ValueError, match="past"):
            q.schedule_at(9, lambda: None)

    def test_rejected_schedule_leaves_the_queue_intact(self):
        q = EventQueue()
        q.run_until(10)
        with pytest.raises(ValueError):
            q.schedule_at(3, lambda: None)
        assert q.empty()
        assert q.now == 10


class TestRunUntilStopReasons:
    """run_until must report *why* it stopped, for each StopReason."""

    def test_drained(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        result = q.run_until(10)
        assert result.reason is StopReason.DRAINED
        assert result.executed == 1
        assert q.now == 10                  # still advances to the horizon

    def test_horizon(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        q.schedule(20, lambda: None)
        result = q.run_until(10)
        assert result.reason is StopReason.HORIZON
        assert result.executed == 1
        assert q.now == 10
        assert q.peek_time() == 20          # pending event survives

    def test_budget(self):
        q = EventQueue()
        for t in range(1, 6):
            q.schedule(t, lambda: None)
        result = q.run_until(10, max_events=2)
        assert result.reason is StopReason.BUDGET
        assert result.executed == 2
        # Events remain at t=3..5 <= horizon: now must NOT jump over
        # them, or the next step would run time backwards.
        assert q.now == 2
        assert q.peek_time() == 3

    def test_budget_resume_keeps_time_monotonic(self):
        q = EventQueue()
        ticks = []
        for t in range(1, 6):
            q.schedule(t, lambda t=t: ticks.append(q.now))
        q.run_until(10, max_events=2)
        result = q.run_until(10)
        assert result.reason is StopReason.DRAINED
        assert ticks == sorted(ticks) == [1, 2, 3, 4, 5]

    def test_budget_with_nothing_pending_advances_to_horizon(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        result = q.run_until(10, max_events=1)
        assert result.reason is StopReason.BUDGET
        assert q.now == 10
