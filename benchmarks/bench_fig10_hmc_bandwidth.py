"""Fig. 10: M3-HMC DRAM bandwidth per source over time.

Paper shape: CPU traffic spikes *between* GPU frames (frame preparation)
and drops while the GPU renders; under HMC's split channels this leaves
the CPU channel underutilized during rendering — the traffic-balance
problem the case study diagnoses.
"""

from benchmarks.conftest import run_once
from repro.harness.report import ascii_sparkline, format_series


def test_fig10_hmc_bandwidth(benchmark, cs1_regular):
    sweep = run_once(benchmark, lambda: cs1_regular)
    results = sweep.get("M3", "HMC")

    print()
    print("Fig. 10 — M3-HMC bandwidth vs time (bytes per 10k-tick window)")
    for source in ("cpu", "gpu", "display"):
        series = results.bandwidth[source]
        print(f"  {source:8s} {ascii_sparkline([v for _, v in series])}")
        print(" ", format_series(source, series[:24]))

    # Locate each frame's GPU-render phase and compare CPU traffic inside
    # vs outside it.
    cpu = dict(results.bandwidth["cpu"])
    window = 10_000

    def cpu_bytes(t0, t1):
        keys = [t for t in cpu if t0 <= t < t1]
        return sum(cpu[t] for t in keys) / max(len(keys), 1)

    inside, outside = [], []
    for record in results.frames[1:]:
        inside.append(cpu_bytes(record.cpu_done, record.gpu_done))
        outside.append(cpu_bytes(record.start, record.cpu_done))
    mean_inside = sum(inside) / len(inside)
    mean_outside = sum(outside) / len(outside)
    print(f"mean CPU bytes/window during GPU render : {mean_inside:10.0f}")
    print(f"mean CPU bytes/window during CPU prepare: {mean_outside:10.0f}")

    # Shape: the app thread's traffic concentrates between GPU frames, so
    # CPU demand during rendering is visibly lower than during preparation.
    assert mean_outside > mean_inside * 1.15, \
        "CPU traffic should drop while the GPU renders (Fig. 10 phases)"
    # And GPU traffic exists (the IP channel is being used meanwhile).
    assert results.dram_bytes["gpu"] > 0
