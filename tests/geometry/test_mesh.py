"""Tests for Mesh and primitive iteration."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.mesh import Mesh, PrimitiveMode
from repro.geometry.transforms import rotate_y, translate


def quad_mesh(mode=PrimitiveMode.TRIANGLES):
    positions = np.array([
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [1.0, 1.0, 0.0],
    ])
    if mode is PrimitiveMode.TRIANGLES:
        indices = [0, 1, 2, 1, 3, 2]
    else:
        indices = [0, 1, 2, 3]
    return Mesh(positions=positions, indices=np.array(indices), mode=mode)


class TestMeshValidation:
    def test_bad_positions_shape(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 2)), indices=np.array([0, 1, 2]))

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 3)), indices=np.array([0, 1, 3]))

    def test_attr_shape_mismatch(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 3)), indices=np.array([0, 1, 2]),
                 uvs=np.zeros((2, 2)))


class TestPrimitiveIteration:
    def test_triangles_mode(self):
        mesh = quad_mesh(PrimitiveMode.TRIANGLES)
        assert list(mesh.triangles()) == [(0, 1, 2), (1, 3, 2)]
        assert mesh.num_primitives == 2

    def test_strip_mode_alternates_winding(self):
        mesh = quad_mesh(PrimitiveMode.TRIANGLE_STRIP)
        tris = list(mesh.triangles())
        assert tris == [(0, 1, 2), (2, 1, 3)]
        assert mesh.num_primitives == 2

    def test_fan_mode(self):
        positions = np.zeros((5, 3))
        mesh = Mesh(positions=positions, indices=np.arange(5),
                    mode=PrimitiveMode.TRIANGLE_FAN)
        assert list(mesh.triangles()) == [(0, 1, 2), (0, 2, 3), (0, 3, 4)]

    def test_strip_winding_consistent_facing(self):
        """All strip triangles must face the same way (+z here)."""
        mesh = quad_mesh(PrimitiveMode.TRIANGLE_STRIP)
        for a, b, c in mesh.triangles():
            pa, pb, pc = (mesh.positions[i] for i in (a, b, c))
            normal = np.cross(pb - pa, pc - pa)
            assert normal[2] > 0

    def test_shared_vertices_property(self):
        assert PrimitiveMode.TRIANGLES.verts_shared == 0
        assert PrimitiveMode.TRIANGLE_STRIP.verts_shared == 2
        assert PrimitiveMode.TRIANGLE_FAN.verts_shared == 2

    def test_unrolled_preserves_triangles(self):
        mesh = quad_mesh(PrimitiveMode.TRIANGLE_STRIP)
        flat = mesh.unrolled()
        assert flat.mode is PrimitiveMode.TRIANGLES
        assert list(flat.triangles()) == list(mesh.triangles())


class TestMeshOps:
    def test_computed_normals_flat_quad(self):
        mesh = quad_mesh().with_computed_normals()
        assert np.allclose(mesh.normals, [[0, 0, 1]] * 4)

    def test_transform_moves_positions(self):
        mesh = quad_mesh().transformed(translate(5.0, 0.0, 0.0))
        assert mesh.positions[:, 0].min() == pytest.approx(5.0)

    def test_transform_rotates_normals(self):
        mesh = quad_mesh().with_computed_normals()
        rotated = mesh.transformed(rotate_y(np.pi / 2))
        assert np.allclose(rotated.normals, [[1, 0, 0]] * 4, atol=1e-12)

    def test_merge_offsets_indices(self):
        a = quad_mesh()
        b = quad_mesh().transformed(translate(2.0, 0.0, 0.0))
        merged = a.merged_with(b)
        assert merged.num_vertices == 8
        assert merged.num_primitives == 4
        assert merged.indices.max() == 7

    def test_merge_requires_triangles(self):
        a = quad_mesh(PrimitiveMode.TRIANGLE_STRIP)
        with pytest.raises(ValueError):
            a.merged_with(quad_mesh())

    def test_bounds(self):
        lo, hi = quad_mesh().bounds()
        assert np.allclose(lo, [0, 0, 0])
        assert np.allclose(hi, [1, 1, 0])

    @given(st.integers(3, 40))
    def test_fan_primitive_count(self, n):
        mesh = Mesh(positions=np.zeros((n, 3)), indices=np.arange(n),
                    mode=PrimitiveMode.TRIANGLE_FAN)
        assert mesh.num_primitives == n - 2
        assert len(list(mesh.triangles())) == n - 2

    @given(st.integers(3, 40))
    def test_strip_primitive_count(self, n):
        mesh = Mesh(positions=np.zeros((n, 3)), indices=np.arange(n),
                    mode=PrimitiveMode.TRIANGLE_STRIP)
        assert mesh.num_primitives == n - 2
