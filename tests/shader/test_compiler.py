"""Tests for the GLSL-mini -> ISA compiler (compile + execute end-to-end)."""

import numpy as np
import pytest

from repro.shader.compiler import ShaderCompileError, compile_shader
from repro.shader.interpreter import WarpInterpreter
from repro.shader.isa import Opcode

from tests.shader.fake_env import FakeEnv


def compile_run(source, stage="fragment", env=None):
    env = env or FakeEnv()
    program = compile_shader(source, stage, name="test")
    result = WarpInterpreter(program, env).run()
    return program, result, env


class TestCompileBasics:
    def test_minimal_fragment_shader(self):
        program, _, env = compile_run("""
            void main() { gl_FragColor = vec4(1.0, 0.5, 0.25, 1.0); }
        """)
        assert program.stage == "fragment"
        assert np.allclose(env.outputs[0], 1.0)
        assert np.allclose(env.outputs[1], 0.5)
        assert np.allclose(env.outputs[2], 0.25)

    def test_vertex_shader_position_outputs(self):
        env = FakeEnv(attributes={0: np.full(8, 2.0), 1: np.full(8, 3.0),
                                  2: np.full(8, 4.0)},
                      constants={i: float(np.eye(4).flat[i]) for i in range(16)})
        program, _, env = compile_run("""
            in vec3 position;
            uniform mat4 mvp;
            void main() { gl_Position = mvp * vec4(position, 1.0); }
        """, stage="vertex", env=env)
        assert np.allclose(env.outputs[0], 2.0)
        assert np.allclose(env.outputs[1], 3.0)
        assert np.allclose(env.outputs[2], 4.0)
        assert np.allclose(env.outputs[3], 1.0)

    def test_mat4_vec4_row_major(self):
        # A translation matrix in row-major layout: element [0,3] = 5.
        mat = np.eye(4)
        mat[0, 3] = 5.0
        env = FakeEnv(attributes={0: np.zeros(8), 1: np.zeros(8),
                                  2: np.zeros(8)},
                      constants={i: float(mat.flat[i]) for i in range(16)})
        _, _, env = compile_run("""
            in vec3 position;
            uniform mat4 mvp;
            void main() { gl_Position = mvp * vec4(position, 1.0); }
        """, stage="vertex", env=env)
        assert np.allclose(env.outputs[0], 5.0)

    def test_missing_position_rejected(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("void main() { }", "vertex", name="bad_vs")

    def test_missing_fragcolor_rejected(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("void main() { }", "fragment", name="bad_fs")

    def test_varying_passthrough(self):
        program = compile_shader("""
            in vec3 position;
            in vec2 uv;
            out vec2 v_uv;
            void main() {
                gl_Position = vec4(position, 1.0);
                v_uv = uv;
            }
        """, "vertex", name="vs_vary")
        assert program.varyings.lookup("v_uv") == (0, 2)
        assert program.attributes.lookup("uv") == (3, 2)


class TestExpressions:
    def test_arithmetic_precedence(self):
        _, _, env = compile_run("""
            void main() {
                float x = 2.0 + 3.0 * 4.0;
                gl_FragColor = vec4(x, x, x, x);
            }
        """)
        assert np.allclose(env.outputs[0], 14.0)

    def test_parentheses(self):
        _, _, env = compile_run("""
            void main() {
                float x = (2.0 + 3.0) * 4.0;
                gl_FragColor = vec4(x, 0.0, 0.0, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 20.0)

    def test_unary_negation(self):
        _, _, env = compile_run("""
            void main() {
                float x = -3.0;
                gl_FragColor = vec4(-x, x, 0.0, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 3.0)
        assert np.allclose(env.outputs[1], -3.0)

    def test_swizzle_read(self):
        _, _, env = compile_run("""
            void main() {
                vec4 c = vec4(1.0, 2.0, 3.0, 4.0);
                gl_FragColor = vec4(c.wzy, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 4.0)
        assert np.allclose(env.outputs[1], 3.0)
        assert np.allclose(env.outputs[2], 2.0)

    def test_swizzle_write(self):
        _, _, env = compile_run("""
            void main() {
                vec4 c = vec4(0.0, 0.0, 0.0, 0.0);
                c.xw = vec2(5.0, 6.0);
                gl_FragColor = c;
            }
        """)
        assert np.allclose(env.outputs[0], 5.0)
        assert np.allclose(env.outputs[3], 6.0)

    def test_scalar_vector_broadcast(self):
        _, _, env = compile_run("""
            void main() {
                vec3 v = vec3(1.0, 2.0, 3.0) * 2.0;
                gl_FragColor = vec4(v, 1.0);
            }
        """)
        assert np.allclose(env.outputs[1], 4.0)

    def test_vec_constructor_broadcast(self):
        _, _, env = compile_run("""
            void main() {
                vec3 v = vec3(0.5);
                gl_FragColor = vec4(v, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 0.5)
        assert np.allclose(env.outputs[2], 0.5)

    def test_constructor_width_mismatch(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                void main() { gl_FragColor = vec4(1.0, 2.0); }
            """, "fragment", name="bad_ctor")


class TestBuiltinFunctions:
    def test_dot_normalize_length(self):
        _, _, env = compile_run("""
            void main() {
                vec3 v = vec3(3.0, 4.0, 0.0);
                float d = dot(v, v);
                float l = length(v);
                vec3 n = normalize(v);
                gl_FragColor = vec4(d, l, n.x, n.y);
            }
        """)
        assert np.allclose(env.outputs[0], 25.0)
        assert np.allclose(env.outputs[1], 5.0)
        assert np.allclose(env.outputs[2], 0.6)
        assert np.allclose(env.outputs[3], 0.8)

    def test_cross(self):
        _, _, env = compile_run("""
            void main() {
                vec3 c = cross(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0));
                gl_FragColor = vec4(c, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 0.0)
        assert np.allclose(env.outputs[2], 1.0)

    def test_clamp_mix(self):
        _, _, env = compile_run("""
            void main() {
                float c = clamp(5.0, 0.0, 1.0);
                float m = mix(10.0, 20.0, 0.25);
                gl_FragColor = vec4(c, m, 0.0, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 1.0)
        assert np.allclose(env.outputs[1], 12.5)

    def test_reflect(self):
        _, _, env = compile_run("""
            void main() {
                vec3 r = reflect(vec3(1.0, -1.0, 0.0), vec3(0.0, 1.0, 0.0));
                gl_FragColor = vec4(r, 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 1.0)
        assert np.allclose(env.outputs[1], 1.0)

    def test_pow_sqrt(self):
        _, _, env = compile_run("""
            void main() {
                gl_FragColor = vec4(pow(2.0, 10.0), sqrt(16.0),
                                    inversesqrt(4.0), 1.0);
            }
        """)
        assert np.allclose(env.outputs[0], 1024.0)
        assert np.allclose(env.outputs[1], 4.0)
        assert np.allclose(env.outputs[2], 0.5)

    def test_texture_call(self):
        env = FakeEnv(textures={0: lambda u, v: (u, v, 0.25, 1.0)},
                      varyings={0: np.full(8, 0.5), 1: np.full(8, 0.75)})
        program, _, env = compile_run("""
            in vec2 v_uv;
            uniform sampler2D albedo;
            void main() { gl_FragColor = texture(albedo, v_uv); }
        """, env=env)
        assert program.textures == {"albedo": 0}
        assert np.allclose(env.outputs[0], 0.5)
        assert np.allclose(env.outputs[1], 0.75)

    def test_unknown_function(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                void main() { gl_FragColor = vec4(frob(1.0)); }
            """, "fragment", name="bad_fn")


class TestControlFlow:
    def test_if_divergence(self):
        env = FakeEnv(varyings={0: np.array([0.2, 0.8] * 4)})
        _, _, env = compile_run("""
            in float v_t;
            void main() {
                float c = 0.0;
                if (v_t < 0.5) {
                    c = 1.0;
                }
                gl_FragColor = vec4(c, 0.0, 0.0, 1.0);
            }
        """, env=env)
        assert env.outputs[0].tolist() == [1, 0] * 4

    def test_if_else(self):
        env = FakeEnv(varyings={0: np.array([0.2, 0.8] * 4)})
        _, _, env = compile_run("""
            in float v_t;
            void main() {
                float c = 0.0;
                if (v_t < 0.5) { c = 1.0; } else { c = 2.0; }
                gl_FragColor = vec4(c, 0.0, 0.0, 1.0);
            }
        """, env=env)
        assert env.outputs[0].tolist() == [1, 2] * 4

    def test_else_if_chain(self):
        env = FakeEnv(varyings={0: np.array([0.1, 0.5, 0.9, 0.1,
                                             0.5, 0.9, 0.1, 0.5])})
        _, _, env = compile_run("""
            in float v_t;
            void main() {
                float c = 0.0;
                if (v_t < 0.3) { c = 1.0; }
                else if (v_t < 0.7) { c = 2.0; }
                else { c = 3.0; }
                gl_FragColor = vec4(c, 0.0, 0.0, 1.0);
            }
        """, env=env)
        assert env.outputs[0].tolist() == [1, 2, 3, 1, 2, 3, 1, 2]

    def test_logical_ops(self):
        env = FakeEnv(varyings={0: np.array([0.1, 0.5, 0.9, 0.5] * 2)})
        _, _, env = compile_run("""
            in float v_t;
            void main() {
                float c = 0.0;
                if (v_t > 0.3 && v_t < 0.7) { c = 1.0; }
                if (v_t < 0.3 || v_t > 0.7) { c = 2.0; }
                if (!(v_t == 0.5)) { c = c + 10.0; }
                gl_FragColor = vec4(c, 0.0, 0.0, 1.0);
            }
        """, env=env)
        assert env.outputs[0].tolist() == [12, 1, 12, 1] * 2

    def test_discard_statement(self):
        env = FakeEnv(varyings={0: np.array([0.2, 0.8] * 4)})
        program, result, _ = compile_run("""
            in float v_a;
            void main() {
                if (v_a < 0.5) { discard; }
                gl_FragColor = vec4(1.0, 1.0, 1.0, 1.0);
            }
        """, env=env)
        assert program.has_discard
        assert result.discarded.tolist() == [True, False] * 4

    def test_discard_rejected_in_vertex(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                in vec3 position;
                void main() { discard; gl_Position = vec4(position, 1.0); }
            """, "vertex", name="bad_discard")


class TestFragDepthAndCoord:
    def test_frag_depth_output(self):
        program, _, env = compile_run("""
            void main() {
                gl_FragColor = vec4(1.0, 1.0, 1.0, 1.0);
                gl_FragDepth = 0.25;
            }
        """)
        assert program.writes_depth
        assert np.allclose(env.outputs[4], 0.25)

    def test_frag_coord_varying_allocated(self):
        program = compile_shader("""
            void main() {
                float x = gl_FragCoord.x;
                gl_FragColor = vec4(x, 0.0, 0.0, 1.0);
            }
        """, "fragment", name="coord_fs")
        assert "gl_FragCoord" in program.varyings


class TestSemanticsErrors:
    def test_undefined_variable(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                void main() { gl_FragColor = vec4(mystery, 0.0, 0.0, 1.0); }
            """, "fragment", name="e1")

    def test_assign_to_uniform(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                uniform float k;
                void main() { k = 1.0; gl_FragColor = vec4(k); }
            """, "fragment", name="e2")

    def test_redeclaration(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                void main() {
                    float x = 1.0;
                    float x = 2.0;
                    gl_FragColor = vec4(x);
                }
            """, "fragment", name="e3")

    def test_width_mismatch(self):
        with pytest.raises(ShaderCompileError):
            compile_shader("""
                void main() {
                    vec3 v = vec3(1.0, 2.0, 3.0);
                    vec2 w = vec2(1.0, 2.0);
                    gl_FragColor = vec4(v + w, 1.0);
                }
            """, "fragment", name="e4")

    def test_uniform_loads_cached(self):
        program = compile_shader("""
            uniform float k;
            void main() {
                float a = k + k;
                float b = k * 2.0;
                gl_FragColor = vec4(a, b, 0.0, 1.0);
            }
        """, "fragment", name="cache_fs")
        loads = [i for i in program.instructions if i.op is Opcode.LD_CONST]
        assert len(loads) == 1


class TestBuiltinShaderLibrary:
    def test_all_builtin_shaders_compile(self):
        from repro.shader import builtins
        vertex_sources = [
            builtins.BASIC_VERTEX, builtins.TRANSFORM_UV_VERTEX,
            builtins.LIT_TEXTURED_VERTEX, builtins.COLOR_VERTEX,
            builtins.LIT_TRANSLUCENT_VERTEX,
        ]
        fragment_sources = [
            builtins.FLAT_FRAGMENT, builtins.VERTEX_COLOR_FRAGMENT,
            builtins.TEXTURED_FRAGMENT, builtins.LIT_TEXTURED_FRAGMENT,
            builtins.LIT_TRANSLUCENT_FRAGMENT, builtins.ALPHA_CUTOUT_FRAGMENT,
        ]
        for src in vertex_sources:
            assert compile_shader(src, "vertex").stage == "vertex"
        for src in fragment_sources:
            assert compile_shader(src, "fragment").stage == "fragment"

    def test_varyings_match_between_stages(self):
        from repro.shader import builtins
        vs = compile_shader(builtins.LIT_TEXTURED_VERTEX, "vertex")
        fs = compile_shader(builtins.LIT_TEXTURED_FRAGMENT, "fragment")
        for name in fs.varyings.names():
            assert name in vs.varyings
