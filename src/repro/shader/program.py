"""Shader program container, slot tables, assembler and reconvergence analysis.

A :class:`Program` is a finalized instruction list plus the metadata both
the interpreter and the timing model need: attribute/varying/output slot
tables, the uniform (constant bank) layout, and texture units.

Reconvergence points for divergent branches are computed here as immediate
post-dominators of the instruction-level control-flow graph — the classic
IPDOM mechanism GPGPU-Sim's SIMT stack uses.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.shader.isa import (
    Imm,
    Instruction,
    Opcode,
    Pred,
    Reg,
    opcode_by_mnemonic,
)


class SlotTable:
    """Ordered name -> (base scalar slot, width) mapping."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, int]] = {}
        self._next = 0

    def allocate(self, name: str, width: int) -> int:
        if name in self._entries:
            raise ValueError(f"slot {name!r} already allocated")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        base = self._next
        self._entries[name] = (base, width)
        self._next += width
        return base

    def lookup(self, name: str) -> tuple[int, int]:
        if name not in self._entries:
            raise KeyError(f"no slot {name!r}; known: {list(self._entries)}")
        return self._entries[name]

    def names(self) -> list[str]:
        return list(self._entries)

    def items(self) -> list[tuple[str, tuple[int, int]]]:
        return list(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def total(self) -> int:
        return self._next


@dataclass
class Program:
    """A finalized shader program.

    Vertex stage output slots: 0-3 are ``gl_Position``; varyings follow.
    Fragment stage output slots: 0-3 are ``gl_FragColor``; 4 is
    ``gl_FragDepth`` when written.
    """

    stage: str
    instructions: list[Instruction] = field(default_factory=list)
    attributes: SlotTable = field(default_factory=SlotTable)
    varyings: SlotTable = field(default_factory=SlotTable)
    uniforms: SlotTable = field(default_factory=SlotTable)
    textures: dict[str, int] = field(default_factory=dict)
    num_regs: int = 0
    num_preds: int = 0
    name: str = "shader"
    writes_depth: bool = False

    POSITION_SLOTS = 4      # VS outputs 0-3
    COLOR_SLOTS = 4         # FS outputs 0-3
    DEPTH_SLOT = 4          # FS output 4

    def __post_init__(self) -> None:
        if self.stage not in ("vertex", "fragment"):
            raise ValueError(f"stage must be vertex|fragment, got {self.stage!r}")
        # Lazy caches (not dataclass fields): both are derived from the
        # instruction list, which is immutable once finalized.
        self._digest: Optional[str] = None
        self._has_discard: Optional[bool] = None

    @property
    def num_outputs(self) -> int:
        if self.stage == "vertex":
            return self.POSITION_SLOTS + self.varyings.total
        return self.COLOR_SLOTS + 1

    @property
    def has_discard(self) -> bool:
        if self._has_discard is None:
            self._has_discard = any(
                i.op is Opcode.DISCARD for i in self.instructions)
        return self._has_discard

    @property
    def digest(self) -> str:
        """Stable content hash of the finalized program (hex string).

        Computed once and cached on the object — this is the key for the
        compiled dispatch-table cache (DESIGN.md §12), looked up per warp
        launch, so recomputing it per lookup would dominate small warps.
        """
        if self._digest is None:
            hasher = hashlib.sha1()
            hasher.update(
                f"{self.stage}|{self.name}|{self.num_regs}|"
                f"{self.num_preds}|{self.writes_depth}".encode())
            for instr in self.instructions:
                hasher.update(
                    f"{instr!r}|{instr.target}|{instr.reconv}\n".encode())
            self._digest = hasher.hexdigest()
        return self._digest

    def finalize(self) -> "Program":
        """Resolve register counts and reconvergence points; validate."""
        max_reg = -1
        max_pred = -1
        for instr in self.instructions:
            for operand in list(instr.dsts) + list(instr.srcs):
                if isinstance(operand, Reg):
                    max_reg = max(max_reg, operand.index)
                elif isinstance(operand, Pred):
                    max_pred = max(max_pred, operand.index)
            if instr.guard is not None:
                max_pred = max(max_pred, instr.guard.index)
            if instr.op is Opcode.BRA:
                if instr.target is None:
                    raise ValueError(f"unresolved branch target: {instr}")
                if not (0 <= instr.target <= len(self.instructions)):
                    raise ValueError(f"branch target out of range: {instr}")
        self.num_regs = max_reg + 1
        self.num_preds = max_pred + 1
        if not self.instructions or self.instructions[-1].op is not Opcode.EXIT:
            self.instructions.append(Instruction(Opcode.EXIT))
        self.writes_depth = any(
            i.op is Opcode.ST_OUT and i.slot == self.DEPTH_SLOT
            for i in self.instructions
        ) or any(i.op is Opcode.ZWRITE for i in self.instructions)
        compute_reconvergence(self.instructions)
        return self


def compute_reconvergence(instructions: list[Instruction]) -> None:
    """Annotate every conditional branch with its IPDOM reconvergence pc.

    Uses instruction-granularity post-dominator analysis; the virtual exit
    node is ``len(instructions)``.
    """
    n = len(instructions)
    exit_node = n
    successors: list[list[int]] = []
    for pc, instr in enumerate(instructions):
        if instr.op is Opcode.EXIT:
            successors.append([exit_node])
        elif instr.op is Opcode.BRA:
            if instr.guard is None:
                successors.append([instr.target])
            else:
                successors.append(sorted({pc + 1, instr.target}))
        else:
            successors.append([pc + 1 if pc + 1 < n else exit_node])
    # Iterative post-dominator sets: pdom(n) = {n} | intersection of succs.
    all_nodes = set(range(n + 1))
    pdom: list[set[int]] = [set(all_nodes) for _ in range(n)] + [{exit_node}]
    changed = True
    while changed:
        changed = False
        for pc in range(n - 1, -1, -1):
            succ_sets = [pdom[s] for s in successors[pc]]
            if succ_sets:
                new = {pc} | set.intersection(*succ_sets)
            else:
                new = {pc}
            if new != pdom[pc]:
                pdom[pc] = new
                changed = True
    for pc, instr in enumerate(instructions):
        if instr.op is Opcode.BRA and instr.guard is not None:
            candidates = pdom[pc] - {pc}
            # The immediate post-dominator is the candidate closest to pc:
            # the one with the largest post-dominator set.
            instr.reconv = max(candidates, key=lambda c: (len(pdom[c]) if c < n else 1, -c))


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_GUARD_RE = re.compile(r"^@(!?)p(\d+)$")


def _parse_operand(token: str) -> tuple[str, object]:
    """Classify an assembler operand token.

    Returns (kind, value) where kind is ``reg``/``pred``/``imm``/``slot``/
    ``label``.  Slot tokens: ``a3`` attr, ``v1`` varying, ``c5`` const,
    ``o0`` output, ``t2`` texture unit.
    """
    token = token.strip()
    if re.fullmatch(r"r\d+", token):
        return "reg", Reg(int(token[1:]))
    if re.fullmatch(r"p\d+", token):
        return "pred", Pred(int(token[1:]))
    if re.fullmatch(r"[avcot]\d+", token):
        return "slot", (token[0], int(token[1:]))
    try:
        return "imm", Imm(float(token))
    except ValueError:
        pass
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return "label", token
    raise ValueError(f"cannot parse operand {token!r}")


# opcode -> (num dsts, num srcs); slot-consuming ops handled specially.
_SHAPES = {
    Opcode.MOV: (1, 1), Opcode.ADD: (1, 2), Opcode.SUB: (1, 2),
    Opcode.MUL: (1, 2), Opcode.DIV: (1, 2), Opcode.MAD: (1, 3),
    Opcode.MIN: (1, 2), Opcode.MAX: (1, 2), Opcode.ABS: (1, 1),
    Opcode.NEG: (1, 1), Opcode.FLOOR: (1, 1), Opcode.FRAC: (1, 1),
    Opcode.RCP: (1, 1), Opcode.RSQRT: (1, 1), Opcode.SQRT: (1, 1),
    Opcode.SIN: (1, 1), Opcode.COS: (1, 1), Opcode.EXP2: (1, 1),
    Opcode.LOG2: (1, 1), Opcode.POW: (1, 2),
    Opcode.SETP_LT: (1, 2), Opcode.SETP_LE: (1, 2), Opcode.SETP_GT: (1, 2),
    Opcode.SETP_GE: (1, 2), Opcode.SETP_EQ: (1, 2), Opcode.SETP_NE: (1, 2),
    Opcode.SEL: (1, 3), Opcode.PAND: (1, 2), Opcode.POR: (1, 2),
    Opcode.PNOT: (1, 1),
    Opcode.ZREAD: (1, 0), Opcode.ZWRITE: (0, 1),
    Opcode.SREAD: (1, 0), Opcode.SWRITE: (0, 1),
    Opcode.FB_READ: (4, 0), Opcode.FB_WRITE: (0, 4),
    Opcode.LD_GLOBAL: (1, 1), Opcode.ST_GLOBAL: (0, 2),
    Opcode.EXIT: (0, 0), Opcode.DISCARD: (0, 0),
}


def assemble(text: str, stage: str = "fragment", name: str = "asm") -> Program:
    """Assemble text into a finalized :class:`Program`.

    Directives: ``.stage``, ``.attr NAME WIDTH``, ``.vary NAME WIDTH``,
    ``.uniform NAME WIDTH``, ``.tex NAME``.  Labels end with ``:``.
    Instructions may carry a guard prefix ``@p0`` / ``@!p1``.
    """
    program = Program(stage=stage, name=name)
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)

    labels: dict[str, int] = {}
    pending: list[tuple[list[str], Optional[Pred], bool]] = []
    for line in lines:
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".stage":
                program.stage = parts[1]
            elif directive == ".attr":
                program.attributes.allocate(parts[1], int(parts[2]))
            elif directive == ".vary":
                program.varyings.allocate(parts[1], int(parts[2]))
            elif directive == ".uniform":
                program.uniforms.allocate(parts[1], int(parts[2]))
            elif directive == ".tex":
                program.textures[parts[1]] = len(program.textures)
            else:
                raise ValueError(f"unknown directive {directive!r}")
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            labels[label_match.group(1)] = len(pending)
            continue
        tokens = line.replace(",", " ").split()
        guard = None
        guard_sense = True
        guard_match = _GUARD_RE.match(tokens[0])
        if guard_match:
            guard = Pred(int(guard_match.group(2)))
            guard_sense = not guard_match.group(1)
            tokens = tokens[1:]
        pending.append((tokens, guard, guard_sense))

    for tokens, guard, guard_sense in pending:
        mnemonic, *operand_tokens = tokens
        op = opcode_by_mnemonic(mnemonic)
        instr = Instruction(op, guard=guard, guard_sense=guard_sense)
        operands = [_parse_operand(t) for t in operand_tokens]
        if op is Opcode.BRA:
            kind, value = operands[0]
            if kind != "label":
                raise ValueError(f"bra needs a label, got {operand_tokens[0]!r}")
            if value not in labels:
                raise ValueError(f"undefined label {value!r}")
            instr.target = labels[value]
        elif op in (Opcode.LD_ATTR, Opcode.LD_VARY, Opcode.LD_CONST):
            instr.dsts = [operands[0][1]]
            kind, slot = operands[1]
            if kind != "slot":
                raise ValueError(f"{mnemonic} needs a slot operand")
            instr.slot = slot[1]
        elif op is Opcode.ST_OUT:
            kind, slot = operands[0]
            if kind != "slot":
                raise ValueError("st.out needs an output slot first")
            instr.slot = slot[1]
            instr.srcs = [operands[1][1]]
        elif op is Opcode.TEX:
            # tex r0, r1, r2, r3, tN, rU, rV
            instr.dsts = [o[1] for o in operands[:4]]
            kind, slot = operands[4]
            if kind != "slot" or slot[0] != "t":
                raise ValueError("tex needs a texture unit (tN) operand")
            instr.slot = slot[1]
            instr.srcs = [operands[5][1], operands[6][1]]
        else:
            shape = _SHAPES.get(op)
            if shape is None:
                raise ValueError(f"no operand shape for {op}")
            num_dsts, num_srcs = shape
            if len(operands) != num_dsts + num_srcs:
                raise ValueError(
                    f"{mnemonic} expects {num_dsts + num_srcs} operands, "
                    f"got {len(operands)}"
                )
            instr.dsts = [o[1] for o in operands[:num_dsts]]
            instr.srcs = [o[1] for o in operands[num_dsts:]]
        program.instructions.append(instr)

    return program.finalize()
