"""Flow-control edge cases: the port fabric's retry handshake interacting
with bounded links, the watchdog, and the fault/retry machinery (the
ISSUE's four scenarios)."""

from repro.common.events import EventQueue
from repro.common.ports import ResponsePort, respond
from repro.health import RetryConfig
from repro.health.watchdog import Watchdog
from repro.memory.request import MemRequest, SourceType
from repro.soc.noc import SystemNoC


class FakeMemory:
    """Scripted terminal responder: collects requests; replies on demand."""

    def __init__(self):
        self.received = []
        self.ingress = ResponsePort("fake.in", self._recv, owner=self)

    def _recv(self, request):
        self.received.append(request)
        return True

    def reply(self, index=0):
        request = self.received.pop(index)
        request.complete_time = request.complete_time or 0
        respond(request)


class _ScriptedInjector:
    def __init__(self, fates):
        self._fates = list(fates)

    def noc_extra_latency(self, request):
        return 0

    def reply_fate(self, request):
        return self._fates.pop(0) if self._fates else ("deliver", 0)

    def display_underrun_now(self):
        return False


def _request(address=0x40, callback=None):
    return MemRequest(address=address, size=64, write=False,
                      source=SourceType.CPU, callback=callback)


def test_retry_succeeds_while_queue_drains():
    """A sender blocked on a full link is woken as the queue drains and
    its held packet arrives after the queued ones (FIFO, no loss)."""
    events = EventQueue()
    memory = FakeMemory()
    noc = SystemNoC(events, memory, latency=4, capacity=2)
    port_cls = type(noc._entry)
    woken = []
    sender = port_cls("test.sender", on_retry=lambda: woken.append(events.now))
    sender.connect(noc.ingress)
    first, second, third = (_request(0x100 * i) for i in (1, 2, 3))
    assert sender.try_send(first)
    assert sender.try_send(second)
    assert not sender.try_send(third)           # capacity=2: rejected
    events.run()                                # link drains into memory
    assert woken                                # retry arrived as a slot freed
    assert sender.try_send(third)
    events.run()
    assert [r.address for r in memory.received] == [0x100, 0x200, 0x300]


def test_watchdog_deadline_fires_under_sustained_backpressure():
    """A request accepted into the link but never answered ages against its
    deadline — queued time is watchdog-visible time."""
    events = EventQueue()
    memory = FakeMemory()                       # never replies on its own
    watchdog = Watchdog(events, request_timeout=1_000, check_period=200,
                        on_timeout=lambda report: None)
    noc = SystemNoC(events, memory, latency=4, capacity=4,
                    watchdog=watchdog)
    noc.submit(_request())
    assert watchdog.in_flight == 1              # queued == tracked
    events.run(max_events=50)
    assert watchdog.reports
    report = watchdog.reports[0]
    assert report.kind == "request-timeout"
    assert report.age >= 1_000
    assert watchdog.in_flight == 0              # offender reported + forgotten


def test_fault_dropped_reply_of_queued_packet_recovered_by_retry():
    """A packet that sat in a bounded queue loses its reply to the injector;
    the retry ladder re-injects through the same bounded link and the
    issuer hears exactly once."""
    events = EventQueue()
    memory = FakeMemory()
    done = []
    noc = SystemNoC(events, memory, latency=4,
                    capacity=4, bytes_per_cycle=2.0,   # 64B -> 32-tick line
                    injector=_ScriptedInjector([("drop", 0)]),
                    retry=RetryConfig(timeout=500, max_retries=2))
    noc.submit(_request(callback=done.append))
    noc.submit(_request(address=0x80))          # queue behind the first
    events.run_until(100)                       # both drain the slow line
    assert len(memory.received) == 2
    memory.reply(0)                             # first reply: dropped
    memory.reply(0)                             # second delivered in time
    assert done == []
    events.run_until(700)                       # deadline -> clone re-sent
    assert noc.stats.counter("retries").value == 1
    clone = next(r for r in memory.received if r.address == 0x40)
    assert clone.attempt == 1
    memory.reply(memory.received.index(clone))
    assert len(done) == 1
    assert done[0].attempt == 1


def test_exactly_once_when_retry_races_slow_link():
    """The original reply is delayed past the retry deadline while the
    clone serializes through a slow link; both replies eventually arrive
    and the issuer hears exactly once."""
    events = EventQueue()
    memory = FakeMemory()
    done = []
    noc = SystemNoC(events, memory, latency=4, bytes_per_cycle=1.0,
                    injector=_ScriptedInjector([("delay", 5_000)]),
                    retry=RetryConfig(timeout=300, max_retries=2))
    noc.submit(_request(callback=done.append))
    events.run_until(100)
    assert len(memory.received) == 1
    memory.reply(0)                             # fate: delayed 5000 ticks
    events.run_until(500)                       # deadline passes, clone sent
    assert len(memory.received) == 1
    memory.reply(0)                             # clone's reply: delivered
    assert len(done) == 1
    events.run()                                # late original arrives...
    assert len(done) == 1                       # ...and is deduplicated
    assert noc.stats.counter("duplicate_replies").value == 1
