"""DRAM address mappings (Table 4).

Addresses are decoded at cache-line granularity (the DRAM transaction
unit).  A mapping is an MSB-to-LSB field order; the two from the paper:

* ``Row:Rank:Bank:Column:Channel`` — the baseline (and HMC CPU-channel)
  map: channel interleaves at line granularity, and consecutive lines in a
  channel walk the columns of one row — *locality-optimized* (page
  striped).
* ``Row:Column:Rank:Bank:Channel`` — the HMC IP-channel map: consecutive
  lines stripe across banks first — *parallelism-optimized* (line
  striped).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramCoord:
    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Bit-field address decoder with a configurable MSB->LSB field order."""

    FIELDS = ("row", "rank", "bank", "column", "channel")

    def __init__(self, order: tuple[str, ...], line_bytes: int = 128) -> None:
        if sorted(order) != sorted(self.FIELDS):
            raise ValueError(f"order must be a permutation of {self.FIELDS}")
        self.order = order
        self.line_bytes = line_bytes
        self._compiled: dict[tuple, object] = {}

    def field_sizes(self, channels: int, ranks: int, banks: int,
                    rows: int, columns: int) -> dict[str, int]:
        return {"channel": channels, "rank": ranks, "bank": banks,
                "row": rows, "column": columns}

    def decode(self, address: int, channels: int, ranks: int, banks: int,
               rows: int, columns: int) -> DramCoord:
        """Decode a byte address into DRAM coordinates."""
        block = address // self.line_bytes
        sizes = self.field_sizes(channels, ranks, banks, rows, columns)
        values: dict[str, int] = {}
        # LSB-first extraction: iterate the order reversed.
        for name in reversed(self.order):
            size = sizes[name]
            values[name] = block % size
            block //= size
        return DramCoord(channel=values["channel"], rank=values["rank"],
                         bank=values["bank"], row=values["row"],
                         column=values["column"])

    def compiled(self, channels: int, ranks: int, banks: int,
                 rows: int, columns: int):
        """A decoder specialized to one geometry: ``fn(address) -> DramCoord``.

        Same arithmetic as :meth:`decode` with the per-call dict building
        hoisted out — memory controllers decode every transaction, so the
        geometry-invariant work is paid once here.
        """
        key = (channels, ranks, banks, rows, columns)
        fn = self._compiled.get(key)
        if fn is None:
            sizes = self.field_sizes(channels, ranks, banks, rows, columns)
            pairs = tuple((name, sizes[name])
                          for name in reversed(self.order))
            line_bytes = self.line_bytes

            def fn(address: int) -> DramCoord:
                block = address // line_bytes
                values = {}
                for name, size in pairs:
                    values[name] = block % size
                    block //= size
                return DramCoord(**values)

            self._compiled[key] = fn
        return fn


# Table 4 mappings.
BASELINE_MAPPING = AddressMapping(("row", "rank", "bank", "column", "channel"))
IP_CHANNEL_MAPPING = AddressMapping(("row", "column", "rank", "bank", "channel"))
