"""Smoke tests: every example script runs to completion.

The slower full-system example is executed with a timeout guard; all
examples must exit 0 and print their headline output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_quickstart(self, tmp_path):
        output = tmp_path / "quickstart.ppm"
        result = run_example("quickstart.py", str(output))
        assert result.returncode == 0, result.stderr
        assert "matches reference     : True" in result.stdout
        assert output.exists()

    def test_shader_playground(self, tmp_path):
        output = tmp_path / "rings.ppm"
        result = run_example("shader_playground.py", str(output))
        assert result.returncode == 0, result.stderr
        assert "compiled 'rings'" in result.stdout
        assert "instruction mix" in result.stdout
        assert output.exists()

    def test_trace_record_replay(self, tmp_path):
        trace = tmp_path / "trace.json"
        result = run_example("trace_record_replay.py", str(trace))
        assert result.returncode == 0, result.stderr
        assert "replayed 1 frame(s)" in result.stdout
        assert trace.exists()

    def test_stencil_portal(self, tmp_path):
        output = tmp_path / "portal.ppm"
        result = run_example("stencil_portal.py", str(output))
        assert result.returncode == 0, result.stderr
        assert "portal covers" in result.stdout
        assert output.exists()

    def test_gpgpu_saxpy(self):
        result = run_example("gpgpu_saxpy.py")
        assert result.returncode == 0, result.stderr
        assert "SAXPY over 4096 elements" in result.stdout
        assert "strided copy" in result.stdout

    def test_trace_frame(self, tmp_path):
        trace = tmp_path / "trace.json"
        result = run_example("trace_frame.py", str(trace))
        assert result.returncode == 0, result.stderr
        assert "cycle attribution over" in result.stdout
        assert "Frame decomposition" in result.stdout
        assert "well-formed" in result.stdout
        assert trace.exists()

    @pytest.mark.slow
    def test_dfsl_adaptive(self):
        result = run_example("dfsl_adaptive.py", timeout=1200)
        assert result.returncode == 0, result.stderr
        assert "DFSL trace" in result.stdout

    @pytest.mark.slow
    def test_soc_frame_lifecycle(self):
        result = run_example("soc_frame_lifecycle.py", timeout=1200)
        assert result.returncode == 0, result.stderr
        assert "Frame lifecycle" in result.stdout

    @pytest.mark.slow
    def test_dse_sweep(self, tmp_path):
        result = run_example("dse_sweep.py", str(tmp_path), timeout=1200)
        assert result.returncode == 0, result.stderr
        assert "DSE sweep over 4 topology points" in result.stdout
        assert "Pareto-optimal points:" in result.stdout
        assert "4/4 points served" in result.stdout
