"""Tests for buffer objects and the GL context."""

import numpy as np
import pytest

from repro.geometry.models import cube, triangles
from repro.gl.buffers import IndexBuffer, VertexBuffer
from repro.gl.context import AddressAllocator, GLContext

VS = "void main() { gl_Position = vec4(position, 1.0); }"
FS = "void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }"


class TestVertexBuffer:
    def test_interleaving(self):
        vbo = VertexBuffer({
            "position": np.arange(12).reshape(4, 3),
            "uv": np.arange(8).reshape(4, 2),
        })
        assert vbo.stride_floats == 5
        assert vbo.num_vertices == 4
        assert vbo.data.shape == (4, 5)
        # Vertex 1: position floats 3..5, uv floats 2..3.
        assert vbo.data[1].tolist() == [3, 4, 5, 2, 3]

    def test_fetch(self):
        vbo = VertexBuffer({"position": np.arange(12).reshape(4, 3)})
        out = vbo.fetch("position", np.array([2, 0]))
        assert out.tolist() == [[6, 7, 8], [0, 1, 2]]

    def test_vertex_addresses(self):
        vbo = VertexBuffer({"position": np.zeros((4, 3))})
        vbo.base_address = 1000
        start, length = vbo.vertex_addresses(2)
        assert start == 1000 + 2 * 12
        assert length == 12

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            VertexBuffer({"a": np.zeros((3, 3)), "b": np.zeros((4, 2))})

    def test_unknown_attribute(self):
        vbo = VertexBuffer({"position": np.zeros((2, 3))})
        with pytest.raises(KeyError):
            vbo.attribute_offset("normal")

    def test_out_of_range_vertex(self):
        vbo = VertexBuffer({"position": np.zeros((2, 3))})
        with pytest.raises(IndexError):
            vbo.vertex_addresses(2)


class TestIndexBuffer:
    def test_addressing(self):
        ibo = IndexBuffer(np.array([0, 1, 2, 3]))
        ibo.base_address = 64
        assert ibo.address_of(0) == 64
        assert ibo.address_of(3) == 64 + 12
        assert ibo.size_bytes == 16

    def test_out_of_range(self):
        ibo = IndexBuffer(np.array([0, 1, 2]))
        with pytest.raises(IndexError):
            ibo.address_of(3)


class TestAddressAllocator:
    def test_alignment(self):
        alloc = AddressAllocator(base=0)
        a = alloc.allocate(10)
        b = alloc.allocate(10)
        assert a == 0
        assert b == 128

    def test_no_overlap(self):
        alloc = AddressAllocator(base=0)
        spans = []
        for size in (1, 128, 129, 1000):
            start = alloc.allocate(size)
            spans.append((start, start + size))
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate(0)


class TestGLContext:
    def test_draw_requires_program(self):
        ctx = GLContext(64, 64)
        with pytest.raises(RuntimeError):
            ctx.draw_mesh(cube())

    def test_draw_records_call(self):
        ctx = GLContext(64, 64)
        ctx.use_program(VS, FS)
        ctx.set_uniform("mvp", np.eye(4))
        call = ctx.draw_mesh(cube())
        assert call.num_primitives == 12
        frame = ctx.end_frame()
        assert len(frame.draw_calls) == 1
        assert frame.num_primitives == 12

    def test_end_frame_resets_calls_and_counts(self):
        ctx = GLContext(64, 64)
        ctx.use_program(VS, FS)
        ctx.draw_mesh(cube())
        f0 = ctx.end_frame()
        f1 = ctx.end_frame()
        assert f0.index == 0
        assert f1.index == 1
        assert len(f1.draw_calls) == 0

    def test_mesh_buffers_cached_across_frames(self):
        ctx = GLContext(64, 64)
        mesh = cube()
        vbo1, ibo1 = ctx.buffers_for_mesh(mesh)
        vbo2, ibo2 = ctx.buffers_for_mesh(mesh)
        assert vbo1 is vbo2
        assert ibo1 is ibo2
        assert vbo1.base_address != 0

    def test_distinct_resources_do_not_overlap(self):
        ctx = GLContext(64, 64)
        vbo_a, ibo_a = ctx.buffers_for_mesh(cube())
        vbo_b, _ = ctx.buffers_for_mesh(triangles())
        spans = [
            (ctx.framebuffer_address, ctx.framebuffer_address + 64 * 64 * 4),
            (ctx.depthbuffer_address, ctx.depthbuffer_address + 64 * 64 * 4),
            (vbo_a.base_address, vbo_a.base_address + vbo_a.size_bytes),
            (ibo_a.base_address, ibo_a.base_address + ibo_a.size_bytes),
            (vbo_b.base_address, vbo_b.base_address + vbo_b.size_bytes),
        ]
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_state_snapshot_is_frozen_per_call(self):
        ctx = GLContext(64, 64)
        ctx.use_program(VS, FS)
        ctx.set_state(blend=True)
        call1 = ctx.draw_mesh(cube())
        ctx.set_state(blend=False)
        call2 = ctx.draw_mesh(cube())
        assert call1.state.blend
        assert not call2.state.blend

    def test_fan_mode_primitive_count(self):
        ctx = GLContext(64, 64)
        ctx.use_program(VS, FS)
        call = ctx.draw_mesh(triangles(detail=1))
        assert call.num_primitives == 6

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GLContext(0, 10)
