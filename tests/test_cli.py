"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "chair" in out
        assert "M1" in out
        assert "W6" in out

    def test_render(self, capsys, tmp_path):
        output = tmp_path / "cube.ppm"
        assert main(["render", "cube", "--width", "48", "--height", "36",
                     "--clusters", "2", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "cycles=" in out
        assert output.exists()
        assert output.read_bytes().startswith(b"P6\n48 36\n")

    def test_render_with_wt(self, capsys):
        assert main(["render", "triangles", "--width", "48", "--height",
                     "36", "--clusters", "2", "--wt", "3"]) == 0
        assert "WT=3" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            main(["render", "nonexistent", "--width", "32", "--height",
                  "32"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cs1_validation(self):
        with pytest.raises(SystemExit):
            main(["cs1", "M9", "BAS"])

    def test_cs1_bad_inject_spec_rejected(self):
        """The fault spec is validated before the (expensive) run starts."""
        with pytest.raises(ValueError, match="unknown fault"):
            main(["cs1", "M1", "BAS", "--inject", "bogus=1"])

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest OK" in out
        assert "watchdog_reports=0" in out

    def test_selftest_sanitize(self, capsys):
        """--sanitize arms the invariant layer AND proves detection works
        by catching one deliberately planted violation."""
        assert main(["selftest", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "selftest OK" in out
        assert "sanitizer: checks=" in out
        assert "violations=0" in out
        assert ("deliberate-violation detection: caught LostRetryViolation"
                in out)

    def test_chaos_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "nonexistent"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_chaos_single_scenario(self, capsys, tmp_path):
        assert main(["chaos", "--scenario", "baseline", "--seeds", "1",
                     "--frames", "1", "--budget-events", "400000",
                     "--bundle-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "1 runs:" in out
        assert "CONTRACT BREACH" not in out

    def test_chaos_summary_json(self, capsys, tmp_path):
        import json
        summary = tmp_path / "summary.json"
        assert main(["chaos", "--scenario", "baseline", "--seeds", "1",
                     "--frames", "1", "--budget-events", "400000",
                     "--summary", str(summary)]) == 0
        doc = json.loads(summary.read_text())
        assert doc["schema"] == "repro-chaos-summary/1"
        assert doc["ok"] is True
        assert doc["results"][0]["scenario"] == "baseline"
        assert doc["results"][0]["expected"] == "ok"
        assert doc["unexpected_violations"] == 0

    def test_chaos_expected_violation_exits_0(self, capsys, tmp_path):
        """The catalog documents reply-drop-unprotected as a violation
        scenario; producing one is the contract working, not a failure."""
        assert main(["chaos", "--scenario", "reply-drop-unprotected",
                     "--seeds", "1", "--budget-events", "200000",
                     "--bundle-dir", str(tmp_path)]) == 0
        assert "UNEXPECTED VIOLATION" not in capsys.readouterr().out

    def test_chaos_unexpected_violation_exits_3(self, capsys, monkeypatch,
                                                tmp_path):
        """A violation in a scenario cataloged as clean is a regression:
        still a typed, bundled death, but CI must go red."""
        from repro.sanitize import chaos as chaos_module

        def fake_run_chaos(seeds, **kwargs):
            return chaos_module.ChaosReport(results=[
                chaos_module.ChaosResult("baseline", 1, "violation",
                                         detail="leak", expected="ok")])
        monkeypatch.setattr(chaos_module, "run_chaos", fake_run_chaos)
        summary = tmp_path / "summary.json"
        assert main(["chaos", "--seeds", "1",
                     "--summary", str(summary)]) == 3
        assert "UNEXPECTED VIOLATION: baseline" in capsys.readouterr().out
        import json
        assert json.loads(summary.read_text())["unexpected_violations"] == 1


class TestFleetCLI:
    def test_kill_spec_parsing(self):
        from repro.__main__ import _parse_kill_specs
        assert _parse_kill_specs(["cube-s1:1", "cube-s2:0"]) == {
            "cube-s1": [{"kill_at_frame": 1}],
            "cube-s2": [{"kill_at_frame": 0}]}
        assert _parse_kill_specs(None) == {}

    def test_bad_kill_spec_exits_2(self, capsys):
        assert main(["fleet", "--kill", "no-frame"]) == 2
        assert "NAME:FRAME" in capsys.readouterr().out
        assert main(["fleet", "--kill", "job:one"]) == 2

    def test_bad_jobs_file_exits_2(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text('[{"name": "a", "speed": 9}]')
        assert main(["fleet", "--jobs", str(jobs)]) == 2
        assert "unknown job spec" in capsys.readouterr().out
        jobs.write_text('{"name": "a"}')       # not a list
        assert main(["fleet", "--jobs", str(jobs)]) == 2

    @pytest.mark.slow
    @pytest.mark.full_system
    def test_fleet_sweep_then_cached_rerun(self, capsys, tmp_path):
        """The CI smoke shape: a 2-job sweep with one injected kill
        completes, and the rerun is served entirely from cache."""
        import json
        cache = str(tmp_path / "cache")
        summary = tmp_path / "summary.json"
        common = ["fleet", "--seeds", "1,2", "--frames", "2",
                  "--workers", "2", "--cache-dir", cache,
                  "--backoff-base", "0.01"]
        assert main(common + ["--workdir", str(tmp_path / "w1"),
                              "--kill", "cube-s1:1",
                              "--summary", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out
        assert "triage bundles:" in out        # the kill left evidence
        doc = json.loads(summary.read_text())
        assert doc["schema"] == "repro-fleet-report/1"
        assert doc["ok"] is True
        assert doc["executed"] == 3            # 2 jobs + 1 retry

        assert main(common + ["--workdir", str(tmp_path / "w2"),
                              "--expect-cached"]) == 0
        assert "2 cache hits" in capsys.readouterr().out

    @pytest.mark.slow
    @pytest.mark.full_system
    def test_expect_cached_fails_on_cold_cache(self, capsys, tmp_path):
        assert main(["fleet", "--seeds", "1", "--frames", "1",
                     "--workers", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--workdir", str(tmp_path / "work"),
                     "--expect-cached"]) == 1
        assert "EXPECTED CACHE-ONLY RERUN" in capsys.readouterr().out
