"""Fig. 13: display requests serviced under high load, relative to BAS.

Paper shape: on the small models (M2/M4) HMC *outperforms* the baseline —
the dedicated IP channel has slack to serve scanout without CPU
interference; on the large models DASH delivers markedly less display
traffic (the controller starts frames non-urgent, falls behind, aborts).
"""

from benchmarks.conftest import run_once
from repro.harness.report import format_table


def test_fig13_display_service(benchmark, cs1_high):
    sweep = run_once(benchmark, lambda: cs1_high)
    service = sweep.normalized_display_service()

    configs = ("BAS", "DCB", "DTB", "HMC")
    rows = [[model] + [service[model][c] for c in configs]
            for model in sorted(service)]
    print()
    print(format_table(
        ["model"] + list(configs), rows,
        title="Fig. 13 — display requests serviced (relative to BAS)"))
    aborts = {(m, c): sweep.get(m, c).display_aborted
              for m in sorted(service) for c in configs}
    print("aborted display frames:", aborts)

    small_models = [m for m in ("M2", "M4") if m in service]
    assert small_models, "need the small models for the HMC comparison"
    hmc_small = sum(service[m]["HMC"] for m in small_models) / len(small_models)
    # Shape: HMC serves more display traffic than BAS on small models.
    assert hmc_small > 1.1, \
        f"HMC should outperform BAS on small models, got {hmc_small:.2f}x"
