"""Fig. 9: GPU frame time under regular load, normalized to the baseline.

Paper shape: every configuration still meets the application frame rate,
but the GPU portion of the frame takes ~19-20% longer under DASH and
roughly 2x under HMC.
"""

from benchmarks.conftest import run_once
from repro.harness.report import ascii_bars, format_table


def test_fig09_regular_load(benchmark, cs1_regular):
    sweep = run_once(benchmark, lambda: cs1_regular)
    normalized = sweep.normalized_gpu_time()

    configs = ("BAS", "DCB", "DTB", "HMC")
    rows = [[model] + [normalized[model][c] for c in configs]
            for model in sorted(normalized)]
    means = [sum(normalized[m][c] for m in normalized) / len(normalized)
             for c in configs]
    rows.append(["AVG"] + means)
    print()
    print(format_table(["model"] + list(configs), rows,
                       title="Fig. 9 — GPU execution time under regular "
                             "load (normalized to BAS; lower is better)"))
    print()
    print(ascii_bars(list(configs), means, unit="x"))
    fps = {(m, c): sweep.get(m, c).fps_fraction
           for m in sorted(normalized) for c in configs}
    print("fraction of frames meeting the app period:",
          {k: round(v, 2) for k, v in fps.items()})

    avg = dict(zip(configs, means))
    # Shape: BAS == 1 by construction; HMC clearly slower on average.
    assert avg["HMC"] > 1.3, \
        f"HMC should slow GPU rendering substantially, got {avg['HMC']:.2f}x"
    # DASH's deprioritization must not *help* the GPU.
    assert avg["DCB"] >= 0.97 and avg["DTB"] >= 0.97
