"""Cycle-attribution tracer: Chrome Trace Event Format recording.

The tracer is the observability half of the simulator: it records *where
ticks go* inside a run — frame phases, per-draw spans, DRAM bursts,
memory-request flights, scheduler activity — as Chrome Trace Event Format
records (JSON loadable in Perfetto or ``chrome://tracing``), which the
in-process profiler (:mod:`repro.trace.profiler`) reduces into a
cycle-attribution report.

Attachment model (the overhead contract, DESIGN.md §8):

* a :class:`Tracer` binds to an :class:`~repro.common.events.EventQueue`
  by setting ``events.tracer``; every instrumented component reaches it
  through the queue it already holds, so tracing needs **no constructor
  plumbing**;
* with no tracer attached every hook is a single ``is None`` check — the
  seed's event schedule is preserved bit-identically;
* with a tracer attached, hooks only *record*: the tracer never schedules
  events, never touches statistics and never draws randomness, so an
  enabled trace still reproduces the golden stats / framebuffer CRC /
  event count exactly (enforced by test).

Record vocabulary (Chrome Trace Event Format phases):

* ``B``/``E`` — nested duration spans per track (frame phases, draws,
  core-busy windows, display scanout);
* ``X`` — complete spans with explicit start/duration (DRAM data-bus
  bursts, emitted at commit time);
* ``b``/``e`` — async spans keyed by id (overlapping memory-request
  flights through the NoC);
* ``C`` — counter samples (queue depths, in-flight counts, StatGroup
  snapshots — the latter carry ``cat="monotonic"``);
* ``i`` — instants (retries, aborts);
* ``M`` — metadata naming the process and each track.

Simulation ticks map 1:1 onto the format's microsecond timestamps, so one
displayed "us" is one tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

#: Record categories emitted by the built-in hooks.  ``kernel`` (one
#: instant per scheduled/fired event) is off by default — it multiplies
#: the record count by the event count and exists for kernel debugging.
DEFAULT_CATEGORIES = frozenset({"phase", "mem", "dram", "counter",
                                "monotonic", "instant"})

PID = 1


@dataclass
class TraceConfig:
    """Opt-in switch for tracing a run (``SoCRunConfig.trace``)."""

    path: Optional[str] = None          # write Chrome-trace JSON here
    profile: bool = False               # reduce into a cycle report
    categories: Optional[Iterable[str]] = None   # None = DEFAULT_CATEGORIES
    kernel_events: bool = False         # per-event instants (verbose)


class TraceError(RuntimeError):
    """A component violated the span protocol (unbalanced begin/end)."""


class Tracer:
    """Collects Chrome-trace records against one event queue's clock.

    Constructing a tracer attaches it (``events.tracer = self``); there is
    at most one per queue — re-attaching replaces the previous tracer.
    """

    def __init__(self, events, categories: Optional[Iterable[str]] = None,
                 kernel_events: bool = False,
                 process_name: str = "emerald") -> None:
        self.events = events
        self.categories = (frozenset(categories) if categories is not None
                           else DEFAULT_CATEGORIES)
        if kernel_events:
            self.categories = self.categories | {"kernel"}
        self.kernel_events = kernel_events
        self._records: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": PID, "tid": 0,
            "args": {"name": process_name},
        }]
        self._tids: dict[str, int] = {}
        self._open: dict[int, list[str]] = {}       # tid -> B/E name stack
        self._next_async_id = 1
        self._scheduled: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        events.tracer = self

    # -- track bookkeeping -------------------------------------------------------

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self._records.append({
                "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
                "args": {"name": track},
            })
        return tid

    def enabled(self, cat: str) -> bool:
        return cat in self.categories

    @property
    def num_records(self) -> int:
        return len(self._records)

    def next_async_id(self) -> int:
        aid = self._next_async_id
        self._next_async_id += 1
        return aid

    # -- span / counter / instant emission ---------------------------------------

    def begin(self, track: str, name: str, cat: str = "phase",
              args: Optional[dict] = None) -> None:
        """Open a nested duration span on ``track`` (Chrome ``B``)."""
        if cat not in self.categories:
            return
        tid = self._tid(track)
        self._open.setdefault(tid, []).append(name)
        record = {"name": name, "ph": "B", "ts": self.events.now,
                  "pid": PID, "tid": tid, "cat": cat}
        if args:
            record["args"] = args
        self._records.append(record)

    def end(self, track: str, name: Optional[str] = None,
            cat: str = "phase", args: Optional[dict] = None) -> None:
        """Close the innermost open span on ``track`` (Chrome ``E``).

        When ``name`` is given it must match the span being closed —
        mismatches are component bugs and raise :class:`TraceError`.
        """
        if cat not in self.categories:
            return
        tid = self._tid(track)
        stack = self._open.get(tid)
        if not stack:
            raise TraceError(f"end({track!r}, {name!r}) with no open span")
        open_name = stack.pop()
        if name is not None and name != open_name:
            raise TraceError(f"end({track!r}, {name!r}) does not match the "
                             f"open span {open_name!r}")
        record = {"name": open_name, "ph": "E", "ts": self.events.now,
                  "pid": PID, "tid": tid, "cat": cat}
        if args:
            record["args"] = args
        self._records.append(record)

    def complete(self, track: str, name: str, start: int, end: int,
                 cat: str = "phase", args: Optional[dict] = None) -> None:
        """One self-contained span with explicit bounds (Chrome ``X``)."""
        if cat not in self.categories:
            return
        record = {"name": name, "ph": "X", "ts": int(start),
                  "dur": int(end) - int(start), "pid": PID,
                  "tid": self._tid(track), "cat": cat}
        if args:
            record["args"] = args
        self._records.append(record)

    def instant(self, track: str, name: str, cat: str = "instant",
                args: Optional[dict] = None) -> None:
        if cat not in self.categories:
            return
        record = {"name": name, "ph": "i", "ts": self.events.now,
                  "pid": PID, "tid": self._tid(track), "cat": cat,
                  "s": "t"}
        if args:
            record["args"] = args
        self._records.append(record)

    def counter(self, track: str, name: str, value: float,
                monotonic: bool = False) -> None:
        """Sample one counter value (Chrome ``C``).

        ``monotonic`` tags the record ``cat="monotonic"`` — the trace
        validator enforces that such series never decrease.
        """
        cat = "monotonic" if monotonic else "counter"
        if cat not in self.categories:
            return
        self._records.append({
            "name": name, "ph": "C", "ts": self.events.now, "pid": PID,
            "tid": self._tid(track), "cat": cat, "args": {name: value},
        })

    def async_begin(self, track: str, name: str, async_id: int,
                    cat: str = "mem", args: Optional[dict] = None) -> None:
        """Open an overlap-capable span keyed by id (Chrome ``b``)."""
        if cat not in self.categories:
            return
        record = {"name": name, "ph": "b", "ts": self.events.now,
                  "pid": PID, "tid": self._tid(track), "cat": cat,
                  "id": async_id}
        if args:
            record["args"] = args
        self._records.append(record)

    def async_end(self, track: str, name: str, async_id: int,
                  cat: str = "mem", args: Optional[dict] = None) -> None:
        if cat not in self.categories:
            return
        record = {"name": name, "ph": "e", "ts": self.events.now,
                  "pid": PID, "tid": self._tid(track), "cat": cat,
                  "id": async_id}
        if args:
            record["args"] = args
        self._records.append(record)

    # -- event-kernel sink -------------------------------------------------------

    def kernel_scheduled(self, event) -> None:
        """EventQueue hook: an event entered the heap."""
        owner = event.owner or "(anonymous)"
        self._scheduled[owner] = self._scheduled.get(owner, 0) + 1
        if self.kernel_events:
            self.instant("kernel", f"schedule:{owner}", cat="kernel")

    def kernel_fired(self, event) -> None:
        """EventQueue hook: an event's callback is about to run."""
        owner = event.owner or "(anonymous)"
        self._fired[owner] = self._fired.get(owner, 0) + 1
        if self.kernel_events:
            self.instant("kernel", f"fire:{owner}", cat="kernel")

    # -- StatGroup snapshots -----------------------------------------------------

    def snapshot_stats(self, groups: Iterable) -> None:
        """Emit every group's plain counters as monotonic counter samples.

        Called at frame boundaries; only :class:`~repro.common.stats.Counter`
        values are emitted (rates and histogram means are not monotonic and
        would pollute the counter tracks).
        """
        for group in groups:
            track = f"stats.{group.name}"
            for name, counter in group._counters.items():
                self.counter(track, name, counter.value, monotonic=True)

    # -- export ------------------------------------------------------------------

    def close_open_spans(self) -> None:
        """Emit ``E`` records for spans still open (run ended mid-span)."""
        now = self.events.now
        for tid, stack in self._open.items():
            while stack:
                self._records.append({
                    "name": stack.pop(), "ph": "E", "ts": now, "pid": PID,
                    "tid": tid, "cat": "phase",
                    "args": {"closed_at_export": True},
                })

    def to_dict(self) -> dict:
        """The full trace as a Chrome Trace Event Format object."""
        self.close_open_spans()
        return {
            "traceEvents": list(self._records),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "1 tick == 1 us",
                "end_tick": self.events.now,
                "events_scheduled": dict(sorted(self._scheduled.items())),
                "events_fired": dict(sorted(self._fired.items())),
            },
        }

    def write(self, path: str) -> dict:
        """Serialize the trace to ``path``; returns the written object."""
        import json
        payload = self.to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        return payload


def load_trace(path: str) -> dict:
    """Load a Chrome-trace JSON file written by :meth:`Tracer.write`."""
    import json
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
