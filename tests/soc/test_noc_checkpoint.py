"""Tests for the system NoC adapter and checkpoint edge cases."""

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.memory.builders import build_baseline_memory
from repro.memory.request import MemRequest, SourceType
from repro.soc.noc import SystemNoC


class TestSystemNoC:
    def test_adds_latency(self):
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=25)
        done = []
        noc.submit(MemRequest(address=0, size=128, write=False,
                              source=SourceType.CPU,
                              callback=lambda r: done.append(r)))
        events.run()
        assert len(done) == 1
        # issue_time is stamped by the memory system after the NoC hop.
        assert done[0].issue_time >= 25

    def test_cache_port_interface(self):
        """The GPU L2 talks to the NoC through the cache access API."""
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=5)
        times = []
        noc.access(0, 128, False, lambda: times.append(events.now))
        events.run()
        assert times and times[0] > 5
        assert memory.total_bytes(SourceType.GPU) == 128

    def test_write_without_callback(self):
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=5)
        noc.access(0, 128, True, None)
        events.run()
        assert memory.total_bytes(SourceType.GPU) == 128


class TestDisplayDashRegistration:
    def test_display_without_dash_runs(self):
        from repro.soc.display import DisplayController
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        display = DisplayController(events, memory.submit,
                                    framebuffer_address=0,
                                    frame_bytes=16 * 16 * 4,
                                    period_ticks=10_000, dash_state=None)
        display.start()
        events.run_until(25_000)
        display.stop()
        events.run()
        assert display.frames_completed >= 2
