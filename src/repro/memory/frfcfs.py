"""FR-FCFS: first-ready, first-come-first-served (the baseline scheduler).

Row hits are serviced before row misses; ties break by arrival order.
This is the ``BAS`` configuration of case study I (Table 6).
"""

from __future__ import annotations

from repro.memory.dram import DRAMChannel, QueuedRequest


class FRFCFSScheduler:
    """Oldest row hit first, otherwise oldest request."""

    def choose(self, queue: list[QueuedRequest], channel: DRAMChannel,
               now: int) -> int:
        best_hit = None
        for index, entry in enumerate(queue):
            if channel.is_row_hit(entry.coord):
                if best_hit is None or entry.enqueue_time < queue[best_hit].enqueue_time:
                    best_hit = index
        if best_hit is not None:
            return best_hit
        oldest = 0
        for index, entry in enumerate(queue):
            if entry.enqueue_time < queue[oldest].enqueue_time:
                oldest = index
        return oldest

    def note_served(self, entry: QueuedRequest, now: int) -> None:
        pass


def frfcfs_within(queue: list[QueuedRequest], channel: DRAMChannel,
                  candidates: list[int]) -> int:
    """FR-FCFS restricted to a candidate subset (used by DASH classes)."""
    best_hit = None
    for index in candidates:
        if channel.is_row_hit(queue[index].coord):
            if best_hit is None or queue[index].enqueue_time < queue[best_hit].enqueue_time:
                best_hit = index
    if best_hit is not None:
        return best_hit
    oldest = candidates[0]
    for index in candidates:
        if queue[index].enqueue_time < queue[oldest].enqueue_time:
            oldest = index
    return oldest
