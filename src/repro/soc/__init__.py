"""Full-system SoC substrate (Fig. 1): CPUs, display controller, app model.

The gem5+Android analog of the reproduction: CPU cores whose traffic is
phase-locked to the frame lifecycle, a display controller with vsync
deadlines and frame aborts, an Android-like render loop driving the GPU,
and graphics checkpointing.
"""

from repro.soc.soc import EmeraldSoC, SoCResults

__all__ = ["EmeraldSoC", "SoCResults"]
