"""Supervisor scheduling: backoff, shedding, heartbeats, crash recovery."""

import json
import os
import time

import pytest

from repro.fleet import (BackoffPolicy, FleetConfig, FleetSaturated,
                         FleetSupervisor, JobSpec, run_sweep)
from repro.fleet.heartbeat import (HeartbeatMonitor, read_heartbeat,
                                   write_heartbeat)

#: Fast backoff for tests: same ladder shape, milliseconds not seconds.
FAST_BACKOFF = BackoffPolicy(base=0.01, factor=2.0, cap=0.04)


def tiny_spec(name, seed=1, frames=2, **kwargs):
    return JobSpec(name=name, frames=frames, seed=seed, **kwargs)


class TestBackoffPolicy:
    def test_capped_exponential_ladder(self):
        policy = BackoffPolicy(base=0.25, factor=2.0, cap=4.0)
        assert policy.ladder(6) == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0]

    def test_deterministic(self):
        policy = BackoffPolicy()
        assert [policy.delay_for(i) for i in range(8)] == policy.ladder(8)


class TestHeartbeat:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "hb.json")
        write_heartbeat(path, frame=3, tick=9000, beats=4)
        doc = read_heartbeat(path)
        assert doc["frame"] == 3 and doc["beats"] == 4
        assert doc["pid"] == os.getpid()

    def test_torn_write_reads_as_absent(self, tmp_path):
        path = tmp_path / "hb.json"
        path.write_text('{"frame": 3, "tick"')
        assert read_heartbeat(str(path)) is None

    def test_monitor_tracks_changes(self, tmp_path):
        path = str(tmp_path / "hb.json")
        monitor = HeartbeatMonitor(path, timeout=0.05)
        assert monitor.poll() is None
        write_heartbeat(path, frame=0, tick=1, beats=1)
        assert monitor.poll()["frame"] == 0
        assert not monitor.stale()
        time.sleep(0.08)                       # no new beat
        monitor.poll()
        assert monitor.stale()
        write_heartbeat(path, frame=1, tick=2, beats=2)
        monitor.poll()                         # fresh beat resets the clock
        assert not monitor.stale()

    def test_never_beating_worker_goes_stale(self, tmp_path):
        monitor = HeartbeatMonitor(str(tmp_path / "none.json"),
                                   timeout=0.01)
        time.sleep(0.03)
        monitor.poll()
        assert monitor.stale()

    def test_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatMonitor(str(tmp_path / "hb.json"), timeout=0)


class TestSubmission:
    def test_duplicate_names_rejected(self, tmp_path):
        supervisor = FleetSupervisor(FleetConfig(), str(tmp_path))
        supervisor.submit(tiny_spec("a"))
        with pytest.raises(ValueError, match="duplicate"):
            supervisor.submit(tiny_spec("a"))

    def test_saturation_sheds_with_a_typed_error(self, tmp_path):
        supervisor = FleetSupervisor(FleetConfig(queue_limit=2),
                                     str(tmp_path))
        supervisor.submit(tiny_spec("a"))
        supervisor.submit(tiny_spec("b", seed=2))
        with pytest.raises(FleetSaturated) as info:
            supervisor.submit(tiny_spec("c", seed=3))
        assert info.value.pending == 2
        assert info.value.limit == 2
        shed = supervisor.records[-1]
        assert shed.spec.name == "c"
        assert shed.outcome == "shed"

    def test_submit_sweep_records_shed_jobs(self, tmp_path):
        supervisor = FleetSupervisor(FleetConfig(queue_limit=1),
                                     str(tmp_path))
        supervisor.submit_sweep([tiny_spec("a"), tiny_spec("b", seed=2)])
        outcomes = {r.spec.name: r.outcome for r in supervisor.records}
        assert outcomes == {"a": "pending", "b": "shed"}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0)
        with pytest.raises(ValueError, match="queue_limit"):
            FleetConfig(queue_limit=0)
        with pytest.raises(ValueError, match="max_attempts"):
            FleetConfig(max_attempts=-1)

    def test_empty_sweep_completes(self, tmp_path):
        report = run_sweep([], FleetConfig(), workdir=str(tmp_path))
        assert report.ok
        assert report.records == []
        assert report.executed == 0


@pytest.mark.slow
@pytest.mark.full_system
class TestFleetEndToEnd:
    """The acceptance contract: injected crashes and hangs, nothing lost,
    cache-served reruns bit-identical to a fault-free pass."""

    def test_sweep_with_injected_kill_completes_and_caches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = FleetConfig(
            workers=2, backoff=FAST_BACKOFF, cache_dir=cache_dir,
            # SIGKILL cube-s1's first attempt after frame 1: attempt 2
            # consumes no control and resumes from the checkpoint.
            inject={"cube-s1": [{"kill_at_frame": 1}]})
        specs = [tiny_spec("cube-s1", seed=1), tiny_spec("cube-s2", seed=2)]
        report = run_sweep(specs, config, workdir=str(tmp_path / "work"))

        assert report.ok
        assert report.counts() == {"ok": 2}
        killed = next(r for r in report.records if r.spec.name == "cube-s1")
        assert [a.outcome for a in killed.attempts] == ["crashed", "ok"]
        assert killed.attempts[0].bundle            # triage for the crash
        assert os.path.isdir(killed.attempts[0].bundle)
        assert killed.attempts[1].resumed_from == 1  # checkpoint, not tick 0
        assert killed.attempts[1].backoff_delay == FAST_BACKOFF.delay_for(0)

        # Rerun: everything served from cache, zero workers spawned.
        rerun = run_sweep(specs,
                          FleetConfig(workers=2, cache_dir=cache_dir),
                          workdir=str(tmp_path / "work2"))
        assert rerun.ok
        assert rerun.executed == 0
        assert rerun.cached == 2
        assert [r.payload for r in rerun.records] \
            == [r.payload for r in report.records]

    def test_retry_backoff_result_bit_identical_to_fault_free(self,
                                                              tmp_path):
        """Fail twice (SIGKILL), succeed on attempt 3; recorded delays
        follow the capped exponential ladder and the cached bytes equal a
        fault-free run's exactly."""
        spec = tiny_spec("cube-s5", seed=5)
        clean_cache = str(tmp_path / "clean-cache")
        clean = run_sweep([spec],
                          FleetConfig(workers=1, cache_dir=clean_cache),
                          workdir=str(tmp_path / "clean"))
        assert clean.ok and not clean.records[0].attempts[0].resumed_from

        bumpy_cache = str(tmp_path / "bumpy-cache")
        config = FleetConfig(
            workers=1, max_attempts=3, backoff=FAST_BACKOFF,
            cache_dir=bumpy_cache,
            inject={"cube-s5": [{"kill_at_frame": 0},
                                {"kill_at_frame": 1}]})
        bumpy = run_sweep([spec], config, workdir=str(tmp_path / "bumpy"))
        record = bumpy.records[0]
        assert record.ok
        assert [a.outcome for a in record.attempts] \
            == ["crashed", "crashed", "ok"]
        assert [a.backoff_delay for a in record.attempts] \
            == [0.0] + FAST_BACKOFF.ladder(2)

        key = record.key
        clean_entry = os.path.join(clean_cache, key[:2], key, "result.json")
        bumpy_entry = os.path.join(bumpy_cache, key[:2], key, "result.json")
        with open(clean_entry, "rb") as handle:
            clean_bytes = handle.read()
        with open(bumpy_entry, "rb") as handle:
            bumpy_bytes = handle.read()
        assert clean_bytes == bumpy_bytes      # bit-identical, post-crash

    def test_retries_exhausted_is_failed_not_lost(self, tmp_path):
        config = FleetConfig(
            workers=1, max_attempts=2, backoff=FAST_BACKOFF,
            inject={"doomed": [{"kill_at_frame": 0},
                               {"kill_at_frame": 0}]})
        report = run_sweep([tiny_spec("doomed", frames=1)], config,
                           workdir=str(tmp_path))
        record = report.records[0]
        assert record.outcome == "failed"
        assert len(record.attempts) == 2
        assert all(a.outcome == "crashed" for a in record.attempts)
        assert all(a.bundle for a in record.attempts)

    def test_hung_worker_is_detected_killed_and_retried(self, tmp_path):
        config = FleetConfig(
            workers=1, heartbeat_timeout=1.0, backoff=FAST_BACKOFF,
            inject={"sleepy": [{"hang_at_frame": 0}]})
        report = run_sweep([tiny_spec("sleepy", frames=1)], config,
                           workdir=str(tmp_path))
        record = report.records[0]
        assert record.ok
        assert [a.outcome for a in record.attempts] == ["hung", "ok"]
        assert "no heartbeat" in record.attempts[0].detail

    def test_preemption_resumes_and_costs_no_attempt(self, tmp_path):
        config = FleetConfig(workers=1, preempt_after=0.0,
                             cache_dir=str(tmp_path / "cache"))
        report = run_sweep([tiny_spec("long", frames=2)], config,
                           workdir=str(tmp_path / "work"))
        record = report.records[0]
        assert record.ok
        assert record.preemptions >= 1
        assert len(record.attempts) == 1       # preemptions aren't attempts
        assert record.attempts[-1].resumed_from >= 1

    def test_reused_workdir_does_not_resume_a_stale_checkpoint(
            self, tmp_path):
        """A fresh sweep in a reused workdir (the CLI's default
        ``fleet-work``) must start each job from scratch, not resume a
        previous sweep's checkpoint — and must not poison the cache with
        the previous config's payload."""
        workdir = str(tmp_path / "work")
        first = run_sweep([tiny_spec("wd-job", frames=2)],
                          FleetConfig(workers=1), workdir=workdir)
        assert first.ok

        # Same job name, same workdir, different physics, fresh cache.
        cached = str(tmp_path / "cache")
        second = run_sweep([tiny_spec("wd-job", frames=1)],
                           FleetConfig(workers=1, cache_dir=cached),
                           workdir=workdir)
        record = second.records[0]
        assert record.ok
        assert record.attempts[0].resumed_from == 0

        # The cached payload equals a clean-workdir run's, bit-for-bit.
        clean = run_sweep([tiny_spec("wd-job", frames=1)],
                          FleetConfig(workers=1,
                                      cache_dir=str(tmp_path / "cache2")),
                          workdir=str(tmp_path / "fresh"))
        assert record.payload == clean.records[0].payload

    def test_published_result_supersedes_staleness_verdict(self, tmp_path):
        """A worker that publishes its result and only then goes silent
        was *done*: the result is accepted, not discarded for a wasted
        retry."""
        config = FleetConfig(
            workers=1, heartbeat_timeout=1.0, backoff=FAST_BACKOFF,
            inject={"racer": [{"hang_after_result": True}]})
        report = run_sweep([tiny_spec("racer", frames=1)], config,
                           workdir=str(tmp_path))
        record = report.records[0]
        assert record.ok
        assert [a.outcome for a in record.attempts] == ["ok"]
        assert report.executed == 1            # no retry burned

    def test_cache_publish_failure_keeps_job_ok_and_sweep_alive(
            self, tmp_path):
        """An OSError from the cache publish (disk full) is recorded on
        the record; the job stays ok and later jobs still run — the
        supervisor loop never dies mid-sweep."""
        supervisor = FleetSupervisor(
            FleetConfig(workers=1, cache_dir=str(tmp_path / "cache")),
            str(tmp_path / "work"))

        def out_of_space(key, manifest, payload):
            raise OSError(28, "No space left on device")

        supervisor.cache.store = out_of_space
        supervisor.submit(tiny_spec("nospace", frames=1))
        supervisor.submit(tiny_spec("after", frames=1, seed=2))
        report = supervisor.run()
        assert report.ok
        assert report.counts() == {"ok": 2}
        assert all("No space left" in r.cache_error
                   for r in report.records)

    def test_report_to_dict_is_json_shaped(self, tmp_path):
        report = run_sweep([tiny_spec("one", frames=1)],
                           FleetConfig(workers=1),
                           workdir=str(tmp_path))
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == "repro-fleet-report/1"
        assert doc["ok"] is True
        assert doc["jobs"][0]["spec"]["name"] == "one"


class TestMonotonicProgressClock:
    """Staleness keys on the monotonic progress counter under a mocked
    clock: wall-clock rewrites without progress still time out, and
    wall-clock jumps never expire a worker that is making progress."""

    def _clock(self, monkeypatch):
        import repro.fleet.heartbeat as hb

        class Clock:
            mono = 1_000.0
            wall = 5_000_000.0

            @classmethod
            def monotonic(cls):
                return cls.mono

            @classmethod
            def time(cls):
                return cls.wall

        monkeypatch.setattr(hb, "time", Clock)
        return Clock

    def test_frozen_progress_with_fresh_timestamps_times_out(
            self, tmp_path, monkeypatch):
        clock = self._clock(monkeypatch)
        path = str(tmp_path / "hb.json")
        monitor = HeartbeatMonitor(path, timeout=10.0)
        write_heartbeat(path, frame=3, tick=30, beats=7)
        monitor.poll()
        assert monitor.age() == 0.0
        for _ in range(5):
            clock.mono += 4.0
            clock.wall += 4.0
            write_heartbeat(path, frame=3, tick=30, beats=7)
            monitor.poll()
        # The file is fresh by wall clock, but the counter never moved.
        assert monitor.last["time"] == clock.wall
        assert monitor.age() == 20.0
        assert monitor.stale()

    def test_progress_advance_resets_the_deadline(self, tmp_path,
                                                  monkeypatch):
        clock = self._clock(monkeypatch)
        path = str(tmp_path / "hb.json")
        monitor = HeartbeatMonitor(path, timeout=10.0)
        for beat in range(4):
            clock.mono += 8.0
            write_heartbeat(path, frame=beat, tick=beat * 10,
                            beats=beat + 1)
            monitor.poll()
            assert monitor.age() == 0.0
        clock.mono += 9.9
        assert not monitor.stale()
        clock.mono += 0.2
        assert monitor.stale()

    def test_wall_clock_jumps_cannot_expire_a_live_worker(
            self, tmp_path, monkeypatch):
        clock = self._clock(monkeypatch)
        path = str(tmp_path / "hb.json")
        monitor = HeartbeatMonitor(path, timeout=10.0)
        for beat in range(3):
            clock.mono += 5.0
            clock.wall -= 40_000.0           # NTP step / suspend-resume
            write_heartbeat(path, frame=0, tick=0, beats=beat + 1)
            monitor.poll()
        assert not monitor.stale()

    def test_explicit_progress_counter_overrides_beats(self, tmp_path,
                                                       monkeypatch):
        clock = self._clock(monkeypatch)
        path = str(tmp_path / "hb.json")
        monitor = HeartbeatMonitor(path, timeout=10.0)
        write_heartbeat(path, frame=0, tick=0, beats=1, progress=5)
        monitor.poll()
        clock.mono += 6.0
        # beats moved but the declared progress counter did not: hung.
        write_heartbeat(path, frame=0, tick=0, beats=2, progress=5)
        monitor.poll()
        assert monitor.age() == 6.0
