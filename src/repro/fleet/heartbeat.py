"""Worker liveness: file-based heartbeats + the supervisor-side monitor.

Workers beat by atomically rewriting a small JSON file at every frame
boundary (the same cadence as checkpoints).  The supervisor polls the
file and applies the watchdog's deadline idiom (``repro.health.watchdog``)
to it: a worker whose process is alive but whose heartbeat has made no
*progress* within the timeout is *hung* — killed and requeued — while a
dead process with no result is *crashed*.  Files survive SIGKILL, so a
violently killed worker leaves its last observed progress behind for the
triage bundle.

Clock discipline (ISSUE 10): staleness must survive system clock jumps
in both directions.  Two rules enforce that:

* the monitor measures elapsed time with ``time.monotonic()`` only — a
  wall-clock step (NTP slew, suspend/resume, a VM migration) can neither
  mass-expire every healthy worker nor rewind a deadline;
* "alive" means the **monotonic attempt-progress counter** advanced, not
  "the file changed".  Heartbeats carry a wall-clock ``time`` field for
  humans and triage bundles, but a worker that keeps rewriting its file
  with a fresh timestamp and a frozen ``progress`` counter is hung and
  times out on schedule.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional


def write_heartbeat(path: str, *, frame: int, tick: int, beats: int,
                    progress: Optional[int] = None) -> None:
    """Atomically publish one heartbeat (write-then-rename).

    ``progress`` is the monotonic attempt-progress counter the staleness
    verdict keys on; it defaults to ``beats`` (which the worker's frame
    hook increments every call).  ``time`` is wall-clock provenance for
    humans reading a triage bundle — the monitor never consults it.
    """
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump({"frame": frame, "tick": tick, "beats": beats,
                   "progress": beats if progress is None else progress,
                   "time": time.time(),
                   "pid": os.getpid()}, handle)
    os.replace(tmp, path)


def read_heartbeat(path: str) -> Optional[dict]:
    """The last complete heartbeat, or None (absent / torn write)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def _progress_of(doc: dict):
    """The doc's progress marker.

    Current-format heartbeats carry an explicit monotonic ``progress``
    counter.  Legacy docs (pre-ISSUE-10) fall back to the volatile-free
    remainder of the document, so a heartbeat whose only change is its
    wall-clock ``time`` field never counts as progress either way.
    """
    if "progress" in doc:
        return ("counter", doc["progress"])
    volatile_free = {k: v for k, v in doc.items() if k != "time"}
    return ("doc", volatile_free)


class HeartbeatMonitor:
    """Tracks one worker's heartbeat file; answers "is it stale?".

    ``timeout`` is seconds (measured monotonically) without observed
    *progress* before the worker counts as hung.  The clock starts at
    construction (process launch), so a worker that never beats at all
    also times out.
    """

    def __init__(self, path: str, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.path = path
        self.timeout = timeout
        self._last_seen: Optional[dict] = None
        self._last_progress = None
        self._changed_at = time.monotonic()

    def poll(self) -> Optional[dict]:
        """Re-read the file; returns the latest heartbeat (or None)."""
        doc = read_heartbeat(self.path)
        if doc is not None:
            progress = _progress_of(doc)
            if progress != self._last_progress:
                self._last_progress = progress
                self._changed_at = time.monotonic()
            self._last_seen = doc
        return self._last_seen

    @property
    def last(self) -> Optional[dict]:
        return self._last_seen

    def age(self) -> float:
        """Seconds since progress was last observed (or since launch)."""
        return time.monotonic() - self._changed_at

    def stale(self) -> bool:
        return self.age() > self.timeout
