"""Chaos harness: seeded fault sweeps with the sanitizer armed.

``python -m repro chaos`` runs the tiny full-system workload (the
selftest footprint: 48x36, two clusters) through a fixed catalog of
fault-injection scenarios, each at several seeds, with the runtime
sanitizer armed and checkpoint round-trip verification on.  The contract
under test is the health subsystem's own: **every injected fault either
degrades gracefully or dies loudly** —

* ``ok`` — the run completed; faults were absorbed by retries /
  checkpoints / display re-show (graceful degradation);
* ``violation`` — a typed :class:`~repro.sanitize.violations.
  SanitizerViolation` caught the failure at the moment an invariant
  broke, with a triage bundle written;
* ``detected`` — a wrapped :class:`~repro.common.events.SimulationError`
  (watchdog report, event-budget hang guard) named the failure, with a
  triage bundle written;
* ``FAILED`` — anything else: a bare traceback or a silent hang.  This is
  the only outcome that fails the sweep (and CI).

Each scenario run is budgeted (``--budget-events``) so a livelock the
sanitizer somehow misses still terminates as ``detected`` rather than
hanging the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.events import SimulationError
from repro.health import FaultConfig, HealthConfig, RetryConfig
from repro.sanitize.sanitizer import SanitizeConfig
from repro.sanitize.violations import SanitizerViolation

#: Sweep footprint (mirrors ``python -m repro selftest``).
WIDTH, HEIGHT = 48, 36
DEFAULT_SEEDS = (1, 2, 3)
DEFAULT_BUDGET = 2_000_000

#: Sanitizer thresholds for chaos runs: tight enough that a stuck request
#: is flagged by the sanitizer's age scans *before* the watchdog's
#: retry-ladder-stretched deadline turns it into a generic report, loose
#: enough that injected delays and retry recoveries stay below them.
CHAOS_SANITIZE = SanitizeConfig(
    max_block_age=80_000,
    mshr_age=120_000,
    dram_queue_age=120_000,
    inflight_age=120_000,
    link_age=120_000,
    liveness_window=100_000,
)


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault configuration swept per seed."""

    name: str
    faults: FaultConfig                 # seed is overridden per sweep run
    retry: Optional[RetryConfig] = None
    expect: str = "ok"                  # documentation of the usual outcome


#: The catalog: every fault class alone and in combination, with and
#: without the retry ladder that makes drops recoverable.
SCENARIOS = (
    ChaosScenario("baseline", FaultConfig()),
    ChaosScenario("reply-delay", FaultConfig(dram_delay=0.05)),
    ChaosScenario("noc-spike", FaultConfig(noc_spike=0.08)),
    ChaosScenario("display-underrun", FaultConfig(display_underrun=0.2)),
    ChaosScenario("reply-drop-retry", FaultConfig(dram_drop=0.02),
                  retry=RetryConfig()),
    ChaosScenario("combined-retry",
                  FaultConfig(dram_drop=0.02, dram_delay=0.05,
                              noc_spike=0.05, display_underrun=0.1),
                  retry=RetryConfig()),
    ChaosScenario("reply-drop-unprotected", FaultConfig(dram_drop=0.03),
                  expect="violation"),
)


@dataclass
class ChaosResult:
    """Outcome of one (scenario, seed) run."""

    scenario: str
    seed: int
    outcome: str                        # ok | violation | detected | FAILED
    detail: str = ""
    bundle: Optional[str] = None
    end_tick: int = 0
    violations: int = 0
    expected: str = "ok"                # the scenario's documented outcome

    @property
    def failed(self) -> bool:
        return self.outcome == "FAILED"

    @property
    def unexpected_violation(self) -> bool:
        """A violation in a scenario not cataloged to produce one —
        machine consumers (the fleet, CI) treat this as a failure."""
        return self.outcome == "violation" and self.expected != "violation"

    def to_dict(self) -> dict:
        return {"scenario": self.scenario, "seed": self.seed,
                "outcome": self.outcome, "expected": self.expected,
                "detail": self.detail, "bundle": self.bundle,
                "end_tick": self.end_tick, "violations": self.violations}


@dataclass
class ChaosReport:
    """Everything one sweep produced."""

    results: list[ChaosResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ChaosResult]:
        return [r for r in self.results if r.failed]

    @property
    def unexpected_violations(self) -> list[ChaosResult]:
        return [r for r in self.results if r.unexpected_violation]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """Machine-readable summary (per-scenario outcomes, bundle paths)
        for the fleet and CI to consume."""
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return {
            "schema": "repro-chaos-summary/1",
            "ok": self.ok,
            "counts": counts,
            "unexpected_violations": len(self.unexpected_violations),
            "bundles": [r.bundle for r in self.results if r.bundle],
            "results": [r.to_dict() for r in self.results],
        }


def _run_config(scenario: ChaosScenario, seed: int, frames: int,
                sanitize: SanitizeConfig):
    from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
    from repro.soc.soc import SoCRunConfig
    from repro.trace import TraceConfig

    return SoCRunConfig(
        width=WIDTH, height=HEIGHT, num_frames=frames,
        memory_config="BAS",
        dram=DRAMConfig(channels=2),
        gpu=scaled_gpu(GPUConfig(num_clusters=2)),
        gpu_frame_period_ticks=120_000,
        display_period_ticks=60_000,
        cpu_work_per_frame=40,
        seed=seed,
        health=HealthConfig(
            watchdog=True,
            faults=replace(scenario.faults, seed=seed),
            retry=scenario.retry,
            checkpoint_every=1,
            error_policy="wrap"),
        # Tracing rides every chaos run so a failure's triage bundle
        # carries the trace tail leading up to the violation.
        trace=TraceConfig(),
        sanitize=sanitize,
    )


def run_one(scenario: ChaosScenario, seed: int, *,
            budget_events: int = DEFAULT_BUDGET, frames: int = 2,
            bundle_dir: Optional[str] = None) -> ChaosResult:
    """Run one scenario at one seed; never lets an exception escape."""
    from repro.harness.scenes import SceneSession
    from repro.soc.soc import EmeraldSoC

    sanitize = replace(
        CHAOS_SANITIZE, bundle_dir=bundle_dir,
        command=(f"python -m repro chaos --scenario {scenario.name} "
                 f"--seeds {seed} --budget-events {budget_events}"))
    session = SceneSession("cube", WIDTH, HEIGHT)
    soc = EmeraldSoC(_run_config(scenario, seed, frames, sanitize),
                     session.frame, session.framebuffer_address)
    try:
        results = soc.run(max_events=budget_events)
    except SanitizerViolation as violation:
        return ChaosResult(scenario.name, seed, "violation",
                           detail=str(violation),
                           bundle=violation.bundle_path,
                           end_tick=soc.events.now,
                           violations=len(soc.sanitizer.violations),
                           expected=scenario.expect)
    except SimulationError as error:
        return ChaosResult(scenario.name, seed, "detected",
                           detail=str(error), end_tick=soc.events.now,
                           expected=scenario.expect)
    except Exception as exc:            # the contract breach chaos exists
        return ChaosResult(scenario.name, seed, "FAILED",   # to catch
                           detail=f"{type(exc).__name__}: {exc}",
                           end_tick=soc.events.now,
                           expected=scenario.expect)
    return ChaosResult(scenario.name, seed, "ok",
                       detail=(f"{results.noc_retries} retries, "
                               f"{results.display_aborted} aborted frames, "
                               f"{results.checkpoints_taken} checkpoints"),
                       end_tick=results.end_tick,
                       violations=results.sanitizer_violations,
                       expected=scenario.expect)


def run_chaos(seeds=DEFAULT_SEEDS, *, budget_events: int = DEFAULT_BUDGET,
              frames: int = 2, bundle_dir: Optional[str] = None,
              scenarios=SCENARIOS,
              progress=None) -> ChaosReport:
    """Sweep every scenario across ``seeds``; returns the full report."""
    report = ChaosReport()
    for scenario in scenarios:
        for seed in seeds:
            result = run_one(scenario, seed, budget_events=budget_events,
                             frames=frames, bundle_dir=bundle_dir)
            report.results.append(result)
            if progress is not None:
                progress(result)
    return report


def format_report(report: ChaosReport) -> str:
    lines = [f"{'scenario':<24} {'seed':>4}  {'outcome':<10} detail",
             "-" * 72]
    for r in report.results:
        lines.append(f"{r.scenario:<24} {r.seed:>4}  {r.outcome:<10} "
                     f"{r.detail[:80]}")
    counts = {}
    for r in report.results:
        counts[r.outcome] = counts.get(r.outcome, 0) + 1
    summary = ", ".join(f"{count} {outcome}"
                        for outcome, count in sorted(counts.items()))
    lines.append("-" * 72)
    lines.append(f"{len(report.results)} runs: {summary}")
    return "\n".join(lines)
