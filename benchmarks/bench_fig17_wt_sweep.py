"""Fig. 17: frame execution time vs work-tile (WT) size, per workload.

Paper shape: execution time varies substantially (25-88%) across WT sizes
1-10; the best WT size differs from workload to workload; W5 (translucent
Suzanne) is best at WT=1.
"""

import pytest

from benchmarks.conftest import cs2_config, cs2_workloads, run_once
from repro.harness.case_study2 import wt_sweep
from repro.harness.report import format_table

WT_RANGE = range(1, 11)


@pytest.fixture(scope="module")
def sweep_data(request):
    config = cs2_config()
    data = {}
    for workload in cs2_workloads():
        results = wt_sweep(workload, wt_sizes=WT_RANGE, config=config)
        data[workload] = {wt: r.time for wt, r in results.items()}
    return data


def test_fig17_wt_sweep(benchmark, sweep_data):
    data = run_once(benchmark, lambda: sweep_data)

    rows = []
    for workload, times in data.items():
        base = times[1]
        rows.append([workload] + [times[wt] / base for wt in WT_RANGE])
    print()
    print(format_table(
        ["workload"] + [f"WT{wt}" for wt in WT_RANGE], rows,
        title="Fig. 17 — frame execution time vs WT size "
              "(normalized to WT=1)"))

    best = {w: min(times, key=times.get) for w, times in data.items()}
    spread = {w: max(times.values()) / min(times.values())
              for w, times in data.items()}
    print(f"best WT per workload: {best}")
    print(f"max/min spread per workload: "
          f"{ {w: round(s, 2) for w, s in spread.items()} }")

    # Shape checks (paper: 25%-88% variation; best WT differs; W5 best=1).
    assert any(s >= 1.25 for s in spread.values()), \
        "expected at least one workload with >=25% WT sensitivity"
    assert len(set(best.values())) > 1, \
        "expected the optimal WT size to differ across workloads"
    if "W5" in best:
        assert best["W5"] <= 2, "W5 should favor maximum load balance"
