"""Tests for the Android-like render loop."""

import pytest

from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.common.events import EventQueue
from repro.gpu.gpu import EmeraldGPU
from repro.harness.scenes import SceneSession
from repro.memory.builders import build_baseline_memory, build_dash_memory
from repro.memory.request import SourceType
from repro.soc.android import RenderLoop
from repro.soc.cpu import CPUCore, CPUCoreConfig


def make_loop(num_frames=3, period=200_000, dash=False, cpu_work=20,
              cpu_fixed=0):
    events = EventQueue()
    if dash:
        memory, dash_state = build_dash_memory(events, DRAMConfig(channels=2))
        dash_state.register_ip(SourceType.GPU, period)
    else:
        memory = build_baseline_memory(events, DRAMConfig(channels=2))
        dash_state = None
    gpu = EmeraldGPU(events, scaled_gpu(GPUConfig(num_clusters=2)), 64, 48,
                     memory=memory)
    app_core = CPUCore(events, 0, memory.submit,
                       CPUCoreConfig(active=False), base_address=0x9000_0000)
    session = SceneSession("cube", 64, 48)
    loop = RenderLoop(events, gpu, app_core, session.frame,
                      num_frames=num_frames, frame_period_ticks=period,
                      cpu_work_per_frame=cpu_work,
                      cpu_fixed_ticks=cpu_fixed, dash_state=dash_state)
    return events, loop, dash_state


class TestRenderLoop:
    def test_runs_requested_frames(self):
        events, loop, _ = make_loop(num_frames=3)
        loop.start()
        events.run()
        assert loop.finished
        assert len(loop.records) == 3
        assert all(r.gpu_done > r.cpu_done > r.start for r in loop.records)

    def test_frame_pacing_to_period(self):
        events, loop, _ = make_loop(num_frames=3, period=150_000)
        loop.start()
        events.run()
        starts = [r.start for r in loop.records]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(g == 150_000 for g in gaps), \
            "a fast app must pace frames to its period"

    def test_behind_schedule_starts_immediately(self):
        events, loop, _ = make_loop(num_frames=3, period=100)
        loop.start()
        events.run()
        assert loop.stats.counter("missed_periods").value >= 2

    def test_cpu_fixed_ticks_lengthen_cpu_phase(self):
        events_a, loop_a, _ = make_loop(num_frames=2, cpu_fixed=0)
        loop_a.start()
        events_a.run()
        events_b, loop_b, _ = make_loop(num_frames=2, cpu_fixed=30_000)
        loop_b.start()
        events_b.run()
        assert (loop_b.records[0].cpu_time
                >= loop_a.records[0].cpu_time + 30_000)

    def test_mean_metrics_skip_warmup(self):
        events, loop, _ = make_loop(num_frames=3)
        loop.start()
        events.run()
        assert loop.mean_gpu_time(skip=1) > 0
        assert loop.mean_total_time(skip=1) >= loop.mean_gpu_time(skip=1)
        assert 0.0 <= loop.achieved_fps_fraction() <= 1.0

    def test_gpu_progress_reported_to_dash(self):
        events, loop, dash_state = make_loop(num_frames=3, dash=True)
        loop.start()
        events.run()
        state = dash_state.ip_state(SourceType.GPU)
        assert state is not None
        assert state.progress == 1.0       # final report at frame end

    def test_first_frame_reports_on_track(self):
        """Without history the driver must not let the GPU look stalled."""
        events, loop, dash_state = make_loop(num_frames=1, dash=True)
        progress_seen = []
        original = dash_state.report_ip_progress

        def spy(source, fraction, now):
            if source is SourceType.GPU:
                progress_seen.append(fraction)
            original(source, fraction, now)

        dash_state.report_ip_progress = spy
        loop.start()
        events.run()
        assert progress_seen[0] == 1.0

    def test_on_finished_callback(self):
        called = []
        events, loop, _ = make_loop(num_frames=1)
        loop.on_finished = lambda: called.append(True)
        loop.start()
        events.run()
        assert called == [True]
