"""Ablations of the design choices DESIGN.md calls out.

Beyond the paper's figures: quantify the mechanisms individually.

* **Hi-Z**: disable the hierarchical-Z stage and measure the extra
  fragment shading on a depth-complex scene (paper Fig. 3 stage J).
* **TC coalescing**: shrink the TCE staging bins to 1 (every raster tile
  its own shading batch) and measure warp-count/time inflation
  (Fig. 7's motivation).
* **Energy**: the DFSL energy argument — a faster WT choice burns less
  leakage for the same shaded work (§6.3's motivation).
"""

import numpy as np
import pytest
from dataclasses import replace

from benchmarks.conftest import run_once
from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.common.events import EventQueue
from repro.gl.context import GLContext
from repro.gl.state import CullMode, DepthFunc
from repro.gpu.energy import measure_frame_energy
from repro.gpu.gpu import EmeraldGPU
from repro.harness.case_study2 import CS2Config, make_gpu as cs2_gpu
from repro.harness.report import format_table
from repro.harness.scenes import SceneSession
from repro.memory.builders import build_baseline_memory

WIDTH, HEIGHT = 96, 96

FLAT_VS = "in vec3 position;\nvoid main() { gl_Position = vec4(position, 1.0); }"
FLAT_FS = ("uniform vec4 flat_color;\n"
           "void main() { gl_FragColor = flat_color; }")


def depth_complex_frame():
    """Five stacked full-screen layers drawn front to back."""
    from repro.geometry.mesh import Mesh
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.use_program(FLAT_VS, FLAT_FS)
    ctx.set_state(cull=CullMode.NONE, depth_func=DepthFunc.LEQUAL)
    for i, z in enumerate(np.linspace(-0.8, 0.8, 5)):
        ctx.set_uniform("flat_color", [0.2 * (i + 1), 0.2, 0.2, 1.0])
        quad = Mesh(
            positions=np.array([[-1.0, -1.0, z], [1.0, -1.0, z],
                                [-1.0, 1.0, z], [1.0, 1.0, z]]),
            indices=np.array([0, 1, 2, 1, 3, 2]), name=f"layer{i}")
        ctx.draw_mesh(quad)
    return ctx.end_frame()


def build_gpu(hiz_enabled=True, tc_bins=4):
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=2))
    config = scaled_gpu(GPUConfig(num_clusters=2))
    raster = replace(config.raster, hiz_enabled=hiz_enabled,
                     tc_bins_per_engine=tc_bins)
    config = replace(config, raster=raster)
    return EmeraldGPU(events, config, WIDTH, HEIGHT, memory=memory)


def test_ablation_hiz(benchmark):
    def run():
        frame = depth_complex_frame()
        with_hiz = build_gpu(hiz_enabled=True).run_frame(frame)
        without = build_gpu(hiz_enabled=False).run_frame(frame)
        return with_hiz, without

    with_hiz, without = run_once(benchmark, run)
    rows = [
        ["hiz_on", with_hiz.fragments, with_hiz.hiz_culled_fragments,
         with_hiz.cycles],
        ["hiz_off", without.fragments, without.hiz_culled_fragments,
         without.cycles],
    ]
    print()
    print(format_table(["config", "fragments_shaded", "hiz_culled",
                        "cycles"], rows,
                       title="Ablation — hierarchical-Z on a 5-layer "
                             "front-to-back scene"))
    assert with_hiz.hiz_culled_fragments > 0, "Hi-Z should cull something"
    assert without.hiz_culled_fragments == 0
    assert with_hiz.fragments < without.fragments, \
        "Hi-Z must reduce shaded fragments on occluded layers"


def test_ablation_tc_coalescing(benchmark):
    session = SceneSession("teapot", WIDTH, HEIGHT)
    frame = session.frame(0)

    def run():
        coalesced = build_gpu(tc_bins=4).run_frame(frame)
        uncoalesced = build_gpu(tc_bins=1).run_frame(frame)
        return coalesced, uncoalesced

    coalesced, uncoalesced = run_once(benchmark, run)
    rows = [
        ["bins=4", coalesced.tc_tiles, coalesced.cycles],
        ["bins=1", uncoalesced.tc_tiles, uncoalesced.cycles],
    ]
    print()
    print(format_table(["config", "tc_tiles", "cycles"], rows,
                       title="Ablation — TC staging capacity (teapot: many "
                             "micro-primitives)"))
    assert uncoalesced.tc_tiles > coalesced.tc_tiles, \
        "without staging capacity every raster tile becomes its own batch"


def test_ablation_dfsl_energy(benchmark):
    """DFSL's energy story: a better WT renders faster -> less leakage."""
    config = CS2Config()
    session = SceneSession("spot", config.width, config.height,
                           texture_size=config.texture_size)
    frames = [session.frame(i) for i in range(3)]

    def run():
        results = {}
        for wt in (1, 2, 10):
            gpu = cs2_gpu(config, wt)
            gpu.run_frame(frames[0])               # warm caches
            _, energy = measure_frame_energy(gpu, frames[1])
            stats = gpu.frame_history[-1]
            results[wt] = (stats, energy)
        return results

    results = run_once(benchmark, run)
    rows = []
    for wt, (stats, energy) in results.items():
        rows.append([wt, stats.fragment_cycles, stats.fragments,
                     round(energy.leakage * 1e-6, 3),
                     round(energy.total_uj, 3)])
    print()
    print(format_table(
        ["WT", "frag_cycles", "fragments", "leakage_uJ", "total_uJ"],
        rows, title="Ablation — energy vs WT size (W2, frame 1)"))

    # Same shaded work across WT sizes; slower distributions burn more.
    fragments = {wt: stats.fragments for wt, (stats, _) in results.items()}
    assert len(set(fragments.values())) == 1, "WT must not change the work"
    times = {wt: stats.fragment_cycles for wt, (stats, _) in results.items()}
    energies = {wt: e.total_pj for wt, (_, e) in results.items()}
    best_wt = min(times, key=times.get)
    worst_wt = max(times, key=times.get)
    assert energies[best_wt] < energies[worst_wt], \
        "the faster distribution must consume less energy (leakage)"
