"""Error-path tests: clear messages when the API is misused."""

import numpy as np
import pytest

from repro.gl.context import GLContext
from repro.gl.state import CullMode
from repro.pipeline.renderer import ReferenceRenderer
from repro.pipeline.shading_env import build_varying_link
from repro.pipeline.vertex import build_constant_bank
from repro.shader.compiler import compile_shader

from tests.pipeline.helpers import FLAT_VS, fullscreen_quad


def make_frame(vs, fs, uniforms=None, textures=None):
    ctx = GLContext(32, 32)
    ctx.use_program(vs, fs)
    ctx.set_state(cull=CullMode.NONE)
    for name, value in (uniforms or {}).items():
        ctx.set_uniform(name, value)
    for name, tex in (textures or {}).items():
        ctx.bind_texture(name, tex)
    ctx.draw_mesh(fullscreen_quad())
    return ctx.end_frame()


class TestMissingResources:
    def test_missing_uniform_reports_name(self):
        frame = make_frame(FLAT_VS,
                           "uniform vec4 flat_color;\n"
                           "void main() { gl_FragColor = flat_color; }")
        with pytest.raises(KeyError, match="flat_color"):
            ReferenceRenderer(32, 32).render(frame)

    def test_wrong_uniform_size(self):
        frame = make_frame(FLAT_VS,
                           "uniform vec4 flat_color;\n"
                           "void main() { gl_FragColor = flat_color; }",
                           uniforms={"flat_color": [1.0, 0.0]})
        with pytest.raises(ValueError, match="4 floats"):
            ReferenceRenderer(32, 32).render(frame)

    def test_missing_texture_reports_binding(self):
        frame = make_frame(
            "in vec3 position;\nin vec2 uv;\nout vec2 v_uv;\n"
            "void main() { gl_Position = vec4(position, 1.0); v_uv = uv; }",
            "in vec2 v_uv;\nuniform sampler2D albedo;\n"
            "void main() { gl_FragColor = texture(albedo, v_uv); }")
        with pytest.raises(ValueError, match="albedo"):
            ReferenceRenderer(32, 32).render(frame)

    def test_unlinked_varying_reports_name(self):
        vs = compile_shader(FLAT_VS, "vertex", name="err_vs")
        fs = compile_shader(
            "in vec2 v_missing;\n"
            "void main() { gl_FragColor = vec4(v_missing, 0.0, 1.0); }",
            "fragment", name="err_fs")
        with pytest.raises(ValueError, match="v_missing"):
            build_varying_link(vs, fs)

    def test_missing_vbo_attribute(self):
        """Shader wants normals; the quad mesh has none."""
        from repro.geometry.mesh import Mesh
        mesh = Mesh(positions=np.zeros((3, 3)), indices=np.arange(3),
                    name="bare")
        ctx = GLContext(32, 32)
        ctx.use_program(
            "in vec3 position;\nin vec3 normal;\nout vec3 v_n;\n"
            "void main() { gl_Position = vec4(position, 1.0); "
            "v_n = normal; }",
            "in vec3 v_n;\n"
            "void main() { gl_FragColor = vec4(v_n, 1.0); }")
        ctx.set_state(cull=CullMode.NONE)
        ctx.draw_mesh(mesh)
        frame = ctx.end_frame()
        with pytest.raises(KeyError, match="normal"):
            ReferenceRenderer(32, 32).render(frame)


class TestConstantBank:
    def test_bank_layout_matches_declaration_order(self):
        frame = make_frame(
            FLAT_VS,
            "uniform float a;\nuniform vec2 b;\n"
            "void main() { gl_FragColor = vec4(a, b, 1.0); }",
            uniforms={"a": [3.0], "b": [4.0, 5.0]})
        program = compile_shader(frame.draw_calls[0].fs_source, "fragment",
                                 name="bank_fs")
        bank = build_constant_bank(frame.draw_calls[0], program)
        assert bank[:3].tolist() == [3.0, 4.0, 5.0]

    def test_scalar_uniform_accepts_plain_float(self):
        frame = make_frame(
            FLAT_VS,
            "uniform float a;\n"
            "void main() { gl_FragColor = vec4(a, a, a, 1.0); }",
            uniforms={"a": 0.5})
        fb, _ = ReferenceRenderer(32, 32).render(frame)
        assert np.allclose(fb.color[:, :, 0], 0.5)
