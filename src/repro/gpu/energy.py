"""A GPUWattch-style event-count energy model.

The paper motivates DFSL by *energy*: "lower GPU energy consumption by
reducing average rendering time per frame assuming the GPU can be put into
a low power state between frames" (§6.3), and lists mobile GPUWattch
configurations as future work.  This module provides that missing piece in
the GPUWattch spirit: per-event energy coefficients multiplied by the
activity counts the timing model already collects, plus static leakage
over the active window.

Coefficients are order-of-magnitude mobile-GPU values (pJ per event);
absolute joules are not calibrated — like everything in this reproduction,
the model is for *comparisons* (e.g., DFSL vs static WT: same work, fewer
active cycles, less leakage + fewer L1 misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.gpu import GPUFrameStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules, plus leakage in pJ/cycle."""

    alu_op_pj: float = 2.0            # per warp instruction issued (32 lanes)
    l1_access_pj: float = 15.0
    l1_miss_extra_pj: float = 30.0    # tag miss + fill overhead
    l2_access_pj: float = 60.0
    dram_byte_pj: float = 20.0        # LPDDR access + IO
    raster_tile_pj: float = 25.0      # fixed-function per TC tile
    leakage_pj_per_cycle: float = 150.0   # whole-GPU static power


@dataclass
class EnergyBreakdown:
    """Per-frame energy split (picojoules)."""

    execution: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    dram: float = 0.0
    fixed_function: float = 0.0
    leakage: float = 0.0

    @property
    def total_pj(self) -> float:
        return (self.execution + self.l1 + self.l2 + self.dram
                + self.fixed_function + self.leakage)

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def as_dict(self) -> dict[str, float]:
        return {
            "execution": self.execution,
            "l1": self.l1,
            "l2": self.l2,
            "dram": self.dram,
            "fixed_function": self.fixed_function,
            "leakage": self.leakage,
            "total": self.total_pj,
        }


def frame_energy(stats: GPUFrameStats, issued_ops: int, l1_accesses: int,
                 model: EnergyModel | None = None) -> EnergyBreakdown:
    """Energy for one frame from its statistics.

    ``issued_ops`` and ``l1_accesses`` are activity deltas the caller reads
    from the cores (see :func:`gpu_activity_snapshot`); everything else
    comes from :class:`GPUFrameStats`.
    """
    model = model or EnergyModel()
    breakdown = EnergyBreakdown()
    breakdown.execution = issued_ops * model.alu_op_pj
    total_l1_misses = sum(stats.l1_misses.values())
    breakdown.l1 = (l1_accesses * model.l1_access_pj
                    + total_l1_misses * model.l1_miss_extra_pj)
    breakdown.l2 = stats.l2_accesses * model.l2_access_pj
    breakdown.dram = stats.dram_bytes * model.dram_byte_pj
    breakdown.fixed_function = stats.tc_tiles * model.raster_tile_pj
    breakdown.leakage = stats.cycles * model.leakage_pj_per_cycle
    return breakdown


def gpu_activity_snapshot(gpu) -> dict[str, int]:
    """Aggregate activity counters (take before/after a frame and diff)."""
    issued = sum(core.stats.counter("issued").value for core in gpu.cores)
    l1 = 0
    for core in gpu.cores:
        for cache in (core.l1i, core.l1d, core.l1t, core.l1z, core.l1c):
            l1 += cache.stats.counter("accesses").value
    return {"issued": issued, "l1_accesses": l1}


def soc_energy(soc, model: EnergyModel | None = None) -> EnergyBreakdown:
    """Whole-run GPU-side energy for a finished full-system run.

    Reads the cumulative activity counters an :class:`EmeraldSoC` run
    leaves behind (no per-frame snapshotting needed) and prices them with
    the same coefficients as :func:`frame_energy`; leakage integrates
    over the GPU's *active* cycles (sum of per-frame render windows), so
    the DFSL story — same work, fewer active cycles, less leakage —
    carries over to whole-run comparisons.  Deterministic for a given
    topology + workload, which is what lets the DSE driver treat energy
    as a cacheable objective.
    """
    model = model or EnergyModel()
    gpu = soc.gpu
    activity = gpu_activity_snapshot(gpu)
    breakdown = EnergyBreakdown()
    breakdown.execution = activity["issued"] * model.alu_op_pj
    l1_misses = sum(
        cache.miss_count for core in gpu.cores
        for cache in (core.l1i, core.l1d, core.l1t, core.l1z, core.l1c))
    breakdown.l1 = (activity["l1_accesses"] * model.l1_access_pj
                    + l1_misses * model.l1_miss_extra_pj)
    breakdown.l2 = (gpu.l2.stats.counter("accesses").value
                    * model.l2_access_pj)
    from repro.memory.request import SourceType
    breakdown.dram = (soc.memory.total_bytes(SourceType.GPU)
                      * model.dram_byte_pj)
    frames = gpu.frame_history
    breakdown.fixed_function = (sum(fs.tc_tiles for fs in frames)
                                * model.raster_tile_pj)
    breakdown.leakage = (sum(fs.cycles for fs in frames)
                         * model.leakage_pj_per_cycle)
    return breakdown


def measure_frame_energy(gpu, frame, model: EnergyModel | None = None):
    """Render a frame (standalone mode) and return (stats, energy)."""
    before = gpu_activity_snapshot(gpu)
    stats = gpu.run_frame(frame)
    after = gpu_activity_snapshot(gpu)
    breakdown = frame_energy(
        stats,
        issued_ops=after["issued"] - before["issued"],
        l1_accesses=after["l1_accesses"] - before["l1_accesses"],
        model=model)
    return stats, breakdown
