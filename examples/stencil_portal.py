#!/usr/bin/env python
"""Multi-pass stencil rendering: a portal mask (pipeline stage J).

Pass 1 writes a circular stencil mask (color writes effectively invisible),
pass 2 draws a lit teapot only where the stencil matches, and pass 3 fills
the outside with a dim background — the classic portal/HUD masking pattern,
running on the in-shader ROP pipeline of the GPU timing model.

Run:  python examples/stencil_portal.py [portal.ppm]
"""

import math
import sys

import numpy as np

from repro.common.config import DRAMConfig, GPUConfig
from repro.common.events import EventQueue
from repro.geometry.mesh import Mesh, PrimitiveMode
from repro.geometry.models import teapot
from repro.geometry.transforms import look_at, perspective
from repro.gl.context import GLContext
from repro.gl.state import CullMode, DepthFunc, StencilOp
from repro.gl.textures import marble
from repro.gpu.gpu import EmeraldGPU
from repro.memory.builders import build_baseline_memory
from repro.shader import builtins

WIDTH, HEIGHT = 160, 120

FLAT_VS = "in vec3 position;\nvoid main() { gl_Position = vec4(position, 1.0); }"
FLAT_FS = ("uniform vec4 flat_color;\n"
           "void main() { gl_FragColor = flat_color; }")


def disk(radius=0.7, segments=48) -> Mesh:
    positions = [(0.0, 0.0, 0.9)]
    for i in range(segments + 1):
        a = 2 * math.pi * i / segments
        positions.append((radius * math.cos(a) * HEIGHT / WIDTH,
                          radius * math.sin(a), 0.9))
    return Mesh(positions=np.array(positions),
                indices=np.arange(len(positions)),
                mode=PrimitiveMode.TRIANGLE_FAN, name="portal_disk")


def fullscreen(z=0.95) -> Mesh:
    return Mesh(positions=np.array([[-1, -1, z], [1, -1, z],
                                    [-1, 1, z], [1, 1, z]], dtype=float),
                indices=np.array([0, 1, 2, 1, 3, 2]), name="backdrop")


def main() -> None:
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.set_state(clear_color=(0.0, 0.0, 0.0, 1.0), cull=CullMode.NONE)

    # Pass 1: carve the portal into the stencil buffer.
    ctx.use_program(FLAT_VS, FLAT_FS)
    ctx.set_state(stencil_test=True, stencil_func=DepthFunc.ALWAYS,
                  stencil_ref=1, stencil_pass_op=StencilOp.REPLACE,
                  depth_test=False)
    ctx.set_uniform("flat_color", [0.02, 0.02, 0.05, 1.0])
    ctx.draw_mesh(disk(), name="portal_mask")

    # Pass 2: the world, visible only through the portal.
    ctx.use_program(builtins.LIT_TEXTURED_VERTEX,
                    builtins.LIT_TEXTURED_FRAGMENT)
    proj = perspective(math.radians(55), WIDTH / HEIGHT, 0.1, 50.0)
    view = look_at(np.array([2.6, 2.0, 3.8]), np.array([0.0, 0.8, 0.0]),
                   np.array([0.0, 1.0, 0.0]))
    model = np.eye(4)
    ctx.set_uniform("mvp", proj @ view @ model)
    ctx.set_uniform("model", model)
    ctx.set_uniform("light_dir", [0.4, 1.0, 0.6])
    ctx.set_uniform("tint", [1.0, 0.95, 0.85, 1.0])
    ctx.bind_texture("albedo", marble(size=128, seed=3))
    ctx.set_state(stencil_test=True, stencil_func=DepthFunc.EQUAL,
                  stencil_ref=1, stencil_pass_op=StencilOp.KEEP,
                  depth_test=True)
    ctx.draw_mesh(teapot(detail=4), name="world")

    # Pass 3: dim vignette outside the portal (stencil != 1).
    ctx.use_program(FLAT_VS, FLAT_FS)
    ctx.set_state(stencil_test=True, stencil_func=DepthFunc.NOTEQUAL,
                  stencil_ref=1, stencil_pass_op=StencilOp.KEEP,
                  depth_test=False)
    ctx.set_uniform("flat_color", [0.12, 0.08, 0.16, 1.0])
    ctx.draw_mesh(fullscreen(), name="vignette")

    frame = ctx.end_frame()
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=2))
    gpu = EmeraldGPU(events, GPUConfig(num_clusters=4), WIDTH, HEIGHT,
                     memory=memory)
    stats = gpu.run_frame(frame)

    inside = int((gpu.fb.stencil == 1).sum())
    print(f"rendered 3 passes in {stats.cycles} cycles "
          f"({stats.fragments} fragments, "
          f"{stats.fragments_discarded} stencil/depth-discarded)")
    print(f"portal covers {inside} of {WIDTH * HEIGHT} pixels")
    output = sys.argv[1] if len(sys.argv) > 1 else "portal.ppm"
    gpu.fb.save_ppm(output)
    print(f"image -> {output}")


if __name__ == "__main__":
    main()
