"""Port-protocol invariants: the sanitizer's per-port state machines."""

import pytest

from repro.common.events import EventQueue
from repro.common.ports import (
    Link,
    PortTap,
    RequestPort,
    ResponsePort,
    respond,
)
from repro.memory.request import MemRequest, SourceType
from repro.sanitize import (
    DoubleDeliveryViolation,
    LostRetryViolation,
    PortProtocolViolation,
    SanitizeConfig,
    Sanitizer,
    detection_selftest,
)


def make_request(callback=None, address=0x1000):
    return MemRequest(address=address, size=64, write=False,
                      source=SourceType.CPU, callback=callback)


class Sink:
    def __init__(self, accept=True):
        self.accept = accept
        self.received = []
        self.ingress = ResponsePort("sink.in", self._recv, owner=self)

    def _recv(self, request):
        if not self.accept:
            return False
        self.received.append(request)
        return True


@pytest.fixture
def events():
    return EventQueue()


def armed(events, **overrides):
    return Sanitizer(events, SanitizeConfig(**overrides)).install()


class TestSendWhileBlocked:
    def test_different_packet_on_blocked_leaf_port_raises(self, events):
        sanitizer = armed(events)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            port.try_send(make_request(address=0x1000))
            with pytest.raises(PortProtocolViolation) as excinfo:
                port.try_send(make_request(address=0x2000))
            assert excinfo.value.details["event"] == "send-while-blocked"
            assert excinfo.value.details["port"] == "p"
        finally:
            sanitizer.uninstall()

    def test_reoffering_the_blocked_packet_is_legal(self, events):
        sanitizer = armed(events)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            request = make_request()
            port.try_send(request)
            port.try_send(request)          # the fabric's re-offer idiom
            assert sanitizer.violations == []
        finally:
            sanitizer.uninstall()

    def test_multiplexed_egress_is_exempt(self, events):
        """A PortTap egress carries several senders' flows: offering a
        different packet while blocked is expected there, not a bug."""
        sanitizer = armed(events)
        try:
            sink = Sink(accept=False)
            tap = PortTap("t").connect(sink)
            assert tap.egress.multiplexed
            a = RequestPort("a").connect(tap)
            b = RequestPort("b").connect(tap)
            a.try_send(make_request(address=0x1000))
            b.try_send(make_request(address=0x2000))   # tap egress re-offers
            assert sanitizer.violations == []
        finally:
            sanitizer.uninstall()

    def test_await_retry_subscription_accepts_any_later_offer(self, events):
        """await_retry blocks without a packet; the first real offer after
        it must not be mistaken for a swap."""
        sanitizer = armed(events)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            port.await_retry()
            sink.accept = True
            assert port.try_send(make_request())
            assert sanitizer.violations == []
        finally:
            sanitizer.uninstall()


class TestRetryProtocol:
    def test_retry_without_block_raises(self, events):
        sanitizer = armed(events)
        try:
            sink = Sink()
            port = RequestPort("p").connect(sink)
            with pytest.raises(PortProtocolViolation) as excinfo:
                port._recv_retry()          # buggy component: spurious wake
            assert excinfo.value.details["event"] == "retry-without-block"
        finally:
            sanitizer.uninstall()

    def test_clean_block_retry_resend_cycle(self, events):
        sanitizer = armed(events)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            request = make_request()
            port.on_retry = lambda: port.try_send(request)
            port.try_send(request)
            sink.accept = True
            sink.ingress.send_retry()
            assert sink.received == [request]
            assert sanitizer.violations == []
            assert sanitizer._blocked == {}     # record retired on wake
        finally:
            sanitizer.uninstall()


class TestDoubleDelivery:
    def test_second_completion_raises(self, events):
        sanitizer = armed(events)
        try:
            done = []
            request = make_request(callback=done.append)
            respond(request)
            assert done == [request]
            with pytest.raises(DoubleDeliveryViolation) as excinfo:
                respond(request)
            assert done == [request]        # the duplicate never delivered
            assert excinfo.value.details["address"] == 0x1000
        finally:
            sanitizer.uninstall()

    def test_single_completion_is_clean(self, events):
        sanitizer = armed(events)
        try:
            done = []
            respond(make_request(callback=done.append))
            assert len(done) == 1
            assert sanitizer.violations == []
        finally:
            sanitizer.uninstall()


class TestLostRetryWake:
    def test_aged_block_raises_on_sweep(self, events):
        sanitizer = armed(events, max_block_age=1_000)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            port.try_send(make_request())
            sanitizer.sweep(500)            # young: fine
            with pytest.raises(LostRetryViolation) as excinfo:
                sanitizer.sweep(2_000)
            assert excinfo.value.details["port"] == "p"
            assert excinfo.value.details["age"] == 2_000
        finally:
            sanitizer.uninstall()

    def test_check_drained_flags_any_blocked_sender(self, events):
        """Post-drain, age windows no longer apply: a blocked sender with
        an empty event queue is stranded forever."""
        sanitizer = armed(events, max_block_age=10**9)
        try:
            sink = Sink(accept=False)
            RequestPort("p").connect(sink).try_send(make_request())
            with pytest.raises(LostRetryViolation, match="drained"):
                sanitizer.check_drained()
        finally:
            sanitizer.uninstall()


class TestRecordMode:
    def test_violations_collect_without_raising(self, events):
        sanitizer = armed(events, mode="record", max_block_age=100)
        try:
            sink = Sink(accept=False)
            port = RequestPort("p").connect(sink)
            port.try_send(make_request(address=0x1000))
            port.try_send(make_request(address=0x2000))     # swap: recorded
            sanitizer.sweep(10_000)                         # aged: recorded
            kinds = [v.kind for v in sanitizer.violations]
            assert "port-protocol" in kinds
            assert "lost-retry-wake" in kinds
            assert (sanitizer.stats.counter("violations").value
                    == len(sanitizer.violations))
        finally:
            sanitizer.uninstall()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SanitizeConfig(mode="explode")


class TestBrokenTapRegression:
    """The PR 3 regression, deliberately reintroduced: a tap that forwards
    one retry wake but never re-subscribes downstream strands its
    remaining senders.  Bare, the run just drains silently; under the
    sanitizer it dies loudly with a typed violation naming the port."""

    def test_lossy_tap_raises_instead_of_stranding_silently(self):
        class LossyTap(PortTap):
            def _recv_retry(self):
                self.ingress.send_retry()   # no downstream re-subscription

        events = EventQueue()
        sink = Sink()
        link = Link(events, "l", latency=1, capacity=1)
        link.connect(sink)
        tap = LossyTap("t").connect(link)
        sanitizer = Sanitizer(events, SanitizeConfig(max_block_age=10))
        with sanitizer:
            for index in range(3):
                request = make_request(address=0x1000 * (index + 1))
                port = RequestPort(f"sender{index}").connect(tap)
                port.on_retry = (lambda p=port, r=request: p.try_send(r))
                port.try_send(request)
            with pytest.raises(LostRetryViolation) as excinfo:
                events.run()
                sanitizer.check_drained()
        # The bug loses exactly the wakes after the first: someone strands.
        assert len(sink.received) < 3
        assert "sender" in excinfo.value.details["port"]

    def test_detection_selftest_catches_the_planted_bug(self):
        violation = detection_selftest()
        assert isinstance(violation, LostRetryViolation)
        assert violation.details["port"].startswith("selftest.sender")

    def test_correct_tap_is_quiet_under_the_same_load(self):
        """Control: the fixed PortTap passes the identical scenario."""
        events = EventQueue()
        sink = Sink()
        link = Link(events, "l", latency=1, capacity=1)
        link.connect(sink)
        tap = PortTap("t").connect(link)
        sanitizer = Sanitizer(events, SanitizeConfig(max_block_age=10))
        with sanitizer:
            for index in range(3):
                request = make_request(address=0x1000 * (index + 1))
                port = RequestPort(f"sender{index}").connect(tap)
                port.on_retry = (lambda p=port, r=request: p.try_send(r))
                port.try_send(request)
            events.run()
            assert sanitizer.check_drained() == []
        assert len(sink.received) == 3


class TestLifecycle:
    def test_install_uninstall_detach_cleanly(self, events):
        sanitizer = Sanitizer(events)
        with sanitizer:
            assert events.sanitizer is sanitizer
        assert events.sanitizer is None
        # A bare run after uninstall sees no hooks at all.
        sink = Sink(accept=False)
        port = RequestPort("p").connect(sink)
        port.try_send(make_request(address=0x1000))
        port.try_send(make_request(address=0x2000))     # no sanitizer: legal
        assert sanitizer.violations == []
