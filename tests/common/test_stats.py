"""Tests for statistics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Counter,
    Histogram,
    RateStat,
    StatGroup,
    TimeSeries,
    mean_abs_relative_error,
    pearson,
)


class TestCounter:
    def test_add_default(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter()
        c.add(3)
        c.reset()
        assert c.value == 0


class TestRateStat:
    def test_rate(self):
        r = RateStat()
        for hit in (True, True, False, True):
            r.record(hit)
        assert r.rate == pytest.approx(0.75)
        assert r.misses == 1

    def test_empty_rate_is_zero(self):
        assert RateStat().rate == 0.0


class TestTimeSeries:
    def test_binning(self):
        ts = TimeSeries(window=10)
        ts.add(3, 1.0)
        ts.add(7, 2.0)
        ts.add(15, 5.0)
        assert ts.series() == [(0, 3.0), (10, 5.0)]

    def test_dense_series_fills_gaps(self):
        ts = TimeSeries(window=10)
        ts.add(0, 1.0)
        ts.add(35, 1.0)
        assert ts.series() == [(0, 1.0), (10, 0.0), (20, 0.0), (30, 1.0)]

    def test_until_extends(self):
        ts = TimeSeries(window=10)
        ts.add(0, 1.0)
        assert len(ts.series(until=29)) == 3

    def test_total(self):
        ts = TimeSeries(window=5)
        ts.add(1, 2.0)
        ts.add(100, 3.0)
        assert ts.total() == 5.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TimeSeries(window=0)


class TestHistogram:
    def test_moments(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.mean == pytest.approx(2.5)
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.count == 4

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0
        assert h.percentile(1) == 1.0

    def test_percentile_bounds(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0


class TestStatGroup:
    def test_lazily_creates_and_caches(self):
        g = StatGroup("unit")
        c1 = g.counter("hits")
        c2 = g.counter("hits")
        assert c1 is c2

    def test_dump(self):
        g = StatGroup("l1")
        g.counter("accesses").add(10)
        g.rate("hit").record(True)
        g.histogram("latency").record(5.0)
        d = g.dump()
        assert d["accesses"] == 10
        assert d["hit.rate"] == 1.0
        assert d["latency.mean"] == 5.0

    def test_reset_all(self):
        g = StatGroup("x")
        g.counter("a").add(2)
        g.rate("b").record(True)
        g.time_series("c").add(0, 1.0)
        g.histogram("d").record(3.0)
        g.reset()
        assert g.counter("a").value == 0
        assert g.rate("b").total == 0
        assert g.time_series("c").total() == 0.0
        assert g.histogram("d").count == 0


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_zero_variance(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    @given(
        st.lists(st.integers(min_value=-10**6, max_value=10**6), min_size=2,
                 max_size=50),
        st.floats(min_value=0.1, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_affine_invariance(self, xs_int, scale, shift):
        """corr(x, a*x + b) == 1 for a > 0 whenever x has variance."""
        xs = [float(x) for x in xs_int]
        ys = [scale * x + shift for x in xs]
        if len(set(xs)) < 2:
            assert pearson(xs, ys) == 0.0
        else:
            r = pearson(xs, ys)
            assert r == pytest.approx(1.0, abs=1e-6)

    @given(st.lists(st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
                    min_size=2, max_size=50))
    def test_bounded(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        r = pearson(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert not math.isnan(r)


class TestMARE:
    def test_exact_match_is_zero(self):
        assert mean_abs_relative_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # |10-5|/10 = 0.5, |4-6|/4 = 0.5
        assert mean_abs_relative_error([10.0, 4.0], [5.0, 6.0]) == pytest.approx(0.5)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            mean_abs_relative_error([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_abs_relative_error([], [])


class TestHistogramReservoir:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir=0)

    def test_exact_aggregates_survive_sampling(self):
        """count/mean/min/max are running aggregates — exact regardless of
        which samples the reservoir retains."""
        capped = Histogram("lat", reservoir=50)
        full = Histogram("lat")
        for v in range(10_000):
            capped.record(float(v))
            full.record(float(v))
        assert capped.count == full.count == 10_000
        assert capped.mean == full.mean
        assert capped.minimum == full.minimum == 0.0
        assert capped.maximum == full.maximum == 9999.0
        assert len(capped.values()) == 50

    def test_percentile_estimate_within_tolerance(self):
        """Reservoir percentiles track the exact ones on a uniform stream:
        with k=500 of n=20000 the p50/p90/p99 estimates land within a few
        percentile points of truth (binomial rank error ~ 1/sqrt(k))."""
        h = Histogram("lat", reservoir=500)
        n = 20_000
        for v in range(n):
            h.record(float(v))
        for p in (50, 90, 99):
            exact = p / 100.0 * n
            estimate = h.percentile(p)
            assert abs(estimate - exact) / n < 0.05

    def test_sampling_is_deterministic_per_name(self):
        a, b = Histogram("x", reservoir=10), Histogram("x", reservoir=10)
        for v in range(1_000):
            a.record(float(v))
            b.record(float(v))
        assert a.values() == b.values()

    def test_reset_reseeds(self):
        h = Histogram("x", reservoir=10)
        for v in range(1_000):
            h.record(float(v))
        first = h.values()
        h.reset()
        assert h.count == 0
        for v in range(1_000):
            h.record(float(v))
        assert h.values() == first

    def test_group_creates_capped_histograms(self):
        g = StatGroup("noc")
        h = g.histogram("queue", reservoir=8)
        assert h.reservoir == 8
        assert g.histogram("queue") is h


class TestStatGroupDumpSeries:
    def test_dump_includes_time_series_totals(self):
        g = StatGroup("link")
        g.time_series("bytes").add(0, 64)
        g.time_series("bytes").add(2_000, 128)
        assert g.dump()["bytes.total"] == 192.0
