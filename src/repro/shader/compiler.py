"""A small GLSL-like shader language compiled to the shader ISA.

This is the reproduction's TGSItoPTX: workloads write vertex/fragment
shaders in a GLSL subset, the compiler scalarizes vector expressions and
emits ISA instructions.  Supported surface:

* declarations: ``in/out/uniform`` with ``float``, ``vec2/3/4``, ``mat4``
  and ``uniform sampler2D``;
* a single ``void main() { ... }``;
* statements: local declarations, (swizzled) assignment, ``if``/``else``,
  ``discard``;
* expressions: arithmetic (`+ - * /`, including ``mat4 * vec4`` and
  scalar-vector broadcast), comparisons, ``&& || !``, swizzles,
  constructors (``vec3(x)``, ``vec4(v3, 1.0)``), and the builtin calls
  ``texture dot cross normalize length min max clamp mix pow abs floor
  fract sqrt inversesqrt sin cos exp2 log2 reflect``;
* builtins: ``gl_Position`` (vertex), ``gl_FragColor``, ``gl_FragDepth``
  and ``gl_FragCoord`` (fragment).

Vertex-stage ``out`` variables become varyings, matched by name with
fragment-stage ``in`` variables by the rasterizer.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.shader.isa import Imm, Instruction, Opcode, Pred, Reg
from repro.shader.program import Program


class ShaderCompileError(ValueError):
    """Raised for any lexical, syntactic or semantic shader error."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|&&|\|\||[-+*/<>=!{}();,.])
""", re.VERBOSE)

KEYWORDS = {"in", "out", "uniform", "void", "if", "else", "discard", "return",
            "float", "vec2", "vec3", "vec4", "mat4", "sampler2D"}

VEC_WIDTH = {"float": 1, "vec2": 2, "vec3": 3, "vec4": 4, "mat4": 16}
SWIZZLE_CHARS = {"x": 0, "y": 1, "z": 2, "w": 3,
                 "r": 0, "g": 1, "b": 2, "a": 3,
                 "s": 0, "t": 1, "p": 2, "q": 3}


@dataclass
class Token:
    kind: str       # number | ident | keyword | op | eof
    text: str
    pos: int


def tokenize(source: str) -> list[Token]:
    tokens = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            raise ShaderCompileError(f"bad character {source[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        text = match.group()
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", pos))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass
class Num:
    value: float


@dataclass
class VarRef:
    name: str


@dataclass
class Swizzle:
    base: "Expr"
    components: list[int]


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Unary:
    op: str
    operand: "Expr"


@dataclass
class Call:
    name: str
    args: list["Expr"]


Expr = Union[Num, VarRef, Swizzle, Binary, Unary, Call]


@dataclass
class Declaration:
    qualifier: str      # in | out | uniform
    type: str
    name: str


@dataclass
class VarDeclStmt:
    type: str
    name: str
    init: Expr


@dataclass
class AssignStmt:
    name: str
    components: Optional[list[int]]     # swizzled write, None = full
    expr: Expr


@dataclass
class IfStmt:
    cond: Expr
    then_body: list
    else_body: list


@dataclass
class DiscardStmt:
    pass


@dataclass
class ReturnStmt:
    pass


@dataclass
class ShaderAST:
    declarations: list[Declaration]
    body: list


class Parser:
    """Recursive-descent parser for the shader subset."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ShaderCompileError(
                f"expected {text!r} at {token.pos}, got {token.text!r}")
        return token

    def parse(self) -> ShaderAST:
        declarations = []
        body = None
        while self.peek().kind != "eof":
            token = self.peek()
            if token.text in ("in", "out", "uniform"):
                declarations.append(self._declaration())
            elif token.text == "void":
                body = self._main()
            else:
                raise ShaderCompileError(
                    f"unexpected {token.text!r} at top level (pos {token.pos})")
        if body is None:
            raise ShaderCompileError("shader has no main()")
        return ShaderAST(declarations, body)

    def _declaration(self) -> Declaration:
        qualifier = self.advance().text
        type_token = self.advance()
        if type_token.text not in VEC_WIDTH and type_token.text != "sampler2D":
            raise ShaderCompileError(f"bad type {type_token.text!r}")
        name = self.advance()
        if name.kind != "ident":
            raise ShaderCompileError(f"bad declaration name {name.text!r}")
        self.expect(";")
        return Declaration(qualifier, type_token.text, name.text)

    def _main(self) -> list:
        self.expect("void")
        name = self.advance()
        if name.text != "main":
            raise ShaderCompileError("only main() is supported")
        self.expect("(")
        self.expect(")")
        return self._block()

    def _block(self) -> list:
        self.expect("{")
        statements = []
        while self.peek().text != "}":
            statements.append(self._statement())
        self.expect("}")
        return statements

    def _statement(self):
        token = self.peek()
        if token.text == "if":
            return self._if()
        if token.text == "discard":
            self.advance()
            self.expect(";")
            return DiscardStmt()
        if token.text == "return":
            self.advance()
            self.expect(";")
            return ReturnStmt()
        if token.text in VEC_WIDTH:
            type_name = self.advance().text
            name = self.advance().text
            self.expect("=")
            init = self._expr()
            self.expect(";")
            return VarDeclStmt(type_name, name, init)
        # assignment: name[.swizzle] = expr ;
        name = self.advance()
        if name.kind != "ident":
            raise ShaderCompileError(f"unexpected {name.text!r} (pos {name.pos})")
        components = None
        if self.peek().text == ".":
            self.advance()
            swizzle = self.advance().text
            components = _parse_swizzle(swizzle)
        self.expect("=")
        expr = self._expr()
        self.expect(";")
        return AssignStmt(name.text, components, expr)

    def _if(self) -> IfStmt:
        self.expect("if")
        self.expect("(")
        cond = self._expr()
        self.expect(")")
        then_body = self._block()
        else_body = []
        if self.peek().text == "else":
            self.advance()
            if self.peek().text == "if":
                else_body = [self._if()]
            else:
                else_body = self._block()
        return IfStmt(cond, then_body, else_body)

    # Expression grammar (low to high precedence).

    def _expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.peek().text == "||":
            self.advance()
            left = Binary("||", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._comparison()
        while self.peek().text == "&&":
            self.advance()
            left = Binary("&&", left, self._comparison())
        return left

    def _comparison(self) -> Expr:
        left = self._additive()
        while self.peek().text in ("<", "<=", ">", ">=", "==", "!="):
            op = self.advance().text
            left = Binary(op, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            left = Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self.peek().text in ("*", "/"):
            op = self.advance().text
            left = Binary(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self.peek().text == "-":
            self.advance()
            return Unary("-", self._unary())
        if self.peek().text == "!":
            self.advance()
            return Unary("!", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self.peek().text == ".":
            self.advance()
            swizzle = self.advance().text
            expr = Swizzle(expr, _parse_swizzle(swizzle))
        return expr

    def _primary(self) -> Expr:
        token = self.advance()
        if token.kind == "number":
            return Num(float(token.text))
        if token.text == "(":
            expr = self._expr()
            self.expect(")")
            return expr
        if token.kind in ("ident", "keyword"):
            if self.peek().text == "(":
                self.advance()
                args = []
                if self.peek().text != ")":
                    args.append(self._expr())
                    while self.peek().text == ",":
                        self.advance()
                        args.append(self._expr())
                self.expect(")")
                return Call(token.text, args)
            if token.kind == "keyword":
                raise ShaderCompileError(
                    f"unexpected keyword {token.text!r} in expression")
            return VarRef(token.text)
        raise ShaderCompileError(f"unexpected {token.text!r} (pos {token.pos})")


def _parse_swizzle(text: str) -> list[int]:
    if not text or len(text) > 4 or any(c not in SWIZZLE_CHARS for c in text):
        raise ShaderCompileError(f"bad swizzle {text!r}")
    return [SWIZZLE_CHARS[c] for c in text]


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

@dataclass
class Value:
    """A typed, scalarized rvalue: float components or a bool predicate."""

    type: str                       # float | vec2 | vec3 | vec4 | mat4 | bool
    comps: list = field(default_factory=list)   # Reg/Imm, or [Pred] for bool

    @property
    def width(self) -> int:
        return len(self.comps)


class CodeGenerator:
    def __init__(self, stage: str, name: str) -> None:
        self.program = Program(stage=stage, name=name)
        self.instructions = self.program.instructions
        self._next_reg = 0
        self._next_pred = 0
        self.variables: dict[str, Value] = {}
        self.samplers: dict[str, int] = {}
        self._const_cache: dict[int, Reg] = {}
        self._out_values: dict[str, Value] = {}
        self._vs_out_order: list[str] = []

    # -- low-level emitters -------------------------------------------------

    def fresh_reg(self) -> Reg:
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def fresh_pred(self) -> Pred:
        pred = Pred(self._next_pred)
        self._next_pred += 1
        return pred

    def emit(self, op: Opcode, dsts=(), srcs=(), slot=None) -> Instruction:
        instr = Instruction(op, dsts=list(dsts), srcs=list(srcs), slot=slot)
        self.instructions.append(instr)
        return instr

    def emit_branch(self, guard: Optional[Pred], sense: bool = True) -> Instruction:
        instr = Instruction(Opcode.BRA, guard=guard, guard_sense=sense, target=-1)
        self.instructions.append(instr)
        return instr

    def here(self) -> int:
        return len(self.instructions)

    # -- declarations --------------------------------------------------------

    def declare(self, decl: Declaration) -> None:
        stage = self.program.stage
        if decl.type == "sampler2D":
            if decl.qualifier != "uniform":
                raise ShaderCompileError("sampler2D must be uniform")
            self.samplers[decl.name] = len(self.program.textures)
            self.program.textures[decl.name] = self.samplers[decl.name]
            return
        width = VEC_WIDTH[decl.type]
        if decl.qualifier == "uniform":
            self.program.uniforms.allocate(decl.name, width)
            self.variables[decl.name] = Value("uniform:" + decl.type, [])
        elif decl.qualifier == "in":
            if stage == "vertex":
                base = self.program.attributes.allocate(decl.name, width)
                regs = [self.fresh_reg() for _ in range(width)]
                for i, reg in enumerate(regs):
                    self.emit(Opcode.LD_ATTR, dsts=[reg], slot=base + i)
                self.variables[decl.name] = Value(decl.type, regs)
            else:
                base = self.program.varyings.allocate(decl.name, width)
                regs = [self.fresh_reg() for _ in range(width)]
                for i, reg in enumerate(regs):
                    self.emit(Opcode.LD_VARY, dsts=[reg], slot=base + i)
                self.variables[decl.name] = Value(decl.type, regs)
        elif decl.qualifier == "out":
            if stage == "vertex":
                self.program.varyings.allocate(decl.name, width)
                self._vs_out_order.append(decl.name)
            regs = [self.fresh_reg() for _ in range(width)]
            # Outputs default to zero.
            for reg in regs:
                self.emit(Opcode.MOV, dsts=[reg], srcs=[Imm(0.0)])
            value = Value(decl.type, regs)
            self.variables[decl.name] = value
            self._out_values[decl.name] = value
        else:  # pragma: no cover - parser restricts qualifiers
            raise ShaderCompileError(f"bad qualifier {decl.qualifier!r}")

    def ensure_builtin(self, name: str) -> Value:
        """Materialize gl_* builtins on first reference."""
        stage = self.program.stage
        if name == "gl_Position" and stage == "vertex":
            value = Value("vec4", [self.fresh_reg() for _ in range(4)])
        elif name == "gl_FragColor" and stage == "fragment":
            value = Value("vec4", [self.fresh_reg() for _ in range(4)])
        elif name == "gl_FragDepth" and stage == "fragment":
            value = Value("float", [self.fresh_reg()])
        elif name == "gl_FragCoord" and stage == "fragment":
            base = self.program.varyings.allocate("gl_FragCoord", 4)
            regs = [self.fresh_reg() for _ in range(4)]
            for i, reg in enumerate(regs):
                self.emit(Opcode.LD_VARY, dsts=[reg], slot=base + i)
            value = Value("vec4", regs)
        else:
            raise ShaderCompileError(f"undefined variable {name!r}")
        self.variables[name] = value
        self._out_values[name] = value
        return value

    # -- uniforms ------------------------------------------------------------

    def load_uniform(self, name: str) -> Value:
        base, width = self.program.uniforms.lookup(name)
        declared = self.variables[name].type.split(":", 1)[1]
        regs = []
        for i in range(width):
            slot = base + i
            if slot not in self._const_cache:
                reg = self.fresh_reg()
                self.emit(Opcode.LD_CONST, dsts=[reg], slot=slot)
                self._const_cache[slot] = reg
            regs.append(self._const_cache[slot])
        return Value(declared, regs)

    # -- expressions ----------------------------------------------------------

    def gen_expr(self, expr: Expr) -> Value:
        if isinstance(expr, Num):
            return Value("float", [Imm(expr.value)])
        if isinstance(expr, VarRef):
            return self.read_var(expr.name)
        if isinstance(expr, Swizzle):
            base = self.gen_expr(expr.base)
            if base.type == "bool":
                raise ShaderCompileError("cannot swizzle a bool")
            for c in expr.components:
                if c >= base.width:
                    raise ShaderCompileError(
                        f"swizzle component out of range for {base.type}")
            comps = [base.comps[c] for c in expr.components]
            return Value(_type_of_width(len(comps)), comps)
        if isinstance(expr, Unary):
            return self.gen_unary(expr)
        if isinstance(expr, Binary):
            return self.gen_binary(expr)
        if isinstance(expr, Call):
            return self.gen_call(expr)
        raise ShaderCompileError(f"cannot generate {expr!r}")  # pragma: no cover

    def read_var(self, name: str) -> Value:
        if name in self.variables:
            value = self.variables[name]
            if value.type.startswith("uniform:"):
                return self.load_uniform(name)
            return value
        if name.startswith("gl_"):
            return self.ensure_builtin(name)
        raise ShaderCompileError(f"undefined variable {name!r}")

    def gen_unary(self, expr: Unary) -> Value:
        operand = self.gen_expr(expr.operand)
        if expr.op == "!":
            if operand.type != "bool":
                raise ShaderCompileError("! needs a bool")
            dst = self.fresh_pred()
            self.emit(Opcode.PNOT, dsts=[dst], srcs=[operand.comps[0]])
            return Value("bool", [dst])
        # numeric negation
        regs = []
        for comp in operand.comps:
            reg = self.fresh_reg()
            self.emit(Opcode.NEG, dsts=[reg], srcs=[comp])
            regs.append(reg)
        return Value(operand.type, regs)

    def gen_binary(self, expr: Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            if left.type != "bool" or right.type != "bool":
                raise ShaderCompileError(f"{op} needs bools")
            dst = self.fresh_pred()
            opcode = Opcode.PAND if op == "&&" else Opcode.POR
            self.emit(opcode, dsts=[dst], srcs=[left.comps[0], right.comps[0]])
            return Value("bool", [dst])
        if op in ("<", "<=", ">", ">=", "==", "!="):
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            if left.width != 1 or right.width != 1:
                raise ShaderCompileError("comparisons need scalars")
            opcode = {"<": Opcode.SETP_LT, "<=": Opcode.SETP_LE,
                      ">": Opcode.SETP_GT, ">=": Opcode.SETP_GE,
                      "==": Opcode.SETP_EQ, "!=": Opcode.SETP_NE}[op]
            dst = self.fresh_pred()
            self.emit(opcode, dsts=[dst], srcs=[left.comps[0], right.comps[0]])
            return Value("bool", [dst])
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        if op == "*" and left.type == "mat4" and right.type == "vec4":
            return self.gen_mat4_vec4(left, right)
        if left.type == "mat4" or right.type == "mat4":
            raise ShaderCompileError("mat4 only supports mat4 * vec4")
        left, right = _broadcast(left, right)
        opcode = {"+": Opcode.ADD, "-": Opcode.SUB,
                  "*": Opcode.MUL, "/": Opcode.DIV}[op]
        regs = []
        for lc, rc in zip(left.comps, right.comps):
            reg = self.fresh_reg()
            self.emit(opcode, dsts=[reg], srcs=[lc, rc])
            regs.append(reg)
        return Value(left.type, regs)

    def gen_mat4_vec4(self, matrix: Value, vector: Value) -> Value:
        """Row-major mat4 times column vec4 (matches numpy ``M @ v``)."""
        regs = []
        for row in range(4):
            acc = self.fresh_reg()
            self.emit(Opcode.MUL, dsts=[acc],
                      srcs=[matrix.comps[row * 4], vector.comps[0]])
            for col in range(1, 4):
                nxt = self.fresh_reg()
                self.emit(Opcode.MAD, dsts=[nxt],
                          srcs=[matrix.comps[row * 4 + col],
                                vector.comps[col], acc])
                acc = nxt
            regs.append(acc)
        return Value("vec4", regs)

    def gen_call(self, expr: Call) -> Value:
        name = expr.name
        if name in VEC_WIDTH and name != "float" and name != "mat4":
            return self.gen_constructor(name, [self.gen_expr(a) for a in expr.args])
        if name == "float":
            value = self.gen_expr(expr.args[0])
            if value.width != 1:
                raise ShaderCompileError("float() needs a scalar")
            return value
        if name == "texture":
            return self.gen_texture(expr)
        args = [self.gen_expr(a) for a in expr.args]
        return self.gen_builtin_function(name, args)

    def gen_constructor(self, type_name: str, args: list[Value]) -> Value:
        width = VEC_WIDTH[type_name]
        comps = []
        for arg in args:
            comps.extend(arg.comps)
        if len(comps) == 1 and width > 1:
            comps = comps * width
        if len(comps) != width:
            raise ShaderCompileError(
                f"{type_name} constructor needs {width} components, "
                f"got {len(comps)}")
        return Value(type_name, comps)

    def gen_texture(self, expr: Call) -> Value:
        if len(expr.args) != 2 or not isinstance(expr.args[0], VarRef):
            raise ShaderCompileError("texture(sampler, uv) expected")
        sampler_name = expr.args[0].name
        if sampler_name not in self.samplers:
            raise ShaderCompileError(f"unknown sampler {sampler_name!r}")
        uv = self.gen_expr(expr.args[1])
        if uv.width != 2:
            raise ShaderCompileError("texture() needs vec2 coordinates")
        dsts = [self.fresh_reg() for _ in range(4)]
        self.emit(Opcode.TEX, dsts=dsts, srcs=[uv.comps[0], uv.comps[1]],
                  slot=self.samplers[sampler_name])
        return Value("vec4", dsts)

    def gen_builtin_function(self, name: str, args: list[Value]) -> Value:
        unary_ops = {"abs": Opcode.ABS, "floor": Opcode.FLOOR,
                     "fract": Opcode.FRAC, "sqrt": Opcode.SQRT,
                     "inversesqrt": Opcode.RSQRT, "sin": Opcode.SIN,
                     "cos": Opcode.COS, "exp2": Opcode.EXP2,
                     "log2": Opcode.LOG2}
        if name in unary_ops:
            (value,) = args
            regs = []
            for comp in value.comps:
                reg = self.fresh_reg()
                self.emit(unary_ops[name], dsts=[reg], srcs=[comp])
                regs.append(reg)
            return Value(value.type, regs)
        if name in ("min", "max"):
            left, right = _broadcast(args[0], args[1])
            opcode = Opcode.MIN if name == "min" else Opcode.MAX
            regs = []
            for lc, rc in zip(left.comps, right.comps):
                reg = self.fresh_reg()
                self.emit(opcode, dsts=[reg], srcs=[lc, rc])
                regs.append(reg)
            return Value(left.type, regs)
        if name == "pow":
            left, right = _broadcast(args[0], args[1])
            regs = []
            for lc, rc in zip(left.comps, right.comps):
                reg = self.fresh_reg()
                self.emit(Opcode.POW, dsts=[reg], srcs=[lc, rc])
                regs.append(reg)
            return Value(left.type, regs)
        if name == "clamp":
            value = self.gen_builtin_function("max", [args[0], args[1]])
            return self.gen_builtin_function("min", [value, args[2]])
        if name == "dot":
            left, right = args
            if left.width != right.width or left.width < 2:
                raise ShaderCompileError("dot() needs equal-width vectors")
            acc = self.fresh_reg()
            self.emit(Opcode.MUL, dsts=[acc],
                      srcs=[left.comps[0], right.comps[0]])
            for i in range(1, left.width):
                nxt = self.fresh_reg()
                self.emit(Opcode.MAD, dsts=[nxt],
                          srcs=[left.comps[i], right.comps[i], acc])
                acc = nxt
            return Value("float", [acc])
        if name == "length":
            squared = self.gen_builtin_function("dot", [args[0], args[0]])
            reg = self.fresh_reg()
            self.emit(Opcode.SQRT, dsts=[reg], srcs=[squared.comps[0]])
            return Value("float", [reg])
        if name == "normalize":
            (value,) = args
            squared = self.gen_builtin_function("dot", [value, value])
            inv = self.fresh_reg()
            self.emit(Opcode.RSQRT, dsts=[inv], srcs=[squared.comps[0]])
            regs = []
            for comp in value.comps:
                reg = self.fresh_reg()
                self.emit(Opcode.MUL, dsts=[reg], srcs=[comp, inv])
                regs.append(reg)
            return Value(value.type, regs)
        if name == "cross":
            a, b = args
            if a.width != 3 or b.width != 3:
                raise ShaderCompileError("cross() needs vec3 operands")
            regs = []
            for (i, j) in ((1, 2), (2, 0), (0, 1)):
                t1 = self.fresh_reg()
                self.emit(Opcode.MUL, dsts=[t1], srcs=[a.comps[i], b.comps[j]])
                t2 = self.fresh_reg()
                self.emit(Opcode.MUL, dsts=[t2], srcs=[a.comps[j], b.comps[i]])
                out = self.fresh_reg()
                self.emit(Opcode.SUB, dsts=[out], srcs=[t1, t2])
                regs.append(out)
            return Value("vec3", regs)
        if name == "mix":
            a, b, t = args
            a, b = _broadcast(a, b)
            regs = []
            for i, (ac, bc) in enumerate(zip(a.comps, b.comps)):
                diff = self.fresh_reg()
                self.emit(Opcode.SUB, dsts=[diff], srcs=[bc, ac])
                out = self.fresh_reg()
                t_comp = t.comps[0] if t.width == 1 else t.comps[i]
                self.emit(Opcode.MAD, dsts=[out], srcs=[diff, t_comp, ac])
                regs.append(out)
            return Value(a.type, regs)
        if name == "reflect":
            incident, normal = args
            d = self.gen_builtin_function("dot", [normal, incident])
            two_d = self.fresh_reg()
            self.emit(Opcode.ADD, dsts=[two_d], srcs=[d.comps[0], d.comps[0]])
            regs = []
            for ic, nc in zip(incident.comps, normal.comps):
                scaled = self.fresh_reg()
                self.emit(Opcode.MUL, dsts=[scaled], srcs=[nc, two_d])
                out = self.fresh_reg()
                self.emit(Opcode.SUB, dsts=[out], srcs=[ic, scaled])
                regs.append(out)
            return Value(incident.type, regs)
        raise ShaderCompileError(f"unknown function {name!r}")

    # -- statements ------------------------------------------------------------

    def gen_body(self, body: list) -> None:
        for statement in body:
            self.gen_statement(statement)

    def gen_statement(self, statement) -> None:
        if isinstance(statement, VarDeclStmt):
            if statement.name in self.variables:
                raise ShaderCompileError(f"redeclaration of {statement.name!r}")
            value = self.gen_expr(statement.init)
            width = VEC_WIDTH[statement.type]
            value = _coerce_width(self, value, width, statement.type)
            regs = []
            for comp in value.comps:
                reg = self.fresh_reg()
                self.emit(Opcode.MOV, dsts=[reg], srcs=[comp])
                regs.append(reg)
            self.variables[statement.name] = Value(statement.type, regs)
        elif isinstance(statement, AssignStmt):
            self.gen_assign(statement)
        elif isinstance(statement, IfStmt):
            self.gen_if(statement)
        elif isinstance(statement, DiscardStmt):
            if self.program.stage != "fragment":
                raise ShaderCompileError("discard only valid in fragment shaders")
            self.emit(Opcode.DISCARD)
        elif isinstance(statement, ReturnStmt):
            pass    # main() return: no-op (outputs flushed in epilogue)
        else:  # pragma: no cover
            raise ShaderCompileError(f"cannot generate {statement!r}")

    def gen_assign(self, statement: AssignStmt) -> None:
        name = statement.name
        if name not in self.variables:
            if name.startswith("gl_"):
                self.ensure_builtin(name)
            else:
                raise ShaderCompileError(f"assignment to undeclared {name!r}")
        target = self.variables[name]
        if target.type.startswith("uniform:"):
            raise ShaderCompileError(f"cannot assign to uniform {name!r}")
        value = self.gen_expr(statement.expr)
        if statement.components is None:
            value = _coerce_width(self, value, target.width, target.type)
            for dst, src in zip(target.comps, value.comps):
                self.emit(Opcode.MOV, dsts=[dst], srcs=[src])
        else:
            if len(statement.components) != value.width:
                raise ShaderCompileError(
                    f"swizzled assignment width mismatch on {name!r}")
            for c, src in zip(statement.components, value.comps):
                if c >= target.width:
                    raise ShaderCompileError(
                        f"swizzle component out of range on {name!r}")
                self.emit(Opcode.MOV, dsts=[target.comps[c]], srcs=[src])

    def gen_if(self, statement: IfStmt) -> None:
        cond = self.gen_expr(statement.cond)
        if cond.type != "bool":
            raise ShaderCompileError("if condition must be boolean")
        pred = cond.comps[0]
        skip_then = self.emit_branch(pred, sense=False)
        self.gen_body(statement.then_body)
        if statement.else_body:
            skip_else = self.emit_branch(None)
            skip_then.target = self.here()
            self.gen_body(statement.else_body)
            skip_else.target = self.here()
        else:
            skip_then.target = self.here()

    # -- epilogue ---------------------------------------------------------------

    def flush_outputs(self) -> None:
        stage = self.program.stage
        if stage == "vertex":
            if "gl_Position" not in self._out_values:
                raise ShaderCompileError("vertex shader never wrote gl_Position")
            position = self._out_values["gl_Position"]
            for i, comp in enumerate(position.comps):
                self.emit(Opcode.ST_OUT, srcs=[comp], slot=i)
            for name in self._vs_out_order:
                base, _ = self.program.varyings.lookup(name)
                value = self._out_values[name]
                for i, comp in enumerate(value.comps):
                    self.emit(Opcode.ST_OUT, srcs=[comp],
                              slot=Program.POSITION_SLOTS + base + i)
        else:
            if "gl_FragColor" not in self._out_values:
                raise ShaderCompileError("fragment shader never wrote gl_FragColor")
            color = self._out_values["gl_FragColor"]
            for i, comp in enumerate(color.comps):
                self.emit(Opcode.ST_OUT, srcs=[comp], slot=i)
            if "gl_FragDepth" in self._out_values:
                depth = self._out_values["gl_FragDepth"]
                self.emit(Opcode.ST_OUT, srcs=[depth.comps[0]],
                          slot=Program.DEPTH_SLOT)


def _type_of_width(width: int) -> str:
    return {1: "float", 2: "vec2", 3: "vec3", 4: "vec4"}[width]


def _broadcast(left: Value, right: Value) -> tuple[Value, Value]:
    """Scalar-vector broadcasting for componentwise operations."""
    if left.width == right.width:
        return left, right
    if left.width == 1:
        return Value(right.type, left.comps * right.width), right
    if right.width == 1:
        return left, Value(left.type, right.comps * left.width)
    raise ShaderCompileError(
        f"width mismatch: {left.type} vs {right.type}")


def _coerce_width(gen: CodeGenerator, value: Value, width: int,
                  type_name: str) -> Value:
    if value.width == width:
        return value
    if value.width == 1 and width > 1:
        return Value(type_name, value.comps * width)
    raise ShaderCompileError(
        f"cannot assign {value.type} to {type_name}")


@functools.lru_cache(maxsize=512)
def compile_shader(source: str, stage: str, name: str = "shader") -> Program:
    """Compile shader source to a finalized :class:`Program` (memoized)."""
    if stage not in ("vertex", "fragment"):
        raise ShaderCompileError(f"bad stage {stage!r}")
    ast = Parser(tokenize(source)).parse()
    gen = CodeGenerator(stage, name)
    for decl in ast.declarations:
        gen.declare(decl)
    gen.gen_body(ast.body)
    gen.flush_outputs()
    return gen.program.finalize()


# ---------------------------------------------------------------------------
# Compiled dispatch-table cache (fastpath, DESIGN.md §12)
# ---------------------------------------------------------------------------

# Keyed by (Program.digest, warp size): the digest is cached on the program
# object, so a per-warp-launch lookup is one dict probe — instruction decode
# happens once per program, not once per fragment warp.  Assembled and
# GLSL-compiled programs alike land here (the key is content, not source).
_DISPATCH_CACHE: dict = {}
_DISPATCH_CACHE_MAX = 512


def dispatch_for(program: Program, warp_size: int):
    """The cached :class:`repro.shader.dispatch.CompiledProgram` for
    ``program`` at ``warp_size`` lanes (built on first use)."""
    key = (program.digest, warp_size)
    compiled = _DISPATCH_CACHE.get(key)
    if compiled is None:
        from repro.shader.dispatch import CompiledProgram
        if len(_DISPATCH_CACHE) >= _DISPATCH_CACHE_MAX:
            _DISPATCH_CACHE.clear()     # unbounded-growth backstop
        compiled = _DISPATCH_CACHE[key] = CompiledProgram(program, warp_size)
    return compiled
