"""JobSpec validation and the attempt/job failure taxonomy."""

import pytest

from repro.fleet.job import (ATTEMPT_OUTCOMES, JOB_OUTCOMES, RETRYABLE,
                             JobAttempt, JobRecord, JobSpec, JobSpecError)


class TestTaxonomy:
    def test_retryable_outcomes_are_infrastructure_failures(self):
        """Only crash/hang retries; deterministic verdicts are terminal."""
        assert set(RETRYABLE) == {"crashed", "hung"}
        assert set(RETRYABLE) <= set(ATTEMPT_OUTCOMES)
        for deterministic in ("violation", "detected", "error"):
            assert deterministic in ATTEMPT_OUTCOMES
            assert deterministic in JOB_OUTCOMES
            assert deterministic not in RETRYABLE
        assert "shed" in JOB_OUTCOMES          # load shedding is job-level
        assert "shed" not in ATTEMPT_OUTCOMES  # a shed job never ran


class TestJobSpec:
    def test_defaults_round_trip(self):
        spec = JobSpec(name="cube-s7")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_faults_and_retries_round_trip(self):
        spec = JobSpec(name="j", faults={"dram_drop": 0.02}, retries=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_empty_name_rejected(self):
        with pytest.raises(JobSpecError, match="non-empty"):
            JobSpec(name="")

    @pytest.mark.parametrize("field", ["width", "height", "frames"])
    def test_dimensions_must_be_positive_integers(self, field):
        with pytest.raises(JobSpecError, match=field):
            JobSpec(name="j", **{field: 0})

    def test_unknown_fault_rejected(self):
        with pytest.raises(JobSpecError, match="unknown fault"):
            JobSpec(name="j", faults={"cosmic_rays": 0.5})

    def test_non_numeric_fault_rejected(self):
        with pytest.raises(JobSpecError, match="must be a number"):
            JobSpec(name="j", faults={"dram_drop": "lots"})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(JobSpecError, match="unknown job spec"):
            JobSpec.from_dict({"name": "j", "speed": "ludicrous"})

    def test_from_dict_requires_name(self):
        with pytest.raises(JobSpecError, match="missing 'name'"):
            JobSpec.from_dict({"seed": 1})

    def test_identity_excludes_the_scheduling_label(self):
        """Two names, same physics -> same identity (and same cache key)."""
        a = JobSpec(name="first", seed=3)
        b = JobSpec(name="second", seed=3)
        assert a.identity() == b.identity()
        assert "name" not in a.identity()


class TestJobRecord:
    def test_bundles_collects_across_attempts(self):
        record = JobRecord(spec=JobSpec(name="j"))
        record.attempts = [JobAttempt("crashed", bundle="/b/one"),
                           JobAttempt("ok")]
        assert record.bundles == ["/b/one"]
        assert not record.ok
        record.outcome = "ok"
        assert record.ok

    def test_to_dict_is_json_shaped(self):
        import json
        record = JobRecord(spec=JobSpec(name="j"), outcome="failed",
                           attempts=[JobAttempt("hung", detail="stale")])
        doc = json.loads(json.dumps(record.to_dict()))
        assert doc["outcome"] == "failed"
        assert doc["attempts"][0]["outcome"] == "hung"


class TestSamplingFields:
    """ffwd/sample job knobs: validation, round trip, cache identity."""

    def test_ffwd_round_trips(self):
        spec = JobSpec(name="j", frames=8, ffwd=4)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_sample_round_trips(self):
        spec = JobSpec(name="j", frames=16, sample="2:8:1")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_both_are_identity_fields(self):
        plain = JobSpec(name="j", frames=16)
        ffwd = JobSpec(name="j", frames=16, ffwd=8)
        sampled = JobSpec(name="j", frames=16, sample="2:8:1")
        identities = {str(sorted(s.identity().items()))
                      for s in (plain, ffwd, sampled)}
        assert len(identities) == 3    # distinct cache keys

    @pytest.mark.parametrize("ffwd", [-1, True, 1.5, "2"])
    def test_ffwd_must_be_a_non_negative_integer(self, ffwd):
        with pytest.raises(JobSpecError):
            JobSpec(name="j", frames=8, ffwd=ffwd)

    def test_ffwd_must_leave_a_detailed_frame(self):
        with pytest.raises(JobSpecError):
            JobSpec(name="j", frames=8, ffwd=8)

    def test_ffwd_and_sample_are_mutually_exclusive(self):
        with pytest.raises(JobSpecError):
            JobSpec(name="j", frames=16, ffwd=4, sample="2:8:1")

    @pytest.mark.parametrize("sample", [7, "nope", "0:8", "9:8"])
    def test_bad_sample_specs_rejected(self, sample):
        with pytest.raises(JobSpecError):
            JobSpec(name="j", frames=16, sample=sample)

    def test_sample_needs_two_measured_windows(self):
        # 8 frames with period 8 yields a single detailed window — not
        # enough for an error bar, rejected up front at spec time.
        with pytest.raises(JobSpecError):
            JobSpec(name="j", frames=8, sample="2:8:1")
