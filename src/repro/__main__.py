"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``render``      — render a workload frame on the GPU timing model
* ``accuracy``    — run the §3.4 accuracy study
* ``cs1``         — one case-study-I full-system run
* ``cs2``         — a case-study-II WT sweep
* ``dfsl``        — run DFSL on a workload
* ``models``      — list the workload model zoo
* ``selftest``    — smoke-run one tiny frame with the health watchdog armed
* ``chaos``       — seeded fault sweep with the runtime sanitizer armed
  (``--server-drill`` runs the fleet-server kill -9 recovery drill)
* ``fleet``       — the fault-tolerant fleet.  ``fleet sweep`` (the
  default when flags follow directly) runs a one-shot sharded sweep
  across a supervised worker pool (retry/backoff, checkpoint resume,
  result cache); ``fleet serve`` starts the durable journal-backed
  server; ``fleet submit|status|drain`` talk to it; ``fleet gc``
  applies the cache/bundle retention caps
* ``ffwd``        — replay-driven fast-forward / sampled simulation,
  with the functional-vs-detailed equivalence verifier (``--verify``)

``cs1`` accepts the health-subsystem flags: ``--watchdog`` arms request
lifecycle tracking, ``--inject SPEC`` enables seeded fault injection (e.g.
``--inject dram_drop=0.01,noc_spike=0.05,seed=3`` — with ``--retries`` the
faults degrade gracefully instead of deadlocking), and
``--checkpoint-every N`` snapshots the run every N frames for crash
recovery.

``cs1``, ``cs2`` and ``selftest`` also accept ``--sanitize`` (runtime
invariant checking: port protocol, resource leaks, liveness, checkpoint
round trips) and ``--triage-dir DIR`` (write a triage bundle — repro
command, configs, trace tail, checkpoint, stats — when a sanitized run
dies).  See DESIGN.md §9.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.report import format_table


def _cmd_models(args) -> int:
    from repro.geometry.models import MODEL_NAMES, model_by_name
    from repro.harness.scenes import CASE_STUDY1_SCENES, CASE_STUDY2_SCENES
    keys = {name: [] for name in MODEL_NAMES}
    for key, name in {**CASE_STUDY1_SCENES, **CASE_STUDY2_SCENES}.items():
        keys.setdefault(name, []).append(key)
    rows = []
    for name in MODEL_NAMES:
        mesh = model_by_name(name)
        rows.append([name, ",".join(keys.get(name, [])) or "-",
                     mesh.num_vertices, mesh.num_primitives])
    print(format_table(["model", "paper id", "vertices", "triangles"], rows,
                       title="Workload model zoo"))
    return 0


def _cmd_render(args) -> int:
    from repro.common.config import DRAMConfig, GPUConfig
    from repro.common.events import EventQueue
    from repro.gpu.energy import measure_frame_energy
    from repro.gpu.gpu import EmeraldGPU
    from repro.harness.scenes import SceneSession
    from repro.memory.builders import build_baseline_memory

    session = SceneSession(args.model, args.width, args.height)
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=2))
    gpu = EmeraldGPU(events, GPUConfig(num_clusters=args.clusters),
                     args.width, args.height, memory=memory)
    gpu.work_tile_size = args.wt
    stats, energy = measure_frame_energy(gpu, session.frame(args.frame))
    print(f"{args.model} frame {args.frame} @ {args.width}x{args.height}, "
          f"WT={args.wt}:")
    print(f"  cycles={stats.cycles} fragment_cycles={stats.fragment_cycles}")
    print(f"  prims={stats.prims_rasterized} fragments={stats.fragments} "
          f"tc_tiles={stats.tc_tiles}")
    print(f"  l1_misses={stats.l1_misses} l2={stats.l2_misses} "
          f"dram_bytes={stats.dram_bytes}")
    print(f"  energy={energy.total_uj:.3f} uJ "
          f"(leakage {energy.leakage * 1e-6:.3f} uJ)")
    if args.output:
        gpu.fb.save_ppm(args.output)
        print(f"  image -> {args.output}")
    return 0


def _cmd_accuracy(args) -> int:
    from repro.validation.reference import accuracy_study
    result = accuracy_study(seed=args.seed)
    rows = list(zip(result.names,
                    [f"{t:.0f}" for t in result.sim_time],
                    [f"{t:.0f}" for t in result.ref_time]))
    print(format_table(["microbench", "sim_cycles", "ref_cycles"], rows,
                       title="Section 3.4 accuracy study"))
    print(f"draw time: corr={result.draw_time_correlation:.3f} "
          f"MARE={result.draw_time_error:.3f}")
    print(f"fill rate: corr={result.fill_rate_correlation:.3f} "
          f"MARE={result.fill_rate_error:.3f}")
    return 0


def _build_health(args):
    """Translate cs1's health flags into a HealthConfig (or None)."""
    from repro.health import FaultConfig, HealthConfig, RetryConfig
    faults = FaultConfig.parse(args.inject) if args.inject else None
    if not (args.watchdog or faults or args.checkpoint_every
            or args.retries):
        return None
    return HealthConfig(
        watchdog=args.watchdog,
        faults=faults,
        retry=RetryConfig() if args.retries else None,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
    )


def _build_trace(args):
    """Translate the --trace / --profile flags into a TraceConfig."""
    top_sinks = getattr(args, "top_sinks", False)
    if not (args.trace or args.profile or top_sinks):
        return None
    from repro.trace import TraceConfig
    return TraceConfig(path=args.trace, profile=args.profile or top_sinks)


def _print_profile(results, args) -> None:
    """Render the post-run attribution: full report and/or ranked sinks."""
    if results.profile is None:
        return
    if getattr(args, "top_sinks", False):
        print(results.profile.format_top_sinks())
    if args.profile:
        print(results.profile.format())


def _build_sanitize(args):
    """Translate --sanitize / --triage-dir into a SanitizeConfig."""
    if not (args.sanitize or args.triage_dir):
        return None
    from repro.sanitize import SanitizeConfig
    return SanitizeConfig(
        bundle_dir=args.triage_dir,
        command="python -m repro " + " ".join(sys.argv[1:]))


def _print_sampled(sampled) -> None:
    """Render a SampledRunResult: estimates with error bars + projections."""
    rows = []
    for name, est in sampled.estimates.items():
        low, high = est.ci95
        rows.append([name, f"{est.mean:.1f}", f"{est.stderr:.2f}",
                     f"[{low:.1f}, {high:.1f}]", est.windows])
    print(format_table(
        ["metric (per frame)", "mean", "stderr", "ci95", "windows"], rows,
        title="Sampled estimates"))
    ex = sampled.extrapolated
    print(f"  extrapolated FPS        : {ex.fps:.2f}")
    print(f"  extrapolated DRAM bytes : {ex.dram_bytes_total:.0f}")
    print(f"  extrapolated energy     : {ex.energy_uj_total:.2f} uJ")
    print(f"  detailed coverage       : {sampled.schedule.coverage * 100:.0f}%"
          f" ({sampled.frames_detailed}/{sampled.schedule.total_frames} "
          f"frames)")
    print(f"  wall clock              : {sampled.wall_functional:.2f}s "
          f"functional + {sampled.wall_detailed:.2f}s detailed")


def _cs1_ffwd_or_sample(args, config, sanitize) -> int:
    """cs1's --ffwd / --sample paths (sampling owns the checkpointing)."""
    from repro.harness.case_study1 import make_cs1_setup
    from repro.sampling import fast_forward, parse_sample_spec, run_sampled

    run_config, factory = make_cs1_setup(args.model, args.config, args.load,
                                         config, sanitize=sanitize)
    if args.sample:
        schedule = parse_sample_spec(args.sample, config.num_frames)
        sampled = run_sampled(run_config, factory, schedule)
        print(f"{args.model} {args.config} ({args.load} load), "
              f"sampled {schedule.spec()}:")
        _print_sampled(sampled)
        return 0
    result = fast_forward(run_config, factory, args.ffwd)
    print(f"{args.model} {args.config} ({args.load} load), "
          f"ffwd {args.ffwd}/{config.num_frames} frames:")
    print(f"  functional frames       : {result.frames_functional} "
          f"({result.wall_functional:.2f}s)")
    print(f"  detailed frames         : {result.frames_detailed} "
          f"({result.wall_detailed:.2f}s)")
    print(f"  mean GPU frame time     : "
          f"{result.results.mean_gpu_time:10.0f} ticks")
    print(f"  mean total frame time   : "
          f"{result.results.mean_total_time:10.0f} ticks")
    print(f"  final fb CRC            : 0x{result.final_fb_crc:08x}")
    return 0


def _cmd_cs1(args) -> int:
    from repro.harness.case_study1 import CS1Config, run_cs1
    config = CS1Config(num_frames=args.frames)
    health = _build_health(args)
    sanitize = _build_sanitize(args)
    if args.ffwd or args.sample:
        if health is not None:
            print("--ffwd/--sample own the run's checkpointing; combine "
                  "them with the health flags via `repro ffwd` instead")
            return 2
        return _cs1_ffwd_or_sample(args, config, sanitize)
    results = run_cs1(args.model, args.config, args.load, config,
                      health=health, stats_path=args.dump_stats,
                      trace=_build_trace(args), sanitize=sanitize)
    print(f"{args.model} {args.config} ({args.load} load):")
    if health is not None:
        print(f"  health: retries={results.noc_retries} "
              f"watchdog_reports={results.watchdog_reports} "
              f"quarantined={results.quarantined_errors} "
              f"checkpoints={results.checkpoints_taken}")
    if sanitize is not None:
        print(f"  sanitizer: checks={results.sanitizer_checks} "
              f"violations={results.sanitizer_violations}")
    print(f"  mean GPU frame time   : {results.mean_gpu_time:10.0f} ticks")
    print(f"  mean total frame time : {results.mean_total_time:10.0f} ticks")
    print(f"  frames meeting period : {results.fps_fraction * 100:.0f}%")
    print(f"  display served/aborted: {results.display_completed}/"
          f"{results.display_aborted}")
    print(f"  DRAM row-hit rate     : {results.row_hit_rate:.3f}")
    print(f"  mean DRAM latency     : "
          f"{ {k: round(v) for k, v in results.mean_latency.items()} }")
    _print_profile(results, args)
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _cmd_cs2(args) -> int:
    from repro.harness.case_study2 import CS2Config, wt_sweep
    config = CS2Config()
    sweep = wt_sweep(args.workload, wt_sizes=range(args.min_wt,
                                                   args.max_wt + 1),
                     config=config)
    rows = [[wt, r.time, sum(r.stats.l1_misses.values())]
            for wt, r in sweep.items()]
    print(format_table(["WT", "fragment_cycles", "L1_misses"], rows,
                       title=f"WT sweep — {args.workload}"))
    best = min(sweep, key=lambda wt: sweep[wt].time)
    print(f"best WT: {best}")
    trace = _build_trace(args)
    sanitize = _build_sanitize(args)
    if (args.dump_stats or trace is not None or sanitize is not None
            or args.ffwd):
        # Re-run the best WT for one frame to collect stats, a trace,
        # and/or a sanitized pass over the GPU memory hierarchy; --ffwd
        # fast-forwards the warmup frame functionally (GL state advances,
        # nothing hits the timing GPU) before the measured frame.
        import zlib

        from repro.harness.case_study2 import run_static_gpu
        gpu, _ = run_static_gpu(args.workload, best, 1, config,
                                stats_path=args.dump_stats, trace=trace,
                                sanitize=sanitize, ffwd=args.ffwd)
        if args.ffwd:
            print(f"ffwd re-run (best WT, ffwd={args.ffwd}): fb CRC "
                  f"0x{zlib.crc32(gpu.fb.color.tobytes()):08x}")
        if args.dump_stats:
            print(f"stats written to {args.dump_stats}")
        if args.trace:
            print(f"trace written to {args.trace}")
        if sanitize is not None:
            print("sanitizer: re-ran best WT armed — no violations")
    return 0


def _cmd_ffwd(args) -> int:
    """Replay-driven fast-forward / sampled simulation driver (§13).

    ``--verify`` runs the four-check functional-vs-detailed equivalence
    suite and turns it into the exit code — the CI ffwd smoke job's
    gate.  ``--sample`` runs the periodic-sampling mode instead and
    reports extrapolated metrics with standard-error bars.  Plain
    ``--ffwd K`` fast-forwards K frames and runs the rest detailed.
    """
    import json

    from repro.harness.case_study1 import CS1Config, make_cs1_setup
    from repro.sampling import (fast_forward, parse_sample_spec,
                                run_sampled, verify_equivalence)

    config = CS1Config(num_frames=args.frames)
    run_config, factory = make_cs1_setup(args.model, args.config,
                                         args.load, config)
    report: dict
    status = 0
    if args.verify:
        ffwd = args.ffwd or max(1, args.frames // 2)
        report = verify_equivalence(run_config, factory, ffwd)
        print(f"{args.model} {args.config} equivalence "
              f"(ffwd {ffwd}/{args.frames} frames):")
        for name, passed in report["checks"].items():
            print(f"  {name:<24}: {'ok' if passed else 'FAILED'}")
        wall = report["wall"]
        print(f"  wall: ffwd {wall['ffwd']:.2f}s (functional portion "
              f"{wall['ffwd_functional']:.2f}s) vs full detail "
              f"{wall['full_detail']:.2f}s")
        print("equivalence OK" if report["ok"] else "equivalence FAILED")
        status = 0 if report["ok"] else 1
    elif args.sample:
        schedule = parse_sample_spec(args.sample, args.frames)
        sampled = run_sampled(run_config, factory, schedule)
        print(f"{args.model} {args.config} sampled {schedule.spec()} "
              f"over {args.frames} frames:")
        _print_sampled(sampled)
        report = sampled.as_dict()
    else:
        if not args.ffwd:
            print("nothing to do: give --ffwd K, --sample D:P, or --verify")
            return 2
        result = fast_forward(run_config, factory, args.ffwd)
        print(f"{args.model} {args.config} ffwd "
              f"{args.ffwd}/{args.frames} frames:")
        print(f"  functional: {result.frames_functional} frames in "
              f"{result.wall_functional:.2f}s; detailed: "
              f"{result.frames_detailed} frames in "
              f"{result.wall_detailed:.2f}s")
        print(f"  final fb CRC: 0x{result.final_fb_crc:08x}")
        report = {
            "model": args.model, "config": args.config,
            "ffwd_frames": args.ffwd, "total_frames": args.frames,
            "final_fb_crc": result.final_fb_crc,
            "fingerprint": result.fingerprint(),
            "wall": {"functional": result.wall_functional,
                     "detailed": result.wall_detailed},
        }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")
    return status


def _cmd_dfsl(args) -> int:
    from repro.harness.case_study2 import CS2Config, run_dfsl
    results, controller = run_dfsl(args.workload, frames=args.frames,
                                   config=CS2Config(),
                                   eval_max=args.max_wt,
                                   run_frames=args.run_frames)
    rows = [[f, wt, t, mode] for f, wt, t, mode in controller.history]
    print(format_table(["frame", "WT", "time", "phase"], rows,
                       title=f"DFSL — {args.workload}"))
    print(f"locked-in WT: {controller.wt_best}")
    return 0


def _cmd_bench(args) -> int:
    """Fastpath measurement discipline: run the tracked benchmarks.

    Runs each workload fastpath-on and fastpath-off, verifies the two
    modes computed the identical simulation, and writes one
    ``BENCH_<name>.json`` artifact per benchmark (see
    :mod:`repro.bench`).  ``--gate`` turns the machine-independent checks
    (identity + on-not-slower-than-off) into the exit code — the CI
    smoke job runs ``bench --scale smoke --gate``.
    """
    from repro import bench

    names = args.only or list(bench.BENCHMARKS)
    failures: list[str] = []
    for name in names:
        report = bench.run([name], scale=args.scale)[0]
        if args.out is not None:
            path = bench.write_report(report, args.out)
            print(f"wrote {path}")
        if args.summary or not args.out:
            print(bench.format_summary(report))
        failures.extend(bench.gate(report))
    if failures:
        for failure in failures:
            print(f"BENCH GATE: {failure}")
        if args.gate:
            return 1
    return 0


def _cmd_selftest(args) -> int:
    """Health smoke test: one tiny full-system run, watchdog armed.

    Exercises the whole stack (CPU prepare, GPU render, display scanout,
    DRAM, watchdog, checkpointing) in a few seconds and asserts a clean
    shutdown — the canary CI runs on every commit.
    """
    from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
    from repro.harness.scenes import SceneSession
    from repro.health import HealthConfig
    from repro.soc.soc import EmeraldSoC, SoCRunConfig

    sanitize = _build_sanitize(args)
    session = SceneSession("cube", 48, 36)
    config = SoCRunConfig(
        width=48, height=36, num_frames=args.frames,
        memory_config="BAS",
        dram=DRAMConfig(channels=2),
        gpu=scaled_gpu(GPUConfig(num_clusters=2)),
        gpu_frame_period_ticks=120_000,
        display_period_ticks=60_000,
        cpu_work_per_frame=40,
        health=HealthConfig(watchdog=True, checkpoint_every=1),
        trace=_build_trace(args),
        sanitize=sanitize,
    )
    soc = EmeraldSoC(config, session.frame, session.framebuffer_address)
    results = soc.run()
    _print_profile(results, args)
    if args.trace:
        print(f"trace written to {args.trace}")
    detection_ok = True
    if sanitize is not None:
        # Prove detection end-to-end: reintroduce a historic lost-retry
        # bug in a sandboxed fabric and require the sanitizer to name it.
        from repro.sanitize import detection_selftest
        violation = detection_selftest()
        detection_ok = violation is not None
        print(f"  sanitizer: checks={results.sanitizer_checks} "
              f"violations={results.sanitizer_violations}")
        print("  deliberate-violation detection: "
              + (f"caught {type(violation).__name__} at "
                 f"{violation.details.get('port')}"
                 if detection_ok else "MISSED"))
    ok = (soc.loop.finished
          and len(results.frames) == args.frames
          and results.watchdog_reports == 0
          and results.quarantined_errors == 0
          and results.checkpoints_taken == args.frames
          and soc.gpu.fb.coverage() > 0.01
          and (sanitize is None or results.sanitizer_violations == 0)
          and detection_ok)
    print(f"selftest: frames={len(results.frames)} "
          f"end_tick={results.end_tick} "
          f"watchdog_reports={results.watchdog_reports} "
          f"checkpoints={results.checkpoints_taken} "
          f"coverage={soc.gpu.fb.coverage():.3f}")
    print("selftest OK" if ok else "selftest FAILED")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    """Seeded fault sweep with the sanitizer armed (see repro.sanitize.chaos).

    Exit 0 when every run degrades gracefully or dies with a typed,
    bundled failure; exit 1 on a contract breach (bare traceback); exit 3
    when a scenario not cataloged to violate produced a violation —
    still a typed, bundled death, but one CI must flag as a regression.
    ``--summary PATH`` writes the whole report (per-scenario outcomes,
    bundle paths) as machine-readable JSON for downstream tooling.
    """
    import json

    if args.server_drill:
        return _server_drill(args)

    from repro.sanitize.chaos import (SCENARIOS, format_report, run_chaos)

    scenarios = SCENARIOS
    if args.scenario:
        scenarios = tuple(s for s in SCENARIOS if s.name == args.scenario)
        if not scenarios:
            known = ", ".join(s.name for s in SCENARIOS)
            print(f"unknown scenario {args.scenario!r}; known: {known}")
            return 2
    seeds = tuple(int(s) for s in args.seeds.split(","))
    report = run_chaos(
        seeds, budget_events=args.budget_events, frames=args.frames,
        bundle_dir=args.bundle_dir, scenarios=scenarios,
        progress=lambda r: print(
            f"  {r.scenario:<24} seed={r.seed}: {r.outcome}", flush=True))
    print(format_report(report))
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"summary written to {args.summary}")
    if args.bundle_dir:
        print(f"triage bundles (failures only) under {args.bundle_dir}")
    if not report.ok:
        for failure in report.failures:
            print(f"CONTRACT BREACH: {failure.scenario} seed={failure.seed} "
                  f"-> {failure.detail}")
        return 1
    if report.unexpected_violations:
        for result in report.unexpected_violations:
            print(f"UNEXPECTED VIOLATION: {result.scenario} "
                  f"seed={result.seed} -> {result.detail[:100]}")
        return 3
    return 0


def _server_drill(args) -> int:
    """``chaos --server-drill``: kill -9 the fleet server, prove recovery.

    Runs the sweep once uninterrupted, then again under a server that is
    SIGKILL'd at ``--kills`` randomized points and restarted; passes iff
    the journal replays clean (no completed job ever re-claimed) and the
    drill's cached payloads are byte-identical to the baseline's.
    """
    import json

    from repro.fleet.drill import run_server_drill

    seed = int(args.seeds.split(",")[0])
    print(f"server drill: {args.server_jobs} jobs x {args.frames} frames, "
          f"{args.kills} kill(s), seed {seed}", flush=True)
    report = run_server_drill(
        kills=args.kills, jobs=args.server_jobs, frames=args.frames,
        workers=args.server_workers, seed=seed, workdir=args.workdir)
    for name, verdict in sorted(report.jobs.items()):
        print(f"  {name:<16} {verdict['outcome']:<4} "
              f"claims={verdict['claims']} "
              f"cache_hit={'y' if verdict['cache_hit'] else 'n'} "
              f"payload={'match' if verdict['match'] else 'MISMATCH'}")
    print(f"  {report.kills} kills over {report.rounds} incarnations; "
          f"journal: {report.journal.get('records', 0)} records, "
          f"{report.executed_claims} claims, "
          f"{report.cache_hits} cache-hit completions")
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"summary written to {args.summary}")
    if not report.ok:
        for failure in report.failures:
            print(f"DRILL FAILURE: {failure}")
        return 1
    print("server drill OK: byte-identical to the uninterrupted run, "
          "no completed job re-executed")
    return 0


def _parse_kill_specs(specs) -> dict:
    """``--kill NAME:FRAME`` flags -> the supervisor's inject mapping.

    Each flag SIGKILLs the named job's *first* attempt after FRAME
    completes; later attempts consume no control and run clean — the
    shape the CI smoke job uses to prove crash recovery.
    """
    inject: dict = {}
    for item in specs or ():
        name, sep, frame = item.rpartition(":")
        if not sep or not name:
            raise ValueError(
                f"--kill wants NAME:FRAME, got {item!r}")
        try:
            controls = [{"kill_at_frame": int(frame)}]
        except ValueError:
            raise ValueError(
                f"--kill frame must be an integer, got {frame!r}") from None
        inject[name] = controls
    return inject


def _cmd_fleet_sweep(args) -> int:
    """Run a sharded sweep under the fault-tolerant fleet (DESIGN.md §10).

    Jobs come from ``--jobs specs.json`` (a list of JobSpec objects) or
    are generated as the cross product of ``--models`` x ``--seeds``.
    Exit 0 when every job ends ``ok`` (and, with ``--expect-cached``,
    every job was served from the cache); exit 1 otherwise.  Signals get
    the graceful-shutdown ladder: the first SIGTERM/SIGINT drains
    (in-flight jobs stop at a checkpoint boundary, queued jobs are
    cancelled; exit 4), a second aborts (workers SIGKILLed; exit 5).
    """
    import json
    import signal as signallib

    from repro.fleet import (BackoffPolicy, FleetConfig, FleetSupervisor,
                             JobSpec, JobSpecError)

    try:
        if args.jobs:
            with open(args.jobs) as handle:
                docs = json.load(handle)
            if not isinstance(docs, list):
                raise JobSpecError(
                    f"{args.jobs} must hold a JSON list of job specs")
            specs = [JobSpec.from_dict(doc) for doc in docs]
        else:
            seeds = [int(s) for s in args.seeds.split(",")]
            faults = None
            if args.inject:
                from repro.health import FaultConfig
                parsed = FaultConfig.parse(args.inject)
                faults = {name: value for name in
                          ("dram_drop", "dram_delay", "noc_spike",
                           "display_underrun")
                          if (value := getattr(parsed, name))}
            specs = [JobSpec(name=f"{model}-s{seed}", model=model,
                             frames=args.frames,
                             memory_config=args.memory_config, seed=seed,
                             faults=faults, retries=args.retries)
                     for model in args.models.split(",")
                     for seed in seeds]
        inject = _parse_kill_specs(args.kill)
    except (JobSpecError, ValueError, OSError) as exc:
        print(f"bad fleet invocation: {exc}")
        return 2

    config = FleetConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        backoff=BackoffPolicy(base=args.backoff_base),
        heartbeat_timeout=args.heartbeat_timeout,
        preempt_after=args.preempt_after,
        budget_events=args.budget_events,
        cache_dir=args.cache_dir,
        inject=inject,
    )
    supervisor = FleetSupervisor(config, args.workdir)
    supervisor.submit_sweep(specs)

    signals_seen = 0

    def _on_signal(signum, frame) -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen == 1:
            supervisor.request_drain()
        else:
            supervisor.request_abort()

    previous = {}
    for signum in (signallib.SIGTERM, signallib.SIGINT):
        try:
            previous[signum] = signallib.signal(signum, _on_signal)
        except (ValueError, OSError):        # non-main thread (tests)
            pass
    try:
        report = supervisor.run()
    finally:
        for signum, handler in previous.items():
            signallib.signal(signum, handler)

    rows = []
    for record in report.records:
        source = ("cache" if record.cache_hit
                  else f"{len(record.attempts)} attempt(s)")
        detail = ""
        if record.cancel_reason:
            detail = record.cancel_reason[:60]
        elif record.attempts:
            last = record.attempts[-1]
            detail = last.detail[:60]
        if record.attempts \
                and any(a.resumed_from for a in record.attempts):
            source += (", resumed@f"
                       + str(max(a.resumed_from
                                 for a in record.attempts)))
        rows.append([record.spec.name, record.outcome, source,
                     (record.payload or {}).get("fb_crc", "-"), detail])
    print(format_table(["job", "outcome", "via", "fb_crc", "detail"], rows,
                       title="Fleet sweep"))
    counts = ", ".join(f"{count} {outcome}" for outcome, count
                       in sorted(report.counts().items()))
    print(f"{len(report.records)} jobs: {counts}; "
          f"{report.executed} worker processes, {report.cached} cache hits")
    bundles = [b for record in report.records for b in record.bundles]
    if bundles:
        print("triage bundles:")
        for bundle in bundles:
            print(f"  {bundle}")
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"summary written to {args.summary}")
    if supervisor.aborted:
        print("fleet sweep ABORTED (second signal); "
              "checkpoints survive for a resume")
        return 5
    if supervisor.draining:
        print("fleet sweep drained (first signal); "
              "cancelled jobs resume from their checkpoints")
        return 4
    if not report.ok:
        return 1
    if args.expect_cached and report.cached != len(report.records):
        print(f"EXPECTED CACHE-ONLY RERUN: {report.cached}/"
              f"{len(report.records)} jobs served from cache")
        return 1
    return 0


def _socket_request(workdir: str, doc: dict, timeout: float = 10.0) -> dict:
    """One request/response round trip on the server's Unix socket."""
    import json
    import socket as socketlib

    from repro.fleet.server import SOCKET_NAME

    path = f"{workdir}/{SOCKET_NAME}"
    with socketlib.socket(socketlib.AF_UNIX,
                          socketlib.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall((json.dumps(doc) + "\n").encode())
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    return json.loads(buffer)


def _cmd_fleet_serve(args) -> int:
    """Start the durable fleet server (DESIGN.md §14).

    Recovers from the write-ahead journal, then serves the file-drop
    spool and the Unix socket until drained.  Exit 0 = drained clean
    with nothing pending, 4 = drained with pending jobs (the journal
    resumes them next start), 5 = aborted on a second signal.
    """
    from repro.fleet import FleetConfig, FleetServer, ServerConfig
    from repro.sanitize import SanitizerViolation

    cache_dir = args.cache or f"{args.workdir}/cache"
    fleet = FleetConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        heartbeat_timeout=args.heartbeat_timeout,
        poll_interval=args.poll_interval,
        budget_events=args.budget_events,
        cache_dir=cache_dir,
    )
    config = ServerConfig(
        fleet=fleet,
        spool_poll=args.spool_poll,
        segment_records=args.segment_records,
        unhealthy_after=args.unhealthy_after,
        expect=args.expect,
        enable_socket=not args.no_socket,
    )
    try:
        server = FleetServer(config, args.workdir)
    except SanitizerViolation as violation:
        print(f"REFUSING TO START: {violation}")
        return 1
    print(f"fleet server {server.server_id}: workdir={args.workdir} "
          f"cache={cache_dir}", flush=True)
    print(f"  spool: {args.workdir}/spool   "
          f"socket: {'off' if args.no_socket else server.socket_path}",
          flush=True)
    recovered = len(server.replay.pending)
    if recovered:
        print(f"  recovered {recovered} pending job(s) from the journal",
              flush=True)
    code = server.serve()
    status = server.status()
    print(f"fleet server exit {code}: jobs={status['jobs']} "
          f"executed={status['executed']}", flush=True)
    return code


def _cmd_fleet_submit(args) -> int:
    """Submit jobs to a running (or future) fleet server.

    Reads a spec file (one spec object, a submission envelope, or a
    list of either) and submits each via the Unix socket when the
    server is up, else as spool drop files the server consumes on its
    next scan.  Exit 0 when everything was accepted (dedup counts as
    accepted), 1 otherwise.
    """
    import json
    import os

    from repro.fleet.server import SOCKET_NAME, SPOOL_DIR

    try:
        with open(args.specfile) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"bad spec file: {exc}")
        return 2
    docs = doc if isinstance(doc, list) else [doc]
    if args.priority or args.owner or args.deadline:
        docs = [{"spec": item if "spec" not in item else item["spec"],
                 "priority": args.priority,
                 "owner": args.owner or "anonymous",
                 "deadline": args.deadline}
                for item in docs]
        for item in docs:
            if item["deadline"] is None:
                del item["deadline"]
    via_socket = (not args.spool
                  and os.path.exists(os.path.join(args.workdir,
                                                  SOCKET_NAME)))
    failures = 0
    for index, item in enumerate(docs):
        if via_socket:
            try:
                ack = _socket_request(args.workdir,
                                      {"op": "submit", "job": item})
            except OSError as exc:
                print(f"socket submit failed ({exc}); falling back to "
                      f"the spool")
                via_socket = False
                ack = None
            if ack is not None:
                name = ack.get("name", "?")
                if ack.get("ok"):
                    state = "dedup" if ack.get("dedup") else "accepted"
                    print(f"  {name}: {state} ({ack.get('outcome')})")
                else:
                    failures += 1
                    print(f"  job[{index}]: REJECTED "
                          f"{ack.get('error')}: {ack.get('detail')}")
                continue
        spool = os.path.join(args.workdir, SPOOL_DIR)
        os.makedirs(spool, exist_ok=True)
        spec = item.get("spec", item) if isinstance(item, dict) else {}
        name = spec.get("name", f"job{index}") if isinstance(spec, dict) \
            else f"job{index}"
        drop = os.path.join(spool, f"{name}.json")
        with open(drop + ".tmp", "w") as handle:
            json.dump(item, handle, indent=2)
        os.replace(drop + ".tmp", drop)
        print(f"  {name}: spooled -> {drop}")
    return 1 if failures else 0


def _cmd_fleet_status(args) -> int:
    """Server status: live over the socket, offline from the journal."""
    import json
    import os

    from repro.fleet.server import SOCKET_NAME, journal_status
    from repro.sanitize import SanitizerViolation

    if os.path.exists(os.path.join(args.workdir, SOCKET_NAME)):
        try:
            status = _socket_request(args.workdir, {"op": "status"})
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0 if status.get("ok") else 1
        except OSError:
            pass                         # stale socket: fall back
    try:
        status = journal_status(args.workdir)
    except SanitizerViolation as violation:
        print(f"JOURNAL INCONSISTENT: {violation}")
        return 1
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_fleet_drain(args) -> int:
    """Ask a running server to drain (finish/checkpoint, then exit)."""
    try:
        ack = _socket_request(args.workdir, {"op": "drain"})
    except OSError as exc:
        print(f"no server reachable at {args.workdir}: {exc}")
        return 1
    print("drain requested" if ack.get("ok") else f"drain refused: {ack}")
    return 0 if ack.get("ok") else 1


def _cmd_fleet_gc(args) -> int:
    """Apply the retention caps: result cache LRU + triage bundles."""
    import json

    from repro.fleet import ResultCache, sweep_triage_bundles

    doc: dict = {}
    if args.cache:
        cache = ResultCache(args.cache)
        report = cache.gc(max_entries=args.max_entries,
                          max_bytes=args.max_bytes,
                          stale_staging_age=args.stale_staging_age)
        doc["cache"] = report.to_dict()
        print(f"cache {args.cache}: kept {report.entries} entries "
              f"({report.bytes} bytes), evicted {report.evicted_entries} "
              f"({report.evicted_bytes} bytes), removed "
              f"{report.quarantined_removed} quarantined + "
              f"{report.staging_removed} stale staging")
    if args.workdir:
        swept = sweep_triage_bundles(args.workdir,
                                     max_bundles=args.max_bundles)
        doc["bundles"] = swept
        print(f"bundles under {args.workdir}: kept {swept['kept']}, "
              f"removed {swept['removed']}")
    if not doc:
        print("nothing to do: give --cache and/or --workdir")
        return 2
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.summary}")
    return 0


def _add_trace_flags(p) -> None:
    p.add_argument("--trace", metavar="PATH",
                   help="record the run as Chrome Trace Event Format JSON "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--profile", action="store_true",
                   help="print a cycle-attribution report after the run")
    p.add_argument("--top-sinks", action="store_true",
                   help="print a ranked table of the busiest spans and "
                        "kernel-event owners (implies --profile)")


def _add_sanitize_flags(p) -> None:
    p.add_argument("--sanitize", action="store_true",
                   help="arm the runtime invariant sanitizer (port "
                        "protocol, resource leaks, liveness, checkpoint "
                        "round trips); bit-identical when quiet")
    p.add_argument("--triage-dir", metavar="DIR",
                   help="write a triage bundle here if the run dies "
                        "(implies --sanitize)")


def _cmd_dse(args) -> int:
    """Design-space exploration: a topology grid through the fleet.

    Enumerates clusters x stacks x data-rates x CPU mixes, evaluates
    every point as a cached fleet job, and prints the Pareto frontier
    over FPS / DRAM bandwidth / energy.  Exit 0 when every point
    evaluated ``ok`` (and, with ``--expect-cached``, entirely from
    cache); exit 1 otherwise.
    """
    import json

    from repro.common.config import ConfigError
    from repro.dse import (DSEConfig, format_dse_report, run_dse,
                           topology_grid)

    try:
        grid = topology_grid(
            clusters=[int(v) for v in args.clusters.split(",")],
            stacks=[int(v) for v in args.stacks.split(",")],
            data_rates=[int(v) for v in args.rates.split(",")],
            cpu_mixes=args.cpus.split(","))
    except (ConfigError, ValueError) as exc:
        print(f"bad dse invocation: {exc}")
        return 2
    config = DSEConfig(model=args.model, frames=args.frames,
                       seed=args.seed, workers=args.workers,
                       cache_dir=args.cache_dir, workdir=args.workdir,
                       budget_events=args.budget_events,
                       ffwd=args.ffwd, sample=args.sample)
    report = run_dse(grid, config)
    print(format_dse_report(report))
    fleet = report.fleet
    print(f"{len(report.points)} points: {fleet.executed} worker "
          f"processes, {fleet.cached} cache hits")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.out}")
    if not report.ok:
        return 1
    if args.expect_cached and fleet.cached != len(report.points):
        print(f"EXPECTED CACHE-ONLY RERUN: {fleet.cached}/"
              f"{len(report.points)} points served from cache")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Emerald reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("models", help="list workload models")
    p.set_defaults(func=_cmd_models)

    p = sub.add_parser("render", help="render one frame on the GPU model")
    p.add_argument("model", help="model name (see `repro models`)")
    p.add_argument("--width", type=int, default=160)
    p.add_argument("--height", type=int, default=120)
    p.add_argument("--frame", type=int, default=0)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--wt", type=int, default=1)
    p.add_argument("--output", help="write the image as PPM")
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser("accuracy", help="run the Sec. 3.4 accuracy study")
    p.add_argument("--seed", type=int, default=62)
    p.set_defaults(func=_cmd_accuracy)

    p = sub.add_parser("cs1", help="case study I full-system run")
    p.add_argument("model", choices=["M1", "M2", "M3", "M4"])
    p.add_argument("config", choices=["BAS", "DCB", "DTB", "HMC"])
    p.add_argument("--load", choices=["regular", "high"], default="regular")
    p.add_argument("--frames", type=int, default=5)
    p.add_argument("--watchdog", action="store_true",
                   help="arm the health watchdog (hangs become reports)")
    p.add_argument("--inject", default="",
                   help="fault spec, e.g. dram_drop=0.01,noc_spike=0.05")
    p.add_argument("--retries", action="store_true",
                   help="enable NoC retry/timeout/backoff recovery")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="snapshot the run every N frames (0 = off)")
    p.add_argument("--checkpoint-path",
                   help="write the latest snapshot to this file")
    p.add_argument("--ffwd", type=int, default=0, metavar="K",
                   help="fast-forward the first K frames functionally "
                        "(zero timing events), then run detailed")
    p.add_argument("--sample", metavar="D:P[:W]",
                   help="periodic sampling: D detailed frames per period "
                        "of P, W warmup frames per window; extrapolates "
                        "with error bars")
    p.add_argument("--dump-stats", metavar="PATH",
                   help="write every component's statistics (including "
                        "per-link port stats) to one JSON file")
    _add_trace_flags(p)
    _add_sanitize_flags(p)
    p.set_defaults(func=_cmd_cs1)

    p = sub.add_parser("bench",
                       help="fastpath benchmarks: on-vs-off wall time, "
                            "identity check, BENCH_*.json artifacts")
    p.add_argument("--scale", choices=("default", "smoke", "micro"),
                   default="default",
                   help="workload size (default = the recorded operating "
                        "points, smoke = CI seconds-scale, micro = tests)")
    p.add_argument("--only", action="append",
                   choices=("fig14", "pipeline", "ffwd"),
                   help="run a subset (repeatable; default: all)")
    p.add_argument("--out", help="directory for BENCH_<name>.json artifacts")
    p.add_argument("--summary", action="store_true",
                   help="print the human-readable table")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 when identity or the on-vs-off speed "
                        "check fails (machine-independent checks only)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("selftest",
                       help="tiny watchdog-armed full-system smoke run")
    p.add_argument("--frames", type=int, default=1)
    _add_trace_flags(p)
    _add_sanitize_flags(p)
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser("ffwd",
                       help="replay-driven fast-forward / sampled "
                            "simulation (with the functional-vs-detailed "
                            "equivalence verifier)")
    p.add_argument("model", choices=["M1", "M2", "M3", "M4"])
    p.add_argument("config", choices=["BAS", "DCB", "DTB", "HMC"])
    p.add_argument("--load", choices=["regular", "high"], default="regular")
    p.add_argument("--frames", type=int, default=5)
    p.add_argument("--ffwd", type=int, default=0, metavar="K",
                   help="functional frames before the detailed region "
                        "(with --verify, defaults to frames//2)")
    p.add_argument("--sample", metavar="D:P[:W]",
                   help="periodic sampling spec instead of a single "
                        "fast-forward")
    p.add_argument("--verify", action="store_true",
                   help="run the 4-check functional-vs-detailed "
                        "equivalence suite; exit 1 on any failure "
                        "(the CI gate)")
    p.add_argument("--out", metavar="PATH",
                   help="write the machine-readable report as JSON")
    p.set_defaults(func=_cmd_ffwd)

    p = sub.add_parser("cs2", help="case study II WT sweep")
    p.add_argument("workload", help="W1..W6 or a model name")
    p.add_argument("--min-wt", type=int, default=1)
    p.add_argument("--max-wt", type=int, default=10)
    p.add_argument("--ffwd", type=int, default=0, metavar="K",
                   help="re-run the best WT fast-forwarding K frames "
                        "functionally before the measured frame")
    p.add_argument("--dump-stats", metavar="PATH",
                   help="re-run the best WT for one frame and write every "
                        "GPU component's statistics to one JSON file")
    _add_trace_flags(p)
    _add_sanitize_flags(p)
    p.set_defaults(func=_cmd_cs2)

    p = sub.add_parser("chaos",
                       help="seeded fault sweep with the sanitizer armed")
    p.add_argument("--seeds", default="1,2,3",
                   help="comma-separated RNG seeds (default: 1,2,3)")
    p.add_argument("--budget-events", type=int, default=2_000_000,
                   help="per-run event budget (hang backstop)")
    p.add_argument("--frames", type=int, default=2,
                   help="frames rendered per run")
    p.add_argument("--scenario",
                   help="run only this scenario (default: all)")
    p.add_argument("--bundle-dir", metavar="DIR",
                   help="write triage bundles for failing runs here")
    p.add_argument("--summary", metavar="PATH",
                   help="write the machine-readable sweep summary "
                        "(per-scenario outcomes, bundle paths) as JSON")
    p.add_argument("--server-drill", action="store_true",
                   help="run the fleet-server chaos drill instead: "
                        "kill -9 the server at randomized points "
                        "mid-sweep, restart, assert byte-identical "
                        "results and zero re-executed jobs")
    p.add_argument("--kills", type=int, default=3,
                   help="server drill: SIGKILLs to deliver (default: 3)")
    p.add_argument("--server-jobs", type=int, default=4,
                   help="server drill: jobs in the sweep (default: 4)")
    p.add_argument("--server-workers", type=int, default=2,
                   help="server drill: worker pool size (default: 2)")
    p.add_argument("--workdir", default="server-drill-work",
                   help="server drill: scratch root")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("fleet",
                       help="the fault-tolerant fleet: one-shot sweeps "
                            "(sweep) and the durable journal-backed "
                            "server (serve/submit/status/drain/gc)")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    p = fleet_sub.add_parser(
        "sweep", help="one-shot sharded sweep across a supervised "
                      "worker pool (the historic `repro fleet` flags)")
    p.add_argument("--models", default="cube",
                   help="comma-separated workload models (default: cube)")
    p.add_argument("--seeds", default="1,2,3",
                   help="comma-separated RNG seeds (default: 1,2,3)")
    p.add_argument("--frames", type=int, default=2,
                   help="frames rendered per job")
    p.add_argument("--memory-config", default="BAS",
                   choices=["BAS", "DCB", "DTB", "HMC"])
    p.add_argument("--inject", default="",
                   help="fault spec applied to every job, e.g. "
                        "dram_drop=0.01,noc_spike=0.05")
    p.add_argument("--retries", action="store_true",
                   help="arm the NoC retry ladder in every job")
    p.add_argument("--jobs", metavar="PATH",
                   help="JSON list of job specs (overrides "
                        "--models/--seeds)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="crash/hang retries per job before 'failed'")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="bounded submission queue (beyond: jobs are shed)")
    p.add_argument("--backoff-base", type=float, default=0.25,
                   help="first retry delay in seconds (doubles, capped)")
    p.add_argument("--heartbeat-timeout", type=float, default=60.0,
                   help="wall seconds without a worker heartbeat = hung")
    p.add_argument("--preempt-after", type=float,
                   help="ask attempts running longer than this many wall "
                        "seconds to stop at the next checkpoint boundary")
    p.add_argument("--budget-events", type=int, default=5_000_000,
                   help="per-attempt event budget (hang backstop)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed result cache root")
    p.add_argument("--workdir", default="fleet-work",
                   help="per-job scratch space (checkpoints, heartbeats, "
                        "triage bundles)")
    p.add_argument("--kill", action="append", metavar="NAME:FRAME",
                   help="SIGKILL job NAME's first attempt after FRAME "
                        "completes (repeatable; CI crash-recovery smoke)")
    p.add_argument("--summary", metavar="PATH",
                   help="write the machine-readable fleet report as JSON")
    p.add_argument("--expect-cached", action="store_true",
                   help="also fail unless every job was served from the "
                        "cache (CI determinism check)")
    p.set_defaults(func=_cmd_fleet_sweep)

    p = fleet_sub.add_parser(
        "serve", help="start the durable fleet server (write-ahead "
                      "journal, spool + socket intake, priority/"
                      "fair-share/deadline scheduling)")
    p.add_argument("--workdir", default="fleet-server",
                   help="server root (journal, spool, jobs, socket)")
    p.add_argument("--cache", metavar="DIR",
                   help="result cache root (default: WORKDIR/cache)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="pending-job bound; beyond it submissions shed")
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--heartbeat-timeout", type=float, default=60.0)
    p.add_argument("--poll-interval", type=float, default=0.05)
    p.add_argument("--spool-poll", type=float, default=0.1,
                   help="seconds between file-drop spool scans")
    p.add_argument("--segment-records", type=int, default=256,
                   help="journal records per segment before rotation")
    p.add_argument("--unhealthy-after", type=int, default=5,
                   help="consecutive worker infra failures before the "
                        "server degrades to cache-only serving")
    p.add_argument("--budget-events", type=int, default=5_000_000)
    p.add_argument("--expect", type=int, metavar="N",
                   help="drain automatically once N jobs are terminal "
                        "(CI / drill mode)")
    p.add_argument("--no-socket", action="store_true",
                   help="file-drop spool intake only")
    p.set_defaults(func=_cmd_fleet_serve)

    p = fleet_sub.add_parser(
        "submit", help="submit job specs to a fleet server (socket when "
                       "live, spool drop files otherwise)")
    p.add_argument("specfile",
                   help="JSON: a spec, a {spec, priority, owner, "
                        "deadline} envelope, or a list of either")
    p.add_argument("--workdir", default="fleet-server",
                   help="the server's root")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (applied to every spec)")
    p.add_argument("--owner", default="",
                   help="fair-share bucket (applied to every spec)")
    p.add_argument("--deadline", type=float,
                   help="cancel after this many wall seconds")
    p.add_argument("--spool", action="store_true",
                   help="always use the file-drop spool, skip the socket")
    p.set_defaults(func=_cmd_fleet_submit)

    p = fleet_sub.add_parser(
        "status", help="server status (socket when live, journal replay "
                       "otherwise)")
    p.add_argument("--workdir", default="fleet-server")
    p.set_defaults(func=_cmd_fleet_status)

    p = fleet_sub.add_parser(
        "drain", help="ask a running server to drain and exit cleanly")
    p.add_argument("--workdir", default="fleet-server")
    p.set_defaults(func=_cmd_fleet_drain)

    p = fleet_sub.add_parser(
        "gc", help="apply retention caps: result-cache LRU eviction, "
                   "quarantined entries, stale staging, triage bundles")
    p.add_argument("--cache", metavar="DIR",
                   help="result cache root to collect")
    p.add_argument("--max-entries", type=int,
                   help="keep at most this many cache entries (LRU)")
    p.add_argument("--max-bytes", type=int,
                   help="keep at most this many cache bytes (LRU)")
    p.add_argument("--stale-staging-age", type=float, default=3600.0,
                   help="remove staging dirs older than this (seconds)")
    p.add_argument("--workdir", metavar="DIR",
                   help="fleet workdir whose triage bundles to cap")
    p.add_argument("--max-bundles", type=int, default=32,
                   help="bundles to keep across the workdir (newest)")
    p.add_argument("--summary", metavar="PATH",
                   help="write the machine-readable GC report as JSON")
    p.set_defaults(func=_cmd_fleet_gc)

    p = sub.add_parser("dse",
                       help="design-space exploration: a topology grid "
                            "through the fleet, reduced to a Pareto "
                            "frontier")
    p.add_argument("--clusters", default="2,4",
                   help="comma-separated GPU cluster counts (default: 2,4)")
    p.add_argument("--stacks", default="1,2",
                   help="comma-separated memory stack counts (default: 1,2)")
    p.add_argument("--rates", default="1333,667",
                   help="comma-separated DRAM data rates in Mb/s "
                        "(default: 1333,667)")
    p.add_argument("--cpus", default="sym",
                   help="comma-separated CPU mixes: sym, biglittle "
                        "(default: sym)")
    p.add_argument("--model", default="cube",
                   help="workload model evaluated at every point")
    p.add_argument("--frames", type=int, default=2,
                   help="frames rendered per point")
    p.add_argument("--seed", type=int, default=7, help="RNG seed")
    p.add_argument("--ffwd", type=int, default=0, metavar="K",
                   help="fast-forward every point's first K frames "
                        "functionally before detailed timing")
    p.add_argument("--sample", metavar="D:P[:W]",
                   help="evaluate every point with periodic sampling "
                        "(extrapolated metrics carry error bars)")
    p.add_argument("--workers", type=int, default=2,
                   help="fleet worker pool size")
    p.add_argument("--budget-events", type=int, default=5_000_000,
                   help="per-attempt event budget (hang backstop)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed result cache root")
    p.add_argument("--workdir", default="dse-work",
                   help="per-job scratch space")
    p.add_argument("--out", metavar="PATH",
                   help="write the machine-readable DSE report as JSON")
    p.add_argument("--expect-cached", action="store_true",
                   help="also fail unless every point was served from "
                        "the cache (CI determinism check)")
    p.set_defaults(func=_cmd_dse)

    p = sub.add_parser("dfsl", help="run DFSL on a workload")
    p.add_argument("workload", help="W1..W6 or a model name")
    p.add_argument("--frames", type=int, default=12)
    p.add_argument("--max-wt", type=int, default=6)
    p.add_argument("--run-frames", type=int, default=20)
    p.set_defaults(func=_cmd_dfsl)

    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Back-compat: `repro fleet --seeds ...` (the historic one-shot form)
    # means `repro fleet sweep --seeds ...`.
    if argv and argv[0] == "fleet" \
            and (len(argv) == 1 or argv[1].startswith("-")):
        argv.insert(1, "sweep")
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
