"""Conformance to the paper's configuration tables (3, 4, 5, 7).

These tests pin the *documented* configurations — the values the paper
prints — independent of the scaled variants the experiment harness uses.
"""

import pytest

from repro.common.config import (
    DRAMConfig,
    case_study1_config,
    case_study2_gpu_config,
)
from repro.memory.address_map import BASELINE_MAPPING, IP_CHANNEL_MAPPING
from repro.memory.dash import DashConfig


class TestTable3DashConfig:
    def test_defaults_match_table3(self):
        config = DashConfig()
        assert config.scheduling_unit == 1000
        assert config.switching_unit == 500
        assert config.quantum == 1_000_000
        assert config.cluster_threshold == 0.15
        assert config.emergent_threshold_default == 0.8
        assert config.emergent_threshold_gpu == 0.9


class TestTable4AddressMappings:
    def test_baseline_mapping_order(self):
        assert BASELINE_MAPPING.order == ("row", "rank", "bank", "column",
                                          "channel")

    def test_ip_channel_mapping_order(self):
        assert IP_CHANNEL_MAPPING.order == ("row", "column", "rank", "bank",
                                            "channel")

    def test_two_channels_default(self):
        assert DRAMConfig().channels == 2


class TestTable5CaseStudy1System:
    def test_system_configuration(self):
        config = case_study1_config()
        assert config.cpu.num_cores == 4
        assert config.cpu.clock_ghz == 2.0
        assert config.gpu.num_clusters == 4           # 4 SIMT cores
        assert config.gpu.core.warp_size == 32        # 32 lanes (warp size)
        assert config.gpu.clock_ghz == 0.95           # 950 MHz
        assert config.gpu.core.l1d.size_bytes == 16 * 1024
        assert config.gpu.core.l1t.size_bytes == 64 * 1024
        assert config.gpu.core.l1z.size_bytes == 32 * 1024
        assert config.gpu.l2.size_bytes == 128 * 1024
        assert config.dram.channels == 2
        assert config.dram.data_rate_mbps == 1333
        assert config.framebuffer_width == 1024
        assert config.framebuffer_height == 768
        assert config.display.refresh_fps == 60

    def test_cache_line_sizes(self):
        config = case_study1_config()
        for cache in (config.gpu.core.l1d, config.gpu.core.l1t,
                      config.gpu.core.l1z, config.gpu.l2):
            assert cache.line_bytes == 128


class TestTable7CaseStudy2GPU:
    def test_gpu_configuration(self):
        config = case_study2_gpu_config()
        assert config.num_clusters == 6               # 6 SIMT clusters
        assert config.num_clusters * config.core.warp_size == 192
        assert config.clock_ghz == 1.0
        assert config.core.max_threads == 2048
        assert config.core.registers == 65536
        assert config.core.l1d.size_bytes == 32 * 1024
        assert config.core.l1d.ways == 8
        assert config.core.l1t.size_bytes == 48 * 1024
        assert config.core.l1t.ways == 24
        assert config.core.l1z.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.ways == 32

    def test_raster_parameters(self):
        raster = case_study2_gpu_config().raster
        assert raster.raster_tile_px == 4             # 4x4-pixel raster tile
        assert raster.tc_tile_raster_tiles == 2       # TC tile = 2x2
        assert raster.tc_engines_per_cluster == 2
        assert raster.tc_bins_per_engine == 4
        assert raster.coarse_tiles_per_cycle == 1
        assert raster.fine_tiles_per_cycle == 1
        assert raster.hiz_tiles_per_cycle == 1

    def test_dram(self):
        # 4-channel LPDDR3-1600 per Table 7.
        config = DRAMConfig(channels=4, data_rate_mbps=1600)
        assert config.channels == 4
        assert config.data_rate_mbps == 1600


@pytest.mark.slow
@pytest.mark.full_system
class TestTracingDeterminism:
    """Tracing is a pure observer: with a tracer attached, a run must
    reproduce the golden paper-table stats, the framebuffer CRC and the
    exact event count captured on the seed tree (the overhead contract of
    DESIGN.md §8)."""

    def test_traced_run_matches_the_golden_pins(self):
        import zlib

        from repro.harness.scenes import SceneSession
        from repro.soc.soc import EmeraldSoC
        from repro.trace import TraceConfig, validate_trace
        from tests.health.full_system import HEIGHT, WIDTH, tiny_config
        from tests.soc.test_port_fabric import GOLDEN

        session = SceneSession("cube", WIDTH, HEIGHT)
        config = tiny_config(num_frames=2)
        config.trace = TraceConfig()
        soc = EmeraldSoC(config, session.frame, session.framebuffer_address)
        results = soc.run()

        assert results.end_tick == GOLDEN["end_tick"]
        assert results.mean_gpu_time == GOLDEN["mean_gpu_time"]
        assert results.mean_total_time == GOLDEN["mean_total_time"]
        assert results.dram_bytes == GOLDEN["dram_bytes"]
        assert results.row_hit_rate == GOLDEN["row_hit_rate"]
        assert results.bytes_per_activation == GOLDEN["bytes_per_activation"]
        assert results.display_requests == GOLDEN["display_requests"]
        assert results.display_completed == GOLDEN["display_completed"]
        assert results.display_aborted == GOLDEN["display_aborted"]
        assert results.mean_latency == GOLDEN["mean_latency"]
        assert zlib.crc32(soc.gpu.fb.color.tobytes()) == GOLDEN["fb_crc"]
        assert soc.events.events_fired == GOLDEN["events_fired"]

        # The recorded trace is itself well-formed, and its per-owner
        # fired counts account for every event of the golden total.
        trace = soc.tracer.to_dict()
        warnings = validate_trace(trace)
        assert all("async" in w for w in warnings)
        assert (sum(trace["otherData"]["events_fired"].values())
                == GOLDEN["events_fired"])


@pytest.mark.slow
@pytest.mark.full_system
class TestSanitizerDeterminism:
    """The sanitizer is a pure observer: armed but quiet, a run must
    reproduce the golden paper-table stats, the framebuffer CRC and the
    exact event count bit-identically (the overhead contract of
    DESIGN.md §9 — zero scheduled events, zero RNG draws)."""

    def test_armed_quiet_run_matches_the_golden_pins(self):
        import zlib

        from repro.harness.scenes import SceneSession
        from repro.sanitize import SanitizeConfig
        from repro.soc.soc import EmeraldSoC
        from tests.health.full_system import HEIGHT, WIDTH, tiny_config
        from tests.soc.test_port_fabric import GOLDEN

        session = SceneSession("cube", WIDTH, HEIGHT)
        config = tiny_config(num_frames=2, sanitize=SanitizeConfig())
        soc = EmeraldSoC(config, session.frame, session.framebuffer_address)
        results = soc.run()

        assert results.end_tick == GOLDEN["end_tick"]
        assert results.mean_gpu_time == GOLDEN["mean_gpu_time"]
        assert results.mean_total_time == GOLDEN["mean_total_time"]
        assert results.dram_bytes == GOLDEN["dram_bytes"]
        assert results.row_hit_rate == GOLDEN["row_hit_rate"]
        assert results.bytes_per_activation == GOLDEN["bytes_per_activation"]
        assert results.display_requests == GOLDEN["display_requests"]
        assert results.display_completed == GOLDEN["display_completed"]
        assert results.display_aborted == GOLDEN["display_aborted"]
        assert results.mean_latency == GOLDEN["mean_latency"]
        assert zlib.crc32(soc.gpu.fb.color.tobytes()) == GOLDEN["fb_crc"]
        assert soc.events.events_fired == GOLDEN["events_fired"]

        # The sanitizer genuinely watched the run — and found it healthy.
        assert results.sanitizer_checks > 0
        assert results.sanitizer_violations == 0
        assert (soc.sanitizer.stats.counter("sweeps").value
                == results.sanitizer_checks)
