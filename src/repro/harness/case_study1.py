"""Case study I: memory organization & scheduling on a mobile SoC (§5).

Full-system runs of the M1-M4 Android-app models under the four Table 6
memory configurations (BAS / DCB / DTB / HMC), in the regular-load
(1333 Mb/s LPDDR3) and high-load (133 Mb/s) scenarios, producing the data
behind Figs. 9-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import (
    DRAMConfig,
    GPUConfig,
    SIMTCoreConfig,
    CacheConfig,
)
from repro.harness.scenes import CASE_STUDY1_SCENES, SceneSession
from repro.memory.builders import MEMORY_CONFIG_NAMES
from repro.soc.soc import EmeraldSoC, SoCResults, SoCRunConfig

MODELS = tuple(CASE_STUDY1_SCENES)           # M1..M4
CONFIGS = MEMORY_CONFIG_NAMES                # BAS, DCB, DTB, HMC
LOADS = ("regular", "high")


def _cs1_gpu() -> GPUConfig:
    """Table 5's GPU (4 SIMT cores @ 0.95 GHz) with resolution-scaled L1s.

    Same scaling rationale as case study II (see
    :func:`repro.harness.case_study2._scaled_cs2_gpu`).
    """
    core = SIMTCoreConfig(
        l1d=CacheConfig(4 * 1024, ways=4),
        l1t=CacheConfig(8 * 1024, ways=4),
        l1z=CacheConfig(4 * 1024, ways=4),
        l1c=CacheConfig(4 * 1024, ways=4),
    )
    return GPUConfig(num_clusters=4, core=core,
                     l2=CacheConfig(32 * 1024, ways=8, hit_latency=20),
                     clock_ghz=0.95)


@dataclass
class CS1Config:
    """Experiment scale knobs for case study I."""

    width: int = 128
    height: int = 96
    num_frames: int = 5                  # 1 warmup + 4 profiled (Table 6)
    warmup_frames: int = 1
    texture_size: int = 128
    gpu_frame_period_ticks: int = 220_000
    display_period_ticks: int = 110_000
    cpu_work_per_frame: int = 400
    cpu_fixed_ticks: int = 25_000
    # DRAM rates: the paper runs 1333 Mb/s (regular) and a 133 Mb/s
    # stressor (high).  Our workload is ~50x smaller than 1024x768 frames,
    # so the rates are rescaled to preserve *utilization*, the quantity the
    # scheduling dynamics depend on (see EXPERIMENTS.md).
    regular_rate_mbps: int = 800
    high_rate_mbps: int = 400
    channels: int = 2
    # Bounded-bandwidth NoC (None = unbounded; see SoCRunConfig).
    noc_capacity: Optional[int] = None
    noc_bytes_per_cycle: Optional[float] = None
    seed: int = 7


def make_cs1_setup(model: str, config_name: str, load: str = "regular",
                   config: Optional[CS1Config] = None,
                   health=None, trace=None, sanitize=None):
    """(run config, session factory) for one case-study-I grid cell.

    The fast-forward and sampling drivers (:mod:`repro.sampling`) need
    the pieces rather than an assembled SoC: they build fresh
    :class:`~repro.harness.scenes.SceneSession`\\ s at every mode switch
    (the replay contract — both modes pull identical frame streams from
    identical fresh sessions) and construct the simulators themselves.
    """
    config = config or CS1Config()
    if load not in LOADS:
        raise ValueError(f"load must be one of {LOADS}, got {load!r}")
    model_name = CASE_STUDY1_SCENES.get(model, model)

    def session_factory() -> SceneSession:
        return SceneSession(model_name, config.width, config.height,
                            texture_size=config.texture_size)

    rate = (config.regular_rate_mbps if load == "regular"
            else config.high_rate_mbps)
    run_config = SoCRunConfig(
        width=config.width, height=config.height,
        num_frames=config.num_frames,
        memory_config=config_name,
        dram=DRAMConfig(channels=config.channels, data_rate_mbps=rate),
        gpu=_cs1_gpu(),
        gpu_frame_period_ticks=config.gpu_frame_period_ticks,
        display_period_ticks=config.display_period_ticks,
        cpu_work_per_frame=config.cpu_work_per_frame,
        cpu_fixed_ticks=config.cpu_fixed_ticks,
        noc_capacity=config.noc_capacity,
        noc_bytes_per_cycle=config.noc_bytes_per_cycle,
        seed=config.seed,
        health=health,
        trace=trace,
        sanitize=sanitize,
    )
    return run_config, session_factory


def make_cs1_soc(model: str, config_name: str, load: str = "regular",
                 config: Optional[CS1Config] = None,
                 health=None, trace=None, sanitize=None) -> EmeraldSoC:
    """Assemble (but do not run) the case-study-I SoC for one grid cell.

    Split out of :func:`run_cs1` so callers that need the live system —
    the benchmark harness reads ``soc.events.events_fired`` and hashes
    ``soc.gpu.fb`` after the run — can hold the SoC object instead of
    just the reduced :class:`SoCResults`.
    """
    run_config, session_factory = make_cs1_setup(
        model, config_name, load, config,
        health=health, trace=trace, sanitize=sanitize)
    session = session_factory()
    return EmeraldSoC(run_config, session.frame, session.framebuffer_address)


def run_cs1(model: str, config_name: str, load: str = "regular",
            config: Optional[CS1Config] = None,
            health=None, stats_path: Optional[str] = None,
            trace=None, sanitize=None) -> SoCResults:
    """One full-system run; returns everything Figs. 9-14 need.

    ``health`` (a :class:`repro.health.HealthConfig`) arms the watchdog /
    fault-injection / checkpointing subsystem; ``None`` keeps the run
    bit-identical to a health-free build.  ``stats_path`` dumps every
    component's statistics to one JSON file after the run.  ``trace`` (a
    :class:`repro.trace.TraceConfig`) records the run as Chrome-trace JSON
    and/or reduces it into ``results.profile``; ``sanitize`` (a
    :class:`repro.sanitize.SanitizeConfig`) arms runtime invariant
    checking — like tracing, neither changes the run's event schedule.
    """
    soc = make_cs1_soc(model, config_name, load, config,
                       health=health, trace=trace, sanitize=sanitize)
    results = soc.run()
    if stats_path is not None:
        from repro.harness.report import write_stats_json
        write_stats_json(soc.stat_groups(), stats_path,
                         topology=soc.topology)
    return results


@dataclass
class CS1Sweep:
    """Results of a (models x configs) sweep under one load."""

    load: str
    results: dict[tuple[str, str], SoCResults] = field(default_factory=dict)

    def get(self, model: str, config_name: str) -> SoCResults:
        return self.results[(model, config_name)]

    def normalized_gpu_time(self) -> dict[str, dict[str, float]]:
        """Fig. 9 / Fig. 12 right: GPU frame time normalized to BAS."""
        out: dict[str, dict[str, float]] = {}
        for model in sorted({m for m, _ in self.results}):
            base = self.get(model, "BAS").mean_gpu_time
            out[model] = {
                name: self.get(model, name).mean_gpu_time / base
                for name in sorted({c for _, c in self.results})
            }
        return out

    def normalized_total_time(self) -> dict[str, dict[str, float]]:
        """Fig. 12 left: total frame time normalized to BAS."""
        out: dict[str, dict[str, float]] = {}
        for model in sorted({m for m, _ in self.results}):
            base = self.get(model, "BAS").mean_total_time
            out[model] = {
                name: self.get(model, name).mean_total_time / base
                for name in sorted({c for _, c in self.results})
            }
        return out

    def normalized_display_service(self) -> dict[str, dict[str, float]]:
        """Fig. 13: display requests serviced relative to BAS."""
        out: dict[str, dict[str, float]] = {}
        for model in sorted({m for m, _ in self.results}):
            base = self.get(model, "BAS").display_requests
            out[model] = {
                name: self.get(model, name).display_requests / max(base, 1)
                for name in sorted({c for _, c in self.results})
            }
        return out

    def row_locality_vs_bas(self) -> dict[str, dict[str, float]]:
        """Fig. 11: HMC row-hit rate and bytes/activation relative to BAS."""
        out: dict[str, dict[str, float]] = {}
        for model in sorted({m for m, _ in self.results}):
            bas = self.get(model, "BAS")
            hmc = self.get(model, "HMC")
            out[model] = {
                "row_hit_rate": (hmc.row_hit_rate / bas.row_hit_rate
                                 if bas.row_hit_rate else 0.0),
                "bytes_per_activation": (
                    hmc.bytes_per_activation / bas.bytes_per_activation
                    if bas.bytes_per_activation else 0.0),
            }
        return out


def sweep(models=MODELS, configs=CONFIGS, load: str = "regular",
          config: Optional[CS1Config] = None) -> CS1Sweep:
    """Run the (models x configs) grid under one load scenario."""
    result = CS1Sweep(load=load)
    for model in models:
        for name in configs:
            result.results[(model, name)] = run_cs1(model, name, load,
                                                    config)
    return result
