"""Tests for the system NoC adapter and checkpoint edge cases."""

import json

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.memory.builders import build_baseline_memory
from repro.memory.request import MemRequest, SourceType
from repro.soc.checkpoint import (CheckpointError, GraphicsCheckpoint,
                                  capture)
from repro.soc.noc import SystemNoC


class TestSystemNoC:
    def test_adds_latency(self):
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=25)
        done = []
        noc.submit(MemRequest(address=0, size=128, write=False,
                              source=SourceType.CPU,
                              callback=lambda r: done.append(r)))
        events.run()
        assert len(done) == 1
        # issue_time is stamped by the memory system after the NoC hop.
        assert done[0].issue_time >= 25

    def test_cache_port_interface(self):
        """The GPU L2 talks to the NoC through the cache access API."""
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=5)
        times = []
        noc.access(0, 128, False, lambda: times.append(events.now))
        events.run()
        assert times and times[0] > 5
        assert memory.total_bytes(SourceType.GPU) == 128

    def test_write_without_callback(self):
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=5)
        noc.access(0, 128, True, None)
        events.run()
        assert memory.total_bytes(SourceType.GPU) == 128

    def test_access_passes_completed_request_through(self):
        """A one-argument callback receives the completed MemRequest, so
        latency and fault markers flow back to the issuer."""
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        noc = SystemNoC(events, memory, latency=5)
        seen = []
        noc.access(0x400, 128, False, lambda request: seen.append(request))
        events.run()
        assert len(seen) == 1
        request = seen[0]
        assert isinstance(request, MemRequest)
        assert request.address == 0x400
        assert request.complete_time is not None
        assert request.complete_time > request.issue_time


def _valid_doc() -> dict:
    doc = json.loads(capture([], tick=123, frame_index=2).to_json())
    # Schema-validation tests below mutate one field at a time; drop the
    # integrity CRC so the mutation reaches the validator under test
    # instead of tripping the corruption check first (covered separately
    # by TestCheckpointCorruption).
    doc.pop("crc")
    return doc


class TestCheckpointValidation:
    """from_json must reject damaged snapshots, naming the bad field."""

    def test_not_json(self):
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json("{truncated")
        assert excinfo.value.field == "$"

    def test_not_an_object(self):
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json("[1, 2]")
        assert excinfo.value.field == "$"

    def test_wrong_version(self):
        doc = _valid_doc()
        doc["version"] = 99
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "version"

    @pytest.mark.parametrize("key", ["tick", "frame_index"])
    def test_missing_int_field(self, key):
        doc = _valid_doc()
        del doc[key]
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == key

    @pytest.mark.parametrize("bad", ["12", 3.5, True, None])
    def test_non_integer_tick(self, bad):
        doc = _valid_doc()
        doc["tick"] = bad
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "tick"

    def test_negative_frame_index(self):
        doc = _valid_doc()
        doc["frame_index"] = -1
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "frame_index"
        assert "frame_index" in str(excinfo.value)

    def test_missing_trace(self):
        doc = _valid_doc()
        del doc["trace"]
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "trace"

    def test_trace_frames_not_a_list(self):
        doc = _valid_doc()
        doc["trace"]["frames"] = {"oops": 1}
        with pytest.raises(CheckpointError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "trace.frames"

    def test_error_is_a_value_error(self):
        """Callers catching ValueError keep working."""
        with pytest.raises(ValueError):
            GraphicsCheckpoint.from_json("null")


class TestCheckpointCorruption:
    """The integrity layer: truncation and bit rot die typed, with CRC
    detail, before schema validation even runs."""

    def test_truncated_snapshot_is_corruption_not_schema(self):
        from repro.soc.checkpoint import CheckpointCorruptError
        text = capture([], tick=1, frame_index=1).to_json()
        with pytest.raises(CheckpointCorruptError) as excinfo:
            GraphicsCheckpoint.from_json(text[: len(text) // 2])
        assert excinfo.value.field == "$"
        assert "truncated" in str(excinfo.value)
        assert excinfo.value.expected_crc is None    # no CRC readable

    def test_bit_rot_trips_the_crc_with_both_digests(self):
        from repro.soc.checkpoint import (CheckpointCorruptError,
                                          _payload_crc)
        doc = json.loads(capture([], tick=123, frame_index=2).to_json())
        doc["tick"] = 124                            # one flipped value
        with pytest.raises(CheckpointCorruptError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "crc"
        assert excinfo.value.expected_crc == doc["crc"]
        assert excinfo.value.actual_crc == _payload_crc(doc)
        # The message carries both digests for the post-mortem.
        assert f"0x{doc['crc']:08x}" in str(excinfo.value)

    def test_non_integer_crc_is_corruption(self):
        from repro.soc.checkpoint import CheckpointCorruptError
        doc = json.loads(capture([], tick=1, frame_index=1).to_json())
        doc["crc"] = "abc"
        with pytest.raises(CheckpointCorruptError) as excinfo:
            GraphicsCheckpoint.from_json(json.dumps(doc))
        assert excinfo.value.field == "crc"

    def test_pre_crc_snapshots_still_load(self):
        """Snapshots written before the CRC existed have no field; they
        skip the integrity check and rely on schema validation."""
        doc = json.loads(capture([], tick=7, frame_index=1).to_json())
        doc.pop("crc")
        restored = GraphicsCheckpoint.from_json(json.dumps(doc))
        assert restored.tick == 7

    def test_corruption_is_a_checkpoint_error(self):
        """Callers catching CheckpointError (the recovery path) also see
        corruption — the subclass only adds detail."""
        from repro.soc.checkpoint import CheckpointCorruptError
        assert issubclass(CheckpointCorruptError, CheckpointError)

    def test_crc_is_format_independent(self):
        """Reformatting (indentation, key order) does not trip the CRC —
        it digests the canonical serialization."""
        doc = json.loads(capture([], tick=9, frame_index=1).to_json())
        reformatted = json.dumps(doc, indent=2, sort_keys=True)
        assert GraphicsCheckpoint.from_json(reformatted).tick == 9


class TestCheckpointRoundTrip:
    def test_round_trip_preserves_fields(self):
        from repro.harness.scenes import SceneSession
        session = SceneSession("cube", 32, 24)
        original = capture([session.frame(0), session.frame(1)],
                           tick=5_000, frame_index=2)
        restored = GraphicsCheckpoint.from_json(original.to_json())
        assert restored.tick == original.tick
        assert restored.frame_index == original.frame_index
        assert len(restored.restore_frames()) == 2

    def test_round_trip_replays_identical_draws(self):
        from repro.harness.scenes import SceneSession
        session = SceneSession("cube", 32, 24)
        original = capture([session.frame(0)], tick=1, frame_index=1)
        [frame] = GraphicsCheckpoint.from_json(
            original.to_json()).restore_frames()
        reference = session.frame(0)
        assert len(frame.draw_calls) == len(reference.draw_calls)
        assert frame.num_primitives == reference.num_primitives
        assert frame.color_base == reference.color_base


class TestDisplayDashRegistration:
    def test_display_without_dash_runs(self):
        from repro.soc.display import DisplayController
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        display = DisplayController(events, memory.submit,
                                    framebuffer_address=0,
                                    frame_bytes=16 * 16 * 4,
                                    period_ticks=10_000, dash_state=None)
        display.start()
        events.run_until(25_000)
        display.stop()
        events.run()
        assert display.frames_completed >= 2
