"""The shader toolchain: ISA, assembler, compiler and SIMT interpreter.

This package is the reproduction's TGSItoPTX analog (DESIGN.md §1): shader
sources written in a small GLSL-like language compile to a register-based,
PTX-like ISA extended with graphics instructions (texture sampling, depth
read/write, framebuffer blend, discard), exactly as Emerald extends
GPGPU-Sim's PTX.  The interpreter executes a warp in lock-step with a SIMT
reconvergence stack and records the instruction/memory trace the GPU timing
model replays.
"""

from repro.shader.isa import Opcode, Instruction, Reg, Pred, Imm, MemSpace
from repro.shader.program import Program, assemble
from repro.shader.compiler import compile_shader
from repro.shader.interpreter import WarpInterpreter, ExecEnv

__all__ = [
    "Opcode",
    "Instruction",
    "Reg",
    "Pred",
    "Imm",
    "MemSpace",
    "Program",
    "assemble",
    "compile_shader",
    "WarpInterpreter",
    "ExecEnv",
]
