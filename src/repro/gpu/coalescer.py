"""Warp memory-access coalescing (Table 2's coalescing logic).

Lane-level accesses from one warp instruction are merged into cache-line-
sized transactions per memory space — the classic GPGPU coalescer.  A warp
reading 32 consecutive floats produces one 128B transaction; a scattered
read produces up to 32.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shader.interpreter import MemAccess
from repro.shader.isa import MemSpace


@dataclass(frozen=True, slots=True)
class CoalescedAccess:
    """One line-aligned transaction produced by the coalescer."""

    space: MemSpace
    line_address: int
    write: bool


def coalesce(accesses: list[MemAccess], line_bytes: int = 128) -> list[CoalescedAccess]:
    """Merge lane accesses into unique line transactions.

    Reads and writes to the same line stay distinct transactions (a write
    transaction also fetches the line under write-allocate, so merging them
    would hide traffic).
    """
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    seen: dict[tuple[MemSpace, int, bool], None] = {}
    for access in accesses:
        address = access.address
        first_line = address // line_bytes
        last_line = (address + max(access.size, 1) - 1) // line_bytes
        if first_line == last_line:
            # Hot case: the access fits one line (re-assignment of an
            # existing key keeps the dict's first-insertion order).
            seen[(access.space, first_line * line_bytes, access.write)] = None
        else:
            for line in range(first_line, last_line + 1):
                seen[(access.space, line * line_bytes, access.write)] = None
    return [CoalescedAccess(space, addr, write)
            for (space, addr, write) in seen]


def coalescing_ratio(accesses: list[MemAccess], line_bytes: int = 128) -> float:
    """Lane accesses per transaction (32 = perfectly coalesced warp)."""
    if not accesses:
        return 0.0
    return len(accesses) / len(coalesce(accesses, line_bytes))
