"""Checkpoint round-trip verification.

A checkpoint is only worth taking if it can actually resurrect the run,
so the sanitizer exercises every snapshot the moment it is taken:
serialize to JSON, parse it back through the strict validator, replay the
restored draw-call trace into a shadow GL context, and diff the shadow
against a replay of the original — scalar state (tick, frame index, RNG
streams), frame/draw counts, and a CRC over the canonical trace encoding.
Any divergence raises :class:`~repro.sanitize.violations.
CheckpointMismatchViolation` naming the first field that differs, at the
moment the corrupt snapshot is produced rather than hours later when a
crashed run tries to resume from it.
"""

from __future__ import annotations

import zlib

from repro.gl.trace import TraceRecorder
from repro.soc.checkpoint import CheckpointError, GraphicsCheckpoint
from repro.sanitize.violations import CheckpointMismatchViolation


def trace_crc(trace_json: str) -> int:
    """CRC32 over a trace's canonical re-encoding.

    Re-recording through :class:`TraceRecorder` canonicalizes field order
    and defaults, so two traces describing the same draw calls CRC equal
    even if their JSON strings differ cosmetically.
    """
    from repro.gl.trace import replay

    recorder = TraceRecorder()
    for frame in replay(trace_json):
        recorder.record_frame(frame)
    return zlib.crc32(recorder.to_json().encode())


def verify_roundtrip(checkpoint: GraphicsCheckpoint,
                     tick: int = 0) -> dict:
    """Round-trip ``checkpoint`` through serialize/restore/shadow-replay.

    Returns a summary dict (``frames``, ``draws``, ``crc``) on success;
    raises :class:`CheckpointMismatchViolation` on any divergence.
    ``tick`` stamps the violation with the simulation time of the check.
    """

    def fail(message: str, **details) -> None:
        raise CheckpointMismatchViolation(
            message, tick=tick, owner="checkpoint",
            details={"frame_index": checkpoint.frame_index, **details})

    try:
        encoded = checkpoint.to_json()
        restored = GraphicsCheckpoint.from_json(encoded)
    except CheckpointError as exc:
        fail(f"snapshot does not survive its own validator: {exc}",
             field=exc.field)

    for field in ("tick", "frame_index", "rng"):
        ours, theirs = getattr(checkpoint, field), getattr(restored, field)
        if ours != theirs:
            fail(f"{field} changed across the round trip "
                 f"({ours!r} -> {theirs!r})", field=field)

    try:
        shadow = restored.restore_frames()
    except Exception as exc:
        fail(f"restored trace fails replay: {exc}", field="trace")
    original = checkpoint.restore_frames()
    if len(shadow) != len(original):
        fail(f"frame count changed across the round trip "
             f"({len(original)} -> {len(shadow)})", field="trace.frames",
             original=len(original), restored=len(shadow))

    crc_original = trace_crc(checkpoint.trace_json)
    crc_shadow = trace_crc(restored.trace_json)
    if crc_original != crc_shadow:
        fail(f"trace CRC mismatch after round trip "
             f"(0x{crc_original:08x} -> 0x{crc_shadow:08x})",
             field="trace", original_crc=crc_original,
             restored_crc=crc_shadow)

    draws = sum(len(frame.draw_calls) for frame in shadow)
    return {"frames": len(shadow), "draws": draws, "crc": crc_original}
