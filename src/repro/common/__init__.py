"""Shared simulation infrastructure: event kernel, statistics, configuration.

This package is the gem5-analog substrate of the reproduction: a
discrete-event kernel (:mod:`repro.common.events`), statistics machinery
(:mod:`repro.common.stats`) and the configuration presets used by both case
studies (:mod:`repro.common.config`).
"""

from repro.common.events import EventQueue, Event
from repro.common.stats import (
    Counter,
    RateStat,
    TimeSeries,
    Histogram,
    StatGroup,
)

__all__ = [
    "EventQueue",
    "Event",
    "Counter",
    "RateStat",
    "TimeSeries",
    "Histogram",
    "StatGroup",
]
