"""Tracing a bounded-NoC run: completes, stays bit-identical, records
the backpressure (regression for the tap-retry livelock)."""

import zlib

import pytest

from repro.harness.scenes import SceneSession
from repro.soc.soc import EmeraldSoC
from repro.trace import TraceConfig, validate_trace
from tests.health.full_system import HEIGHT, WIDTH, tiny_config

pytestmark = [pytest.mark.slow, pytest.mark.full_system]


def _bounded_soc(traced):
    session = SceneSession("cube", WIDTH, HEIGHT)
    config = tiny_config(num_frames=2)
    config.noc_capacity = 32
    config.noc_bytes_per_cycle = 4.0
    if traced:
        config.trace = TraceConfig()
    return EmeraldSoC(config, session.frame, session.framebuffer_address)


def test_traced_bounded_run_is_bit_identical_to_untraced():
    base = _bounded_soc(traced=False)
    base_results = base.run()
    traced = _bounded_soc(traced=True)
    traced_results = traced.run()

    assert traced_results.end_tick == base_results.end_tick
    assert traced.events.events_fired == base.events.events_fired
    assert (zlib.crc32(traced.gpu.fb.color.tobytes())
            == zlib.crc32(base.gpu.fb.color.tobytes()))
    assert traced_results.mean_latency == base_results.mean_latency

    trace = traced.tracer.to_dict()
    warnings = validate_trace(trace)
    assert all("async" in w for w in warnings)
    # Backpressure is visible: every reject ("busy") has a matching wake.
    instants = [r["name"] for r in trace["traceEvents"] if r["ph"] == "i"]
    assert instants.count("busy") > 0
    assert instants.count("busy") == instants.count("retry")
