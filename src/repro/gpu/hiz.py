"""Hierarchical-Z: a low-resolution on-chip depth buffer (pipeline stage J).

Keeps one conservative maximum depth per raster tile.  A fragment block
whose minimum depth exceeds the stored maximum for its tile cannot pass a
LESS/LEQUAL depth test anywhere in the tile and is culled before fragment
shading.  The buffer is updated from the real depth buffer after each TC
tile finishes shading (conservative in between).

Hi-Z engages only for depth functions where a max-buffer is conservative
(LESS/LEQUAL) and when the shader cannot override depth (no discard, no
gl_FragDepth) — otherwise culling would be unsound.
"""

from __future__ import annotations

import numpy as np

from repro.gl.state import DepthFunc, GLState
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.raster import FragmentBlock
from repro.shader.program import Program


class HiZBuffer:
    """Per-raster-tile max-depth buffer for one framebuffer."""

    def __init__(self, width: int, height: int, raster_tile_px: int = 4) -> None:
        self.raster_tile_px = raster_tile_px
        self.cols = (width + raster_tile_px - 1) // raster_tile_px
        self.rows = (height + raster_tile_px - 1) // raster_tile_px
        self.max_depth = np.ones((self.rows, self.cols))

    def clear(self, depth: float = 1.0) -> None:
        self.max_depth[:] = depth

    def applicable(self, state: GLState, program: Program) -> bool:
        """Can Hi-Z culling be used for this draw state/shader?"""
        if not state.depth_test:
            return False
        if state.depth_func not in (DepthFunc.LESS, DepthFunc.LEQUAL):
            return False
        if program.has_discard or program.writes_depth:
            return False
        return True

    def test_block(self, block: FragmentBlock) -> bool:
        """True when the block may survive (False = cull whole block)."""
        stored = self.max_depth[block.tile_y, block.tile_x]
        return bool(block.z.min() <= stored)

    def update_from_framebuffer(self, fb: Framebuffer,
                                tiles: set[tuple[int, int]]) -> None:
        """Refresh the max depth of specific raster tiles after shading."""
        t = self.raster_tile_px
        for tile_x, tile_y in tiles:
            x0 = tile_x * t
            y0 = tile_y * t
            region = fb.depth[y0:y0 + t, x0:x0 + t]
            if region.size:
                self.max_depth[tile_y, tile_x] = float(region.max())
