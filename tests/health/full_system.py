"""Shared tiny full-system setup for the health acceptance tests.

Small enough (48x36, 2 clusters) that a full-frame run takes a couple of
seconds, big enough to exercise CPU prepare, GPU render, display scanout,
DRAM and the NoC — the same footprint as ``python -m repro selftest``.
"""

from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.harness.scenes import SceneSession
from repro.soc.soc import EmeraldSoC, SoCRunConfig

WIDTH, HEIGHT = 48, 36


def tiny_config(num_frames=1, health=None, sanitize=None) -> SoCRunConfig:
    return SoCRunConfig(
        width=WIDTH, height=HEIGHT, num_frames=num_frames,
        memory_config="BAS",
        dram=DRAMConfig(channels=2),
        gpu=scaled_gpu(GPUConfig(num_clusters=2)),
        gpu_frame_period_ticks=120_000,
        display_period_ticks=60_000,
        cpu_work_per_frame=40,
        health=health,
        sanitize=sanitize,
    )


def build_soc(num_frames=1, health=None, sanitize=None):
    session = SceneSession("cube", WIDTH, HEIGHT)
    config = tiny_config(num_frames=num_frames, health=health,
                         sanitize=sanitize)
    return EmeraldSoC(config, session.frame, session.framebuffer_address)
