"""The Android-like application/driver layer (paper §4.2 analog).

:class:`RenderLoop` reproduces the frame lifecycle the paper's full-system
mode gets from a real Android app:

1. **CPU prepare** — the app core runs a work quantum (scene update, draw
   call marshaling); its duration depends on the memory service the CPU
   receives — this is the inter-IP dependency trace-based simulation
   misses;
2. **GPU render** — the recorded frame is submitted to the Emerald GPU;
   a driver ticker polls shading progress (fragments shaded vs. the
   previous frame's total — temporal coherence as the estimate) and
   reports it to DASH;
3. **frame pacing** — the next frame starts at the next GPU-frame-period
   boundary, or immediately when already past it (the app dropped below
   its target rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import EventQueue, Ticker
from repro.common.stats import StatGroup
from repro.gl.context import Frame
from repro.gpu.gpu import EmeraldGPU, GPUFrameStats
from repro.memory.dash import DashState
from repro.memory.request import SourceType
from repro.soc.cpu import CPUCore


@dataclass
class FrameRecord:
    """Timing of one application frame."""

    index: int
    start: int
    cpu_done: int = 0
    gpu_done: int = 0
    gpu_stats: Optional[GPUFrameStats] = None

    @property
    def cpu_time(self) -> int:
        return self.cpu_done - self.start

    @property
    def gpu_time(self) -> int:
        return self.gpu_done - self.cpu_done

    @property
    def total_time(self) -> int:
        return self.gpu_done - self.start


class RenderLoop:
    """Drives CPU-prepare -> GPU-render cycles for a fixed frame count."""

    def __init__(self, events: EventQueue, gpu: EmeraldGPU,
                 app_core: CPUCore,
                 frame_source: Callable[[int], Frame],
                 num_frames: int,
                 frame_period_ticks: int,
                 cpu_work_per_frame: int = 200,
                 cpu_fixed_ticks: int = 0,
                 on_phase=None,
                 dash_state: Optional[DashState] = None,
                 progress_poll_ticks: int = 2000,
                 on_finished: Optional[Callable[[], None]] = None,
                 on_frame_done: Optional[Callable[[FrameRecord], None]] = None,
                 start_frame: int = 0) -> None:
        self.events = events
        self.gpu = gpu
        self.app_core = app_core
        self.frame_source = frame_source
        self.num_frames = num_frames
        self.frame_period_ticks = frame_period_ticks
        self.cpu_work_per_frame = cpu_work_per_frame
        self.cpu_fixed_ticks = cpu_fixed_ticks
        self.on_phase = on_phase
        self.dash_state = dash_state
        self.progress_poll_ticks = progress_poll_ticks
        self.on_finished = on_finished
        self.on_frame_done = on_frame_done
        self.stats = StatGroup("app")
        self.records: list[FrameRecord] = []
        # Crash recovery resumes the loop at the checkpointed frame index.
        if not 0 <= start_frame <= num_frames:
            raise ValueError(f"start_frame {start_frame} outside "
                             f"[0, {num_frames}]")
        self._frame_index = start_frame
        self._expected_fragments: Optional[int] = None
        self._gpu_frame_start_fragments = 0
        self._render_start = 0
        self._prev_render_duration: Optional[int] = None
        self._poll = Ticker(events, period=progress_poll_ticks,
                            callback=self._poll_progress)
        self._gpu_busy = False
        self.finished = False

    def start(self) -> None:
        self.events.schedule(0, self._begin_frame)

    # -- frame lifecycle -----------------------------------------------------------

    def _begin_frame(self) -> None:
        if self._frame_index >= self.num_frames:
            self._finish()
            return
        record = FrameRecord(index=self._frame_index, start=self.events.now)
        self.records.append(record)
        tracer = self.events.tracer
        if tracer is not None:
            tracer.begin("app", f"frame{record.index}")
            tracer.begin("app", "cpu_prepare")
        if self.on_phase is not None:
            self.on_phase("prepare")
        # CPU prepare = a compute-only portion (fixed) plus a memory-bound
        # work quantum whose duration depends on the service the CPU gets.
        self.app_core.start_job(
            self.cpu_work_per_frame,
            on_done=lambda: self.events.schedule(
                self.cpu_fixed_ticks, self._cpu_done, record))

    def _cpu_done(self, record: FrameRecord) -> None:
        record.cpu_done = self.events.now
        tracer = self.events.tracer
        if tracer is not None:
            tracer.end("app", "cpu_prepare")
            tracer.begin("app", "gpu_render")
        if self.on_phase is not None:
            self.on_phase("render")
        frame = self.frame_source(record.index)
        self._render_start = self.events.now
        if self.dash_state is not None:
            self.dash_state.start_ip_period(SourceType.GPU, self.events.now)
            if self._expected_fragments is None:
                # No history yet (first frame): the driver reports the GPU
                # on-track rather than letting it look stalled — matching
                # the paper's observation that an IP meeting its deadline
                # stays non-urgent.
                self.dash_state.report_ip_progress(SourceType.GPU, 1.0,
                                                   self.events.now)
        self._gpu_frame_start_fragments = (
            self.gpu.draw_engine.stats.counter("fragments_retired").value)
        self._gpu_busy = True
        self._poll.kick()
        self.gpu.render_frame(
            frame, on_complete=lambda stats: self._gpu_done(record, stats))

    def _poll_progress(self) -> bool:
        if not self._gpu_busy:
            return False
        if self.dash_state is not None and self._expected_fragments:
            # Progress = fragments actually *retired* (dispatched fragments
            # race far ahead of completion and would overstate progress).
            shaded = (self.gpu.draw_engine.stats.counter(
                "fragments_retired").value
                - self._gpu_frame_start_fragments)
            fraction = min(shaded / self._expected_fragments, 1.0)
            # Early-frame grace: fragments lag during vertex processing, so
            # the driver credits pipeline ramp-up while the GPU is on its
            # historical pace (temporal coherence), up to 30%.
            if self._prev_render_duration:
                pace = (self.events.now - self._render_start) / \
                    self._prev_render_duration
                fraction = max(fraction, min(pace, 0.3))
            self.dash_state.report_ip_progress(SourceType.GPU, fraction,
                                               self.events.now)
        return True

    def _gpu_done(self, record: FrameRecord, stats: GPUFrameStats) -> None:
        self._gpu_busy = False
        self._poll.stop()
        record.gpu_done = self.events.now
        record.gpu_stats = stats
        tracer = self.events.tracer
        if tracer is not None:
            tracer.end("app", "gpu_render")
            tracer.end("app", f"frame{record.index}")
        self._expected_fragments = max(stats.fragments, 1)
        self._prev_render_duration = max(record.gpu_time, 1)
        if self.dash_state is not None:
            self.dash_state.report_ip_progress(SourceType.GPU, 1.0,
                                               self.events.now)
        self.stats.counter("frames").add()
        self.stats.histogram("cpu_time").record(record.cpu_time)
        self.stats.histogram("gpu_time").record(record.gpu_time)
        self.stats.histogram("total_time").record(record.total_time)
        self._frame_index += 1
        if self.on_frame_done is not None:
            self.on_frame_done(record)
        # Pace to the GPU frame period (Table 3: 30 FPS app target).
        next_boundary = record.start + self.frame_period_ticks
        delay = max(0, next_boundary - self.events.now)
        if delay == 0:
            self.stats.counter("missed_periods").add()
        self.events.schedule(delay, self._begin_frame)

    def _finish(self) -> None:
        self.finished = True
        if self.on_finished is not None:
            self.on_finished()

    # -- results -----------------------------------------------------------------

    def mean_gpu_time(self, skip: int = 1) -> float:
        times = [r.gpu_time for r in self.records[skip:] if r.gpu_done]
        return sum(times) / len(times) if times else 0.0

    def mean_total_time(self, skip: int = 1) -> float:
        times = [r.total_time for r in self.records[skip:] if r.gpu_done]
        return sum(times) / len(times) if times else 0.0

    def achieved_fps_fraction(self, skip: int = 1) -> float:
        """Fraction of frames that met the frame period."""
        done = [r for r in self.records[skip:] if r.gpu_done]
        if not done:
            return 0.0
        met = sum(1 for r in done if r.total_time <= self.frame_period_ticks)
        return met / len(done)
