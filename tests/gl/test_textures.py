"""Tests for textures: sampling and addressing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gl.textures import (
    BLOCK,
    TEXEL_BYTES,
    Texture2D,
    checkerboard,
    gradient,
    marble,
)


def solid(color, size=8):
    data = np.tile(np.asarray(color, dtype=np.float64), (size, size, 1))
    return Texture2D(data)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Texture2D(np.zeros((4, 4, 3)))

    def test_size_bytes_padded_to_blocks(self):
        t = Texture2D(np.zeros((5, 5, 4)))
        blocks = 2 * 2    # ceil(5/4)^2
        assert t.size_bytes == blocks * BLOCK * BLOCK * TEXEL_BYTES


class TestAddressing:
    def test_block_linear_within_block_is_contiguous(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        addr0 = t.texel_address(0, 0)
        addr1 = t.texel_address(1, 0)
        assert addr1 - addr0 == TEXEL_BYTES

    def test_block_linear_vertical_neighbor_in_same_block(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        # (0,0) and (0,1) are in the same 4x4 block: 4 texels apart.
        assert t.texel_address(0, 1) - t.texel_address(0, 0) == 4 * TEXEL_BYTES

    def test_blocks_are_16_texels_apart(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        assert t.texel_address(4, 0) - t.texel_address(0, 0) == 16 * TEXEL_BYTES

    def test_addresses_unique(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        addrs = {t.texel_address(x, y) for x in range(8) for y in range(8)}
        assert len(addrs) == 64

    def test_out_of_range_clamped(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        assert t.texel_address(-5, 0) == t.texel_address(0, 0)
        assert t.texel_address(100, 0) == t.texel_address(7, 0)

    def test_base_address_offsets(self):
        t = Texture2D(np.zeros((8, 8, 4)))
        t.base_address = 0x1000
        assert t.texel_address(0, 0) == 0x1000


class TestSampling:
    def test_nearest_center_of_texel(self):
        t = gradient(size=4)
        rgba, texels = t.sample_nearest(0.125, 0.125)   # texel (0, 0)
        assert texels == [(0, 0)]
        assert rgba[0] == pytest.approx(0.0)

    def test_nearest_wraps(self):
        t = gradient(size=4)
        a, _ = t.sample_nearest(0.125, 0.125)
        b, _ = t.sample_nearest(1.125, 0.125)
        assert np.allclose(a, b)

    def test_bilinear_solid_texture_is_exact(self):
        t = solid((0.25, 0.5, 0.75, 1.0))
        rgba, footprint = t.sample_bilinear(0.37, 0.61)
        assert np.allclose(rgba, [0.25, 0.5, 0.75, 1.0])
        assert len(footprint[0]) == 4

    def test_bilinear_interpolates_between_texels(self):
        # Two-texel-wide texture: left black, right white.
        data = np.zeros((4, 2, 4))
        data[:, 1, :3] = 1.0
        data[:, :, 3] = 1.0
        t = Texture2D(data)
        # Sample exactly between the two texel centers.
        rgba, _ = t.sample_bilinear(0.5, 0.25)
        assert rgba[0] == pytest.approx(0.5)

    def test_bilinear_vectorized(self):
        t = checkerboard(size=8, squares=2)
        us = np.array([0.1, 0.6, 0.9])
        vs = np.array([0.1, 0.6, 0.9])
        rgba, footprint = t.sample_bilinear(us, vs)
        assert rgba.shape == (3, 4)
        assert len(footprint) == 3

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_bilinear_output_in_range(self, u, v):
        t = checkerboard(size=8, squares=2)
        rgba, _ = t.sample_bilinear(u, v)
        assert np.all(rgba >= 0.0) and np.all(rgba <= 1.0)


class TestProceduralTextures:
    def test_checkerboard_alternates(self):
        t = checkerboard(size=8, squares=2)
        assert not np.allclose(t.data[0, 0], t.data[0, 7])
        assert np.allclose(t.data[0, 0], t.data[7, 7])

    def test_checkerboard_validates(self):
        with pytest.raises(ValueError):
            checkerboard(size=10, squares=3)

    def test_marble_deterministic(self):
        assert np.allclose(marble(seed=3).data, marble(seed=3).data)
        assert not np.allclose(marble(seed=3).data, marble(seed=4).data)

    def test_gradient_ramps(self):
        t = gradient(size=16)
        assert t.data[0, 15, 0] > t.data[0, 0, 0]
        assert t.data[15, 0, 1] > t.data[0, 0, 1]
