"""Periodic checkpointing and crash recovery for full-system runs.

A :class:`CheckpointManager` rides an :class:`~repro.soc.soc.EmeraldSoC`
render loop and snapshots the graphics + loop state every N completed
frames (draw-call trace, simulated tick, app frame counter — the same
checkpoint format as :mod:`repro.soc.checkpoint`).  A run killed mid-frame
resumes from its last snapshot with :func:`resume_run`: the recorded draw
calls are replayed through the functional model to rebuild GL state, the
event clock is advanced to the snapshot tick, and the render loop restarts
at the snapshot's frame index.  Because frame content is a deterministic
function of the frame index, the resumed run renders the same remaining
frames — and the same final framebuffer — as an uninterrupted run.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.common.events import SimulationError
from repro.gl.context import Frame
from repro.soc.checkpoint import (CheckpointTopologyError,
                                  GraphicsCheckpoint, capture)


class PreemptionRequested(SimulationError):
    """A run stopped cooperatively at a checkpoint boundary.

    Raised by :class:`CheckpointManager` immediately *after* a snapshot is
    taken (and persisted, when a path is configured), so the interrupted
    run can always be resumed from the snapshot it just wrote.  This is a
    control-flow signal, not a failure: supervisors (the fleet) requeue
    the job for a checkpoint resume instead of writing a triage bundle.

    Subclasses :class:`SimulationError` so the event loop's ``wrap``
    policy re-raises it unchanged instead of burying it in a wrapper.
    """

    def __init__(self, frame_index: int, tick: int) -> None:
        super().__init__(
            f"preempted at checkpoint boundary (frame {frame_index}, "
            f"tick {tick})", tick=tick, owner="checkpoints")
        self.frame_index = frame_index


class CheckpointManager:
    """Collects rendered frames and emits periodic checkpoints.

    Wire it up with :meth:`wrap_source` (observes every frame the loop
    renders) and :meth:`on_frame_done` (the render loop's per-frame hook).
    ``path`` (when given) receives the latest snapshot as JSON after every
    checkpoint — the on-disk state a crashed process recovers from.
    """

    def __init__(self, every: int, path: Optional[str] = None,
                 injector=None,
                 preempt_check: Optional[Callable[[int], bool]] = None,
                 job: Optional[str] = None,
                 topology: Optional[str] = None,
                 claim: Optional[str] = None) -> None:
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, "
                             f"got {every}")
        self.every = every
        self.path = path
        # Ownership token stamped into every snapshot (the fleet passes
        # the job's cache key) so a resume in a reused directory can tell
        # this job's snapshots from a previous occupant's.
        self.job = job
        # Claim provenance (fleet-server incarnation + attempt sequence):
        # recorded in every snapshot for triage, never consulted for
        # ownership — any later claim of the same job may resume it.
        self.claim = claim
        # Topology hash of the producing system, stamped at snapshot time
        # so a resume onto differently-assembled hardware can be refused.
        self.topology = topology
        # ``preempt_check(frames_done)`` is consulted right after each
        # snapshot lands; returning True raises PreemptionRequested, so a
        # preempted run always holds a fresh resume point.
        self.preempt_check = preempt_check
        # When a FaultInjector rides the run, its RNG stream states are
        # captured into every snapshot so a resume reproduces the same
        # downstream fault pattern as an uninterrupted run.
        self.injector = injector
        self.last: Optional[GraphicsCheckpoint] = None
        self.checkpoints_taken = 0
        self._frames: list[Frame] = []

    def seed(self, frames: list[Frame]) -> None:
        """Pre-load frames replayed from a restored checkpoint so snapshots
        taken after a resume still cover the whole run."""
        self._frames = list(frames)

    def wrap_source(self, frame_source: Callable[[int], Frame]
                    ) -> Callable[[int], Frame]:
        def observing_source(index: int) -> Frame:
            frame = frame_source(index)
            self._frames.append(frame)
            return frame
        return observing_source

    def on_frame_done(self, frame_index: int, tick: int) -> None:
        """Called after frame ``frame_index`` completes at ``tick``."""
        if (frame_index + 1) % self.every != 0:
            return
        rng = (self.injector.rng_state()
               if self.injector is not None else None)
        self.last = capture(list(self._frames), tick=tick,
                            frame_index=frame_index + 1, rng=rng,
                            job=self.job, topology=self.topology,
                            mode="detailed", claim=self.claim)
        self.checkpoints_taken += 1
        if self.path is not None:
            # Write-then-rename: a process SIGKILL'd mid-serialize leaves
            # a stale ``.tmp`` behind, never a truncated snapshot — the
            # previous complete snapshot at ``path`` survives and resume
            # picks it up.
            tmp = self.path + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(self.last.to_json())
            os.replace(tmp, self.path)
        if (self.preempt_check is not None
                and self.preempt_check(frame_index + 1)):
            raise PreemptionRequested(frame_index + 1, tick)


def load_checkpoint(path: str) -> GraphicsCheckpoint:
    """Read and validate an on-disk checkpoint."""
    with open(path) as handle:
        return GraphicsCheckpoint.from_json(handle.read())


def resume_run(checkpoint: GraphicsCheckpoint, run_config,
               frame_source: Callable[[int], Frame],
               framebuffer_address: int,
               max_events: Optional[int] = None):
    """Resume a crashed run from ``checkpoint``.

    Rebuilds GL-side state by draw-call replay (which also validates the
    trace), then constructs a fresh SoC that re-enters simulated time at the
    snapshot tick and the render loop at the snapshot frame index.  Returns
    ``(soc, results)`` — the results cover the resumed frames only, but the
    final framebuffer matches an uninterrupted run.

    A snapshot stamped with a topology hash is checked against the
    topology ``run_config`` would assemble *before* any state is rebuilt;
    a mismatch raises :class:`CheckpointTopologyError`.
    """
    from repro.soc.soc import EmeraldSoC   # late import: soc imports health

    if checkpoint.topology is not None:
        config_hash = run_config.resolve_topology().topology_hash()
        if checkpoint.topology != config_hash:
            raise CheckpointTopologyError(
                snapshot_hash=checkpoint.topology, config_hash=config_hash)
    restored = checkpoint.restore_frames()
    soc = EmeraldSoC(run_config, frame_source, framebuffer_address,
                     start_frame=checkpoint.frame_index,
                     start_tick=checkpoint.tick)
    if soc.checkpoints is not None:
        soc.checkpoints.seed(restored)
    if checkpoint.rng is not None and soc.injector is not None:
        # Re-align the fault RNG streams with the crashed run's position;
        # without this a resume re-draws the whole fault sequence from the
        # seed and diverges from the uninterrupted run.
        soc.injector.restore_rng(checkpoint.rng)
    results = soc.run(max_events=max_events) if max_events is not None \
        else soc.run()
    return soc, results
