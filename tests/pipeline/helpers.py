"""Scene-building helpers shared by pipeline/gpu tests."""

import math

import numpy as np

from repro.geometry.mesh import Mesh
from repro.geometry.transforms import look_at, perspective
from repro.gl.context import GLContext
from repro.shader import builtins


def fullscreen_quad(z=0.5, color=(1.0, 0.0, 0.0, 1.0)):
    """Two triangles covering all of NDC at a given NDC z."""
    positions = np.array([
        [-1.0, -1.0, z], [1.0, -1.0, z], [-1.0, 1.0, z], [1.0, 1.0, z],
    ])
    uvs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    colors = np.tile(np.asarray(color), (4, 1))
    return Mesh(positions=positions, indices=np.array([0, 1, 2, 1, 3, 2]),
                uvs=uvs, colors=colors, name=f"quad_z{z}")


def half_quad(left=True, z=0.5):
    """A single triangle covering half of NDC."""
    if left:
        positions = np.array([[-1.0, -1.0, z], [1.0, -1.0, z], [-1.0, 1.0, z]])
    else:
        positions = np.array([[1.0, -1.0, z], [1.0, 1.0, z], [-1.0, 1.0, z]])
    return Mesh(positions=positions, indices=np.arange(3),
                name=f"half_{left}")


FLAT_VS = """
in vec3 position;
void main() { gl_Position = vec4(position, 1.0); }
"""

FLAT_COLOR_FS = """
uniform vec4 flat_color;
void main() { gl_FragColor = flat_color; }
"""


def flat_context(width=64, height=64, color=(1.0, 0.0, 0.0, 1.0)):
    ctx = GLContext(width, height)
    ctx.use_program(FLAT_VS, FLAT_COLOR_FS)
    ctx.set_uniform("flat_color", np.asarray(color))
    return ctx


def perspective_mvp(eye=(0.0, 0.0, 3.0), target=(0.0, 0.0, 0.0),
                    fov_deg=60.0, aspect=1.0, near=0.1, far=100.0):
    proj = perspective(math.radians(fov_deg), aspect, near, far)
    view = look_at(np.asarray(eye, dtype=np.float64),
                   np.asarray(target, dtype=np.float64),
                   np.array([0.0, 1.0, 0.0]))
    return proj @ view
