"""Tests for DRAM address mappings (Table 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address_map import (
    BASELINE_MAPPING,
    IP_CHANNEL_MAPPING,
    AddressMapping,
)

GEOM = dict(channels=2, ranks=1, banks=8, rows=64, columns=16)


class TestBaselineMapping:
    def test_consecutive_lines_alternate_channels(self):
        c0 = BASELINE_MAPPING.decode(0, **GEOM)
        c1 = BASELINE_MAPPING.decode(128, **GEOM)
        assert c0.channel == 0
        assert c1.channel == 1

    def test_lines_within_channel_walk_columns(self):
        """Page-striped: consecutive same-channel lines share row and bank."""
        a = BASELINE_MAPPING.decode(0, **GEOM)
        b = BASELINE_MAPPING.decode(256, **GEOM)
        assert (a.row, a.bank, a.channel) == (b.row, b.bank, b.channel)
        assert b.column == a.column + 1

    def test_row_changes_after_all_columns_banks(self):
        # row bits are MSB: row increments only after columns*banks*channels.
        lines_per_row_step = GEOM["columns"] * GEOM["banks"] * GEOM["channels"]
        a = BASELINE_MAPPING.decode(0, **GEOM)
        b = BASELINE_MAPPING.decode(lines_per_row_step * 128, **GEOM)
        assert b.row == a.row + 1


class TestIPChannelMapping:
    def test_consecutive_lines_stripe_banks(self):
        """Line-striped: same-channel neighbors land in different banks."""
        a = IP_CHANNEL_MAPPING.decode(0, channels=1, ranks=1, banks=8,
                                      rows=64, columns=16)
        b = IP_CHANNEL_MAPPING.decode(128, channels=1, ranks=1, banks=8,
                                      rows=64, columns=16)
        assert a.bank == 0
        assert b.bank == 1
        assert a.row == b.row

    def test_column_changes_after_banks_exhausted(self):
        geom = dict(channels=1, ranks=1, banks=8, rows=64, columns=16)
        a = IP_CHANNEL_MAPPING.decode(0, **geom)
        b = IP_CHANNEL_MAPPING.decode(8 * 128, **geom)
        assert b.column == a.column + 1
        assert b.bank == a.bank


class TestMappingGeneric:
    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(("row", "row", "bank", "column", "channel"))

    @given(st.integers(0, 2**30))
    def test_decode_in_range(self, address):
        coord = BASELINE_MAPPING.decode(address, **GEOM)
        assert 0 <= coord.channel < GEOM["channels"]
        assert 0 <= coord.bank < GEOM["banks"]
        assert 0 <= coord.row < GEOM["rows"]
        assert 0 <= coord.column < GEOM["columns"]

    @given(st.integers(0, 2**22 - 1))
    def test_decode_is_bijective_over_capacity(self, block):
        """Distinct blocks within capacity map to distinct coordinates."""
        capacity_blocks = (GEOM["channels"] * GEOM["banks"] * GEOM["rows"]
                           * GEOM["columns"])
        a = block % capacity_blocks
        b = (block + 1) % capacity_blocks
        ca = BASELINE_MAPPING.decode(a * 128, **GEOM)
        cb = BASELINE_MAPPING.decode(b * 128, **GEOM)
        assert ca != cb

    def test_same_line_bytes_share_coordinate(self):
        a = BASELINE_MAPPING.decode(0, **GEOM)
        b = BASELINE_MAPPING.decode(127, **GEOM)
        assert a == b
