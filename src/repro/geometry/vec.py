"""Small-vector helpers on top of numpy.

All vectors are plain float64 numpy arrays; these helpers just make intent
explicit (``vec3(1, 2, 3)``) and centralize the few operations the pipeline
needs (normalize, cross products, homogeneous extension).
"""

from __future__ import annotations

import numpy as np


def vec2(x: float, y: float) -> np.ndarray:
    return np.array([x, y], dtype=np.float64)


def vec3(x: float, y: float, z: float) -> np.ndarray:
    return np.array([x, y, z], dtype=np.float64)


def vec4(x: float, y: float, z: float, w: float) -> np.ndarray:
    return np.array([x, y, z, w], dtype=np.float64)


def normalize(v: np.ndarray) -> np.ndarray:
    """Unit vector along ``v``; zero vectors are returned unchanged."""
    norm = np.linalg.norm(v)
    if norm == 0.0:
        return v.copy()
    return v / norm


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.cross(a, b)


def dot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.dot(a, b))


def to_homogeneous(v: np.ndarray, w: float = 1.0) -> np.ndarray:
    """Extend a 3-vector to homogeneous coordinates."""
    if v.shape != (3,):
        raise ValueError(f"expected a 3-vector, got shape {v.shape}")
    return np.array([v[0], v[1], v[2], w], dtype=np.float64)


def from_homogeneous(v: np.ndarray) -> np.ndarray:
    """Perspective-divide a clip-space 4-vector down to 3D (NDC)."""
    if v.shape != (4,):
        raise ValueError(f"expected a 4-vector, got shape {v.shape}")
    w = v[3]
    if w == 0.0:
        raise ZeroDivisionError("w=0 in perspective divide")
    return v[:3] / w
