"""Checkpoint round-trip verification (serialize -> restore -> diff)."""

import json

import pytest

from repro.harness.scenes import SceneSession
from repro.health import CheckpointManager
from repro.health.faults import FaultConfig, FaultInjector
from repro.sanitize import CheckpointMismatchViolation
from repro.sanitize.roundtrip import trace_crc, verify_roundtrip
from repro.soc.checkpoint import GraphicsCheckpoint
from tests.health.full_system import HEIGHT, WIDTH


def take_checkpoint(frames=1, rng=None):
    manager = CheckpointManager(every=1)
    source = manager.wrap_source(SceneSession("cube", WIDTH, HEIGHT).frame)
    for index in range(frames):
        source(index)
        manager.on_frame_done(index, tick=1_000 * (index + 1))
    checkpoint = manager.last
    checkpoint.rng = rng
    return checkpoint


class TestVerifyRoundtrip:
    def test_healthy_checkpoint_passes_with_summary(self):
        summary = verify_roundtrip(take_checkpoint(frames=2), tick=42)
        assert summary["frames"] == 2
        assert summary["draws"] > 0
        assert isinstance(summary["crc"], int)

    def test_rng_streams_survive_the_round_trip(self):
        rng = FaultInjector(FaultConfig(seed=9)).rng_state()
        summary = verify_roundtrip(take_checkpoint(rng=rng))
        assert summary["frames"] == 1

    def test_corrupting_serializer_is_caught(self):
        from repro.soc.checkpoint import _payload_crc

        class Tampered(GraphicsCheckpoint):
            """A serializer bug: the snapshot written to disk disagrees
            with the in-memory state it claims to capture — and keeps its
            integrity CRC consistent, so only the round-trip comparison
            can notice."""

            def to_json(self):
                doc = json.loads(super().to_json())
                doc["frame_index"] += 1
                doc["crc"] = _payload_crc(doc)
                return json.dumps(doc)

        good = take_checkpoint()
        bad = Tampered(trace_json=good.trace_json, tick=good.tick,
                       frame_index=good.frame_index)
        with pytest.raises(CheckpointMismatchViolation) as excinfo:
            verify_roundtrip(bad, tick=7)
        assert excinfo.value.details["field"] == "frame_index"
        assert excinfo.value.tick == 7

    def test_stale_crc_serializer_is_caught(self):
        class StaleCRC(GraphicsCheckpoint):
            """A serializer that mutates the payload after computing the
            integrity CRC: the validator itself rejects the snapshot."""

            def to_json(self):
                doc = json.loads(super().to_json())
                doc["frame_index"] += 1       # crc now disagrees
                return json.dumps(doc)

        good = take_checkpoint()
        bad = StaleCRC(trace_json=good.trace_json, tick=good.tick,
                       frame_index=good.frame_index)
        with pytest.raises(CheckpointMismatchViolation) as excinfo:
            verify_roundtrip(bad, tick=7)
        assert excinfo.value.details["field"] == "crc"

    def test_snapshot_failing_its_own_validator_is_caught(self):
        class Truncated(GraphicsCheckpoint):
            def to_json(self):
                doc = json.loads(super().to_json())
                del doc["trace"]
                return json.dumps(doc)

        good = take_checkpoint()
        bad = Truncated(trace_json=good.trace_json, tick=good.tick,
                        frame_index=good.frame_index)
        with pytest.raises(CheckpointMismatchViolation,
                           match="validator"):
            verify_roundtrip(bad)

    def test_violation_kind_names_the_invariant(self):
        violation = CheckpointMismatchViolation("boom")
        assert violation.kind == "checkpoint-roundtrip"
        assert violation.to_dict()["kind"] == "checkpoint-roundtrip"


class TestTraceCRC:
    def test_crc_is_stable_across_reencoding(self):
        checkpoint = take_checkpoint(frames=2)
        first = trace_crc(checkpoint.trace_json)
        # Cosmetic JSON differences (indentation) must not change the CRC:
        # the CRC is over the canonical re-recording, not the raw bytes.
        pretty = json.dumps(json.loads(checkpoint.trace_json), indent=2)
        assert trace_crc(pretty) == first

    def test_different_traces_differ(self):
        one = take_checkpoint(frames=1)
        two = take_checkpoint(frames=2)
        assert trace_crc(one.trace_json) != trace_crc(two.trace_json)
