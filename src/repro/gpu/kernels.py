"""A small library of compute kernels written in the shader ISA assembly.

Each builder returns a finalized :class:`~repro.shader.program.Program`
parameterized by buffer base addresses (kernels compute their own
per-thread addresses from the thread id in attribute slot 0).
"""

from __future__ import annotations

from repro.shader.program import Program, assemble


def vector_add(a_base: int, b_base: int, out_base: int) -> Program:
    """out[i] = a[i] + b[i]"""
    return assemble(f"""
        .stage fragment
        .attr tid 1
        ld.attr r0, a0          # thread id
        mul r1, r0, 4.0         # byte offset
        add r2, r1, {float(a_base)}
        add r3, r1, {float(b_base)}
        add r4, r1, {float(out_base)}
        ld.global r5, r2
        ld.global r6, r3
        add r7, r5, r6
        st.global r4, r7
        exit
    """, stage="fragment", name="vector_add")


def saxpy(x_base: int, y_base: int, out_base: int) -> Program:
    """out[i] = alpha * x[i] + y[i]  (alpha in constant slot 0)"""
    return assemble(f"""
        .stage fragment
        .attr tid 1
        .uniform alpha 1
        ld.attr r0, a0
        ld.const r1, c0
        mul r2, r0, 4.0
        add r3, r2, {float(x_base)}
        add r4, r2, {float(y_base)}
        add r5, r2, {float(out_base)}
        ld.global r6, r3
        ld.global r7, r4
        mad r8, r1, r6, r7
        st.global r5, r8
        exit
    """, stage="fragment", name="saxpy")


def strided_copy(src_base: int, dst_base: int, stride_words: int) -> Program:
    """dst[i] = src[i * stride] — a coalescing microbenchmark."""
    return assemble(f"""
        .stage fragment
        .attr tid 1
        ld.attr r0, a0
        mul r1, r0, {float(stride_words * 4)}
        add r2, r1, {float(src_base)}
        mul r3, r0, 4.0
        add r4, r3, {float(dst_base)}
        ld.global r5, r2
        st.global r4, r5
        exit
    """, stage="fragment", name=f"strided_copy_{stride_words}")


def clamped_threshold(src_base: int, dst_base: int) -> Program:
    """dst[i] = src[i] > 0.5 ? 1 : 0 — a divergence microbenchmark."""
    return assemble(f"""
        .stage fragment
        .attr tid 1
        ld.attr r0, a0
        mul r1, r0, 4.0
        add r2, r1, {float(src_base)}
        add r3, r1, {float(dst_base)}
        ld.global r4, r2
        setp.gt p0, r4, 0.5
        @!p0 bra ZERO
        mov r5, 1.0
        bra DONE
        ZERO:
        mov r5, 0.0
        DONE:
        st.global r3, r5
        exit
    """, stage="fragment", name="clamped_threshold")
