"""Package metadata.

Metadata lives here (not in a pyproject [project] table) so that
``pip install -e .`` uses the legacy editable path, which works without the
``wheel`` package in this offline environment.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Emerald reproduction: a unified graphics + GPGPU GPU timing "
        "simulator for SoC systems (ISCA 2019)"
    ),
    author="Emerald Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
