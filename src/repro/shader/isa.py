"""The shader instruction set: a PTX-like scalar register ISA.

Values are scalar 64-bit floats, one register file slice per SIMT lane.
Vectors (vec2/3/4, mat4) are scalarized by the compiler.  The graphics
extensions — ``TEX``, ``ZREAD``/``ZWRITE``, ``SREAD``/``SWRITE``,
``FB_READ``/``FB_WRITE``, ``DISCARD``, ``LD_ATTR``/``LD_VARY``/``ST_OUT``
— mirror the instructions
Emerald adds to GPGPU-Sim's PTX (§4.1).

Each opcode carries a *latency class* the timing model uses:

* ``ALU`` — short fixed latency (default 4 cycles);
* ``SFU`` — transcendental units (default 16 cycles);
* ``MEM`` — variable, resolved by the cache/DRAM models;
* ``CTRL`` — branch/exit bookkeeping, single cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


class LatencyClass(enum.Enum):
    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    CTRL = "ctrl"

    # Members are singletons compared by identity, so the id-based C-level
    # hash is sound — and markedly cheaper than Enum's Python-level
    # __hash__ on the timing model's per-access dict lookups.
    __hash__ = object.__hash__


class MemSpace(enum.Enum):
    """Which cache a memory access is routed to (Table 2)."""

    CONST = "const"       # L1C: uniforms
    VERTEX = "vertex"     # L1C: vertex attribute fetches
    TEXTURE = "texture"   # L1T
    DEPTH = "depth"       # L1Z
    COLOR = "color"       # L1D: framebuffer color
    GLOBAL = "global"     # L1D: generic global memory
    INSTRUCTION = "inst"  # L1I

    __hash__ = object.__hash__      # identity hash; see LatencyClass


class Opcode(enum.Enum):
    # ALU
    MOV = ("mov", LatencyClass.ALU)
    ADD = ("add", LatencyClass.ALU)
    SUB = ("sub", LatencyClass.ALU)
    MUL = ("mul", LatencyClass.ALU)
    DIV = ("div", LatencyClass.SFU)
    MAD = ("mad", LatencyClass.ALU)
    MIN = ("min", LatencyClass.ALU)
    MAX = ("max", LatencyClass.ALU)
    ABS = ("abs", LatencyClass.ALU)
    NEG = ("neg", LatencyClass.ALU)
    FLOOR = ("floor", LatencyClass.ALU)
    FRAC = ("frac", LatencyClass.ALU)
    # SFU
    RCP = ("rcp", LatencyClass.SFU)
    RSQRT = ("rsqrt", LatencyClass.SFU)
    SQRT = ("sqrt", LatencyClass.SFU)
    SIN = ("sin", LatencyClass.SFU)
    COS = ("cos", LatencyClass.SFU)
    EXP2 = ("exp2", LatencyClass.SFU)
    LOG2 = ("log2", LatencyClass.SFU)
    POW = ("pow", LatencyClass.SFU)
    # Predicate-producing compares and predicate logic
    SETP_LT = ("setp.lt", LatencyClass.ALU)
    SETP_LE = ("setp.le", LatencyClass.ALU)
    SETP_GT = ("setp.gt", LatencyClass.ALU)
    SETP_GE = ("setp.ge", LatencyClass.ALU)
    SETP_EQ = ("setp.eq", LatencyClass.ALU)
    SETP_NE = ("setp.ne", LatencyClass.ALU)
    SEL = ("sel", LatencyClass.ALU)        # dst = pred ? src0 : src1
    PAND = ("pand", LatencyClass.ALU)
    POR = ("por", LatencyClass.ALU)
    PNOT = ("pnot", LatencyClass.ALU)
    # Control
    BRA = ("bra", LatencyClass.CTRL)
    EXIT = ("exit", LatencyClass.CTRL)
    DISCARD = ("discard", LatencyClass.CTRL)
    # Graphics / memory
    LD_ATTR = ("ld.attr", LatencyClass.MEM)     # vertex attribute (L1C)
    LD_VARY = ("ld.vary", LatencyClass.ALU)     # interpolated varying (register)
    LD_CONST = ("ld.const", LatencyClass.MEM)   # uniform (L1C)
    ST_OUT = ("st.out", LatencyClass.ALU)       # shader output slot
    TEX = ("tex", LatencyClass.MEM)             # texture sample (L1T)
    ZREAD = ("zread", LatencyClass.MEM)         # depth buffer read (L1Z)
    ZWRITE = ("zwrite", LatencyClass.MEM)       # depth buffer write (L1Z)
    SREAD = ("sread", LatencyClass.MEM)         # stencil read (L1Z)
    SWRITE = ("swrite", LatencyClass.MEM)       # stencil write (L1Z)
    FB_READ = ("fb.read", LatencyClass.MEM)     # color buffer read (L1D)
    FB_WRITE = ("fb.write", LatencyClass.MEM)   # color buffer write (L1D)
    LD_GLOBAL = ("ld.global", LatencyClass.MEM)
    ST_GLOBAL = ("st.global", LatencyClass.MEM)

    def __init__(self, mnemonic: str, latency_class: LatencyClass) -> None:
        self.mnemonic = mnemonic
        self.latency_class = latency_class

    __hash__ = object.__hash__      # identity hash; see LatencyClass


# Default latencies per class, overridable via SIMTCoreConfig.
DEFAULT_LATENCY = {
    LatencyClass.ALU: 4,
    LatencyClass.SFU: 16,
    LatencyClass.CTRL: 1,
}

_MNEMONIC_TO_OPCODE = {op.mnemonic: op for op in Opcode}


def opcode_by_mnemonic(mnemonic: str) -> Opcode:
    try:
        return _MNEMONIC_TO_OPCODE[mnemonic]
    except KeyError:
        raise ValueError(f"unknown mnemonic {mnemonic!r}") from None


@dataclass(frozen=True)
class Reg:
    """A scalar float register."""

    index: int

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Pred:
    """A predicate (boolean) register."""

    index: int

    def __repr__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate float operand."""

    value: float

    def __repr__(self) -> str:
        return f"{self.value!r}"


Operand = Union[Reg, Pred, Imm]


@dataclass
class Instruction:
    """One decoded instruction.

    ``guard``/``guard_sense``: optional predicated execution (``@p`` /
    ``@!p`` in assembly).  ``target`` is a resolved instruction index for
    branches; ``reconv`` is the IPDOM reconvergence point the SIMT stack
    uses (filled in by :func:`repro.shader.program.compute_reconvergence`).
    ``slot`` indexes attribute/varying/output/const slots and texture units.
    """

    op: Opcode
    dsts: list[Operand] = field(default_factory=list)
    srcs: list[Operand] = field(default_factory=list)
    guard: Optional[Pred] = None
    guard_sense: bool = True
    target: Optional[int] = None
    reconv: Optional[int] = None
    slot: Optional[int] = None

    def __repr__(self) -> str:
        parts = []
        if self.guard is not None:
            sense = "" if self.guard_sense else "!"
            parts.append(f"@{sense}{self.guard}")
        parts.append(self.op.mnemonic)
        operands = [repr(d) for d in self.dsts] + [repr(s) for s in self.srcs]
        if self.slot is not None:
            operands.append(f"#{self.slot}")
        if self.target is not None:
            operands.append(f"->{self.target}")
        return " ".join(parts) + " " + ", ".join(operands)
