"""Profiler-reduction unit tests on a hand-built event stream."""

from repro.common.events import EventQueue
from repro.trace import Tracer, profile, summarize
from repro.trace.profiler import _merge_coverage


def _hand_built_tracer():
    """Two app frames with cpu/gpu phases, overlapping DRAM bursts, and a
    bouncing counter — small enough to check the reduction by hand."""
    q = EventQueue()
    tracer = Tracer(q)
    for index, (mid, end) in enumerate(((40, 100), (130, 200))):
        tracer.begin("app", f"frame{index}")
        tracer.begin("app", "cpu_prepare")
        q.run_until(mid)
        tracer.end("app", "cpu_prepare")
        tracer.begin("app", "gpu_render")
        q.run_until(end)
        tracer.end("app", "gpu_render")
        tracer.end("app", f"frame{index}")
    tracer.complete("dram.ch0", "gpu", 10, 50, cat="dram")
    tracer.complete("dram.ch0", "gpu", 40, 80, cat="dram")   # overlaps
    tracer.counter("noc", "in_flight", 2)
    tracer.counter("noc", "in_flight", 5)
    tracer.counter("noc", "in_flight", 1)
    return tracer


class TestMergeCoverage:
    def test_empty(self):
        assert _merge_coverage([]) == 0

    def test_disjoint(self):
        assert _merge_coverage([(0, 10), (20, 25)]) == 15

    def test_overlapping_and_nested(self):
        assert _merge_coverage([(0, 100), (10, 20), (50, 150)]) == 150

    def test_touching_intervals_merge(self):
        assert _merge_coverage([(0, 10), (10, 20)]) == 20


class TestReduction:
    def test_busy_ticks_merge_nested_spans(self):
        attribution = summarize(_hand_built_tracer())
        # Nested phases must not double-count against their frames.
        assert attribution.busy_ticks["app"] == 200
        assert attribution.busy_ticks["dram.ch0"] == 70

    def test_end_tick_and_utilization(self):
        attribution = summarize(_hand_built_tracer())
        assert attribution.end_tick == 200
        assert attribution.utilization("app") == 1.0
        assert attribution.utilization("dram.ch0") == 0.35
        assert attribution.utilization("unknown") == 0.0

    def test_frames_pair_phases_with_their_frame(self):
        attribution = summarize(_hand_built_tracer())
        frames = attribution.frames("app")
        assert [f.name for f, _ in frames] == ["frame0", "frame1"]
        assert [(f.start, f.end) for f, _ in frames] == [(0, 100), (100, 200)]
        for frame, phases in frames:
            assert [p.name for p in phases] == ["cpu_prepare", "gpu_render"]
            assert all(p.depth == 1 for p in phases)
            assert frame.depth == 0
            # Phases tile the frame exactly: no gap, no overlap.
            cursor = frame.start
            for phase in sorted(phases, key=lambda s: s.start):
                assert phase.start == cursor
                cursor = phase.end
            assert cursor == frame.end

    def test_counter_series_statistics(self):
        attribution = summarize(_hand_built_tracer())
        series = attribution.counters[("noc", "in_flight")]
        assert series.last == 1
        assert series.peak == 5
        assert series.mean == (2 + 5 + 1) / 3

    def test_profile_accepts_plain_dict(self):
        attribution = profile(_hand_built_tracer().to_dict())
        assert attribution.busy_ticks["app"] == 200

    def test_kernel_totals_flow_through(self):
        q = EventQueue()
        tracer = Tracer(q)
        q.schedule(1, lambda: None, owner="dram.ch0")
        q.schedule(2, lambda: None, owner="dram.ch0")
        q.run()
        attribution = summarize(tracer)
        assert attribution.kernel_scheduled == {"dram.ch0": 2}
        assert attribution.kernel_fired == {"dram.ch0": 2}


class TestRendering:
    def test_timeline_density_rows(self):
        attribution = summarize(_hand_built_tracer())
        timeline = attribution.timeline(buckets=20)
        assert set(timeline) == {"app", "dram.ch0"}
        assert all(len(row) == 20 for row in timeline.values())
        assert timeline["app"] == "#" * 20          # fully busy
        assert " " in timeline["dram.ch0"]          # idle tail shows

    def test_format_is_a_readable_report(self):
        attribution = summarize(_hand_built_tracer())
        report = attribution.format(buckets=20)
        assert "cycle attribution over 200 ticks" in report
        assert "app" in report and "dram.ch0" in report
        assert "counters (last / peak / mean):" in report
        assert "noc.in_flight: 1 / 5 / 2.67" in report

    def test_empty_trace_formats(self):
        attribution = profile({"traceEvents": []})
        assert attribution.end_tick == 0
        assert attribution.timeline() == {}
        assert "cycle attribution" in attribution.format()


class TestTopSinks:
    """The --top-sinks ranked cycle-attribution report (PR 8 satellite)."""

    def test_rows_ranked_by_merged_coverage(self):
        attribution = summarize(_hand_built_tracer())
        rows = attribution.top_sinks()
        assert rows[0] == ("app", "gpu_render", 130, 2)
        by_sink = {(track, name): (busy, count)
                   for track, name, busy, count in rows}
        # The two overlapping DRAM bursts merge: 10..80 = 70 ticks, 2 spans.
        assert by_sink[("dram.ch0", "gpu")] == (70, 2)
        assert by_sink[("app", "cpu_prepare")] == (70, 2)    # 40 + 30
        assert by_sink[("app", "gpu_render")] == (130, 2)    # 60 + 70
        busies = [busy for _, _, busy, _ in rows]
        assert busies == sorted(busies, reverse=True)

    def test_limit_truncates(self):
        attribution = summarize(_hand_built_tracer())
        assert len(attribution.top_sinks(limit=2)) == 2

    def test_format_reports_share_and_owners(self):
        attribution = summarize(_hand_built_tracer())
        text = attribution.format_top_sinks(limit=3)
        assert "top cycle sinks over 200 ticks" in text
        assert "app/gpu_render" in text
        assert "65.0%" in text                   # 130 / 200
