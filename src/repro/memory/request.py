"""Memory request records shared by every IP model and the DRAM system."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SourceType(enum.Enum):
    """Which IP issued a request — drives scheduler classification."""

    CPU = "cpu"
    GPU = "gpu"
    DISPLAY = "display"


@dataclass
class MemRequest:
    """One DRAM transaction (typically a cache-line fill or writeback).

    ``source``/``source_id`` identify the requester (e.g. CPU core 2);
    ``callback`` fires at completion with the request as argument.
    """

    address: int
    size: int
    write: bool
    source: SourceType
    source_id: int = 0
    issue_time: int = 0
    callback: Optional[Callable[["MemRequest"], Any]] = None
    metadata: dict = field(default_factory=dict)
    complete_time: Optional[int] = None

    @property
    def latency(self) -> int:
        if self.complete_time is None:
            raise RuntimeError("request not complete yet")
        return self.complete_time - self.issue_time
