"""The DRAM subsystem: channels/banks/rows, address maps and schedulers.

Everything case study I exercises lives here: the baseline FR-FCFS
controller, the DASH deadline-aware scheduler (Usui et al., re-implemented
from the paper's description and Table 3 parameters), and the HMC
heterogeneous split-channel controller (Nachiappan et al.), plus the two
address mappings of Table 4.
"""

from repro.memory.request import MemRequest, SourceType
from repro.memory.address_map import AddressMapping, BASELINE_MAPPING, IP_CHANNEL_MAPPING
from repro.memory.system import MemorySystem

__all__ = [
    "MemRequest",
    "SourceType",
    "AddressMapping",
    "BASELINE_MAPPING",
    "IP_CHANNEL_MAPPING",
    "MemorySystem",
]
