"""Design-space exploration over declarative SoC topologies (DESIGN.md §11).

``repro.dse`` closes the loop the topology layer opens: enumerate a grid
of :class:`~repro.common.config.SoCTopology` candidates
(:func:`topology_grid`), dispatch every point as a cached, fault-tolerant
fleet job (:func:`run_dse` over :mod:`repro.fleet`), collect the
deterministic FPS / DRAM-bandwidth / energy metrics each worker folds
into its result payload, and reduce them to a Pareto frontier
(:func:`pareto_frontier`) with a lumos-style text report
(:func:`format_dse_report`).

Because cache keys hash the *real* topology document, a re-run of the
same sweep is served entirely from cache, and two points differing only
in cluster or channel count never alias.

Quickstart::

    from repro.dse import DSEConfig, run_dse, topology_grid

    report = run_dse(topology_grid(), DSEConfig(workers=2,
                                                cache_dir="dse-cache"))
    for point in report.frontier:
        print(point.name, point.metrics["fps"])

CLI: ``python -m repro dse --workers 2 --out report.json``.
"""

from __future__ import annotations

from repro.dse.driver import DSEConfig, DSEPoint, DSEReport, run_dse
from repro.dse.grid import CPU_MIXES, topology_grid
from repro.dse.pareto import OBJECTIVES, dominates, pareto_frontier
from repro.dse.report import format_dse_report

__all__ = [
    "CPU_MIXES",
    "DSEConfig",
    "DSEPoint",
    "DSEReport",
    "OBJECTIVES",
    "dominates",
    "format_dse_report",
    "pareto_frontier",
    "run_dse",
    "topology_grid",
]
