"""The fleet supervisor: asyncio scheduling over a multiprocess pool.

One :class:`FleetSupervisor` owns a bounded job queue, N worker slots,
the deterministic result cache, and the retry ledger.  Robustness is the
headline contract (ISSUE 6):

* **Crash detection** — a worker process that dies without publishing a
  result (SIGKILL, OOM) is requeued with capped exponential backoff and
  resumes from its last complete checkpoint, not tick 0.
* **Hang detection** — heartbeats (frame-boundary file writes) feed a
  wall-clock deadline in the watchdog idiom; a stale worker is killed
  and requeued the same way.
* **Typed deterministic failures** — ``violation`` / ``detected`` /
  ``error`` outcomes are terminal on the first attempt (the simulation
  is deterministic; retrying reproduces the failure) and carry the
  worker's triage bundle as the job artifact.
* **Checkpoint preemption** — with a deadline configured, long attempts
  are asked to stop at the next checkpoint boundary
  (:class:`~repro.health.recovery.PreemptionRequested`) and requeued for
  resume; preemption costs no attempt and no backoff.
* **Load shedding** — submissions beyond the bounded queue fail with a
  typed :class:`FleetSaturated`, never an unbounded pile-up; a sweep
  records the job as ``shed``.
* **Loud death** — the supervisor itself never lets a job vanish: every
  submitted spec ends in exactly one terminal outcome in the report.

Results land in the content-addressed cache keyed on (config hash, seed,
code version); a repeated sweep is served entirely from cache with zero
worker processes spawned.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.cache import ResultCache
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.job import RETRYABLE, JobAttempt, JobRecord, JobSpec
from repro.fleet.manifest import build_manifest, cache_key
from repro.fleet.worker import (CHECKPOINT_FILE, CONTROL_FILE,
                                DEFAULT_BUDGET_EVENTS, HEARTBEAT_FILE,
                                PREEMPT_FLAG, RESULT_FILE, TRIAGE_DIR,
                                worker_entry)

#: Hard ceiling on cooperative preemptions per job.  Every preemption
#: advances the checkpoint by at least one frame, so this is unreachable
#: for sane frame counts — it exists so a supervisor bug can never turn
#: into an infinite preempt/resume loop.
MAX_PREEMPTIONS = 1000


class FleetSaturated(RuntimeError):
    """The bounded submission queue is full; the job was shed, not queued.

    A typed outcome, per the loud-death contract: callers see exactly why
    the fleet refused work (current depth, limit) instead of blocking
    forever or growing the queue without bound.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"fleet saturated: {pending} jobs pending (limit {limit})")
        self.pending = pending
        self.limit = limit


class FleetWorkerFailure(RuntimeError):
    """Supervisor-side record of a crashed or hung worker attempt.

    Written into the attempt's triage bundle (the worker itself died
    without the chance to report), carrying what the supervisor observed:
    the exit signal / staleness, the last heartbeat, the resume point.
    """

    def __init__(self, kind: str, message: str, *,
                 last_heartbeat: Optional[dict] = None) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.last_heartbeat = last_heartbeat
        self.details = {"kind": kind, "last_heartbeat": last_heartbeat}


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential delay before retrying a crashed/hung attempt.

    Retry ``i`` (0-based) waits ``min(cap, base * factor**i)`` seconds —
    the same ladder shape as the NoC's :class:`RetryConfig`, in wall
    time.  Deterministic by construction (no jitter): tests can assert
    the exact delay sequence.
    """

    base: float = 0.25
    factor: float = 2.0
    cap: float = 4.0

    def delay_for(self, retry_index: int) -> float:
        return min(self.cap, self.base * (self.factor ** retry_index))

    def ladder(self, retries: int) -> list[float]:
        return [self.delay_for(i) for i in range(retries)]


@dataclass
class FleetConfig:
    """Supervisor knobs."""

    workers: int = 2
    queue_limit: int = 1024          # bounded submissions (load shedding)
    max_attempts: int = 3            # crash/hang retries per job
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    heartbeat_timeout: float = 60.0  # wall seconds without a beat = hung
    poll_interval: float = 0.05      # supervisor monitor cadence (seconds)
    preempt_after: Optional[float] = None   # wall deadline per attempt
    budget_events: int = DEFAULT_BUDGET_EVENTS
    cache_dir: Optional[str] = None
    # Test/CI fault injection: job name -> per-attempt control docs, e.g.
    # {"cube-s1": [{"kill_at_frame": 0}]} SIGKILLs attempt 1 after frame
    # 0 and lets attempt 2 (which consumes no control) run clean.
    inject: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.queue_limit <= 0:
            raise ValueError(
                f"queue_limit must be positive, got {self.queue_limit}")
        if self.max_attempts <= 0:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}")


@dataclass
class FleetReport:
    """Everything one sweep produced, in submission order."""

    records: list[JobRecord] = field(default_factory=list)
    executed: int = 0                # worker processes spawned
    cache_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    @property
    def cached(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    def counts(self) -> dict:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "schema": "repro-fleet-report/1",
            "ok": self.ok,
            "counts": self.counts(),
            "executed": self.executed,
            "cached": self.cached,
            "cache_stats": self.cache_stats,
            "jobs": [record.to_dict() for record in self.records],
        }


def _job_dirname(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


def _spawn_context():
    """Prefer fork (fast, Linux); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class FleetSupervisor:
    """Shards a sweep across workers; survives the failures it will see."""

    def __init__(self, config: FleetConfig, workdir: str) -> None:
        self.config = config
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self.cache = ResultCache(config.cache_dir) \
            if config.cache_dir else None
        self.records: list[JobRecord] = []
        self.executed = 0
        self._pending = 0                    # submitted, not yet terminal
        self._submitted: list[JobRecord] = []
        self._requeues: set = set()          # live backoff timers
        self._ctx = _spawn_context()
        self._draining = False               # first signal: drain
        self._aborting = False               # second signal: abort

    # -- graceful shutdown (SIGTERM/SIGINT ladder) --------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def aborted(self) -> bool:
        return self._aborting

    def request_drain(self) -> None:
        """First-signal behavior: stop starting work, finish in flight.

        Queued jobs finalize as ``cancelled`` without running; running
        attempts get a preempt flag so they stop at the next checkpoint
        boundary (or simply finish).  Safe to call from a signal handler —
        it only sets a flag the async loops poll.
        """
        self._draining = True

    def request_abort(self) -> None:
        """Second-signal behavior: SIGKILL running workers, stop now.

        Killed attempts finalize as ``cancelled`` (their checkpoints
        survive on disk for a later resume), never as retried failures.
        """
        self._draining = True
        self._aborting = True

    # -- submission (bounded; sheds under load) -----------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Accept a job, or raise :class:`FleetSaturated`.

        Duplicate names are rejected (the job directory is the per-job
        namespace for checkpoints and results).
        """
        if any(r.spec.name == spec.name for r in self.records):
            raise ValueError(f"duplicate job name {spec.name!r}")
        record = JobRecord(spec=spec)
        self.records.append(record)
        if self._pending >= self.config.queue_limit:
            record.outcome = "shed"
            raise FleetSaturated(self._pending, self.config.queue_limit)
        self._pending += 1
        self._submitted.append(record)
        return record

    def submit_sweep(self, specs) -> None:
        """Submit many; shed jobs are recorded, not raised."""
        for spec in specs:
            try:
                self.submit(spec)
            except FleetSaturated:
                pass                         # recorded as outcome "shed"

    # -- the run ------------------------------------------------------------

    def run(self) -> FleetReport:
        """Drive every submitted job to a terminal outcome (blocking)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> FleetReport:
        queue: asyncio.Queue = asyncio.Queue()
        for record in self._submitted:
            record.key = cache_key(record.spec)
            queue.put_nowait(record)
        self._submitted = []
        done = asyncio.Event()
        if self._pending == 0:
            done.set()

        async def slot() -> None:
            while not done.is_set():
                get = asyncio.create_task(queue.get())
                finished = asyncio.create_task(done.wait())
                waited, _ = await asyncio.wait(
                    {get, finished}, return_when=asyncio.FIRST_COMPLETED)
                if get not in waited:
                    get.cancel()
                    return
                finished.cancel()
                record = get.result()
                if self._draining:
                    # Drained before a worker ever started this pass:
                    # policy stop, not failure (checkpoints, if any,
                    # survive for a later resume).
                    record.outcome = "cancelled"
                    record.cancel_reason = (record.cancel_reason
                                            or "drained before running")
                else:
                    await self._drive(record, queue)
                if record.outcome != "pending":
                    self._pending -= 1
                    if self._pending == 0:
                        done.set()

        await asyncio.gather(
            *(slot() for _ in range(self.config.workers)))
        report = FleetReport(
            records=self.records, executed=self.executed,
            cache_stats=self.cache.stats() if self.cache else {})
        return report

    # -- one scheduling step for one job ------------------------------------

    async def _drive(self, record: JobRecord, queue: asyncio.Queue) -> None:
        """Run one attempt (or serve from cache); requeue or finalize."""
        if self.cache is not None and not record.attempts \
                and record.preemptions == 0:
            cached = self.cache.lookup(record.key)
            if cached is not None:
                record.outcome = "ok"
                record.cache_hit = True
                record.payload = cached.payload
                return

        attempt = await self._run_attempt(record)
        record.attempts.append(attempt)

        if attempt.outcome == "ok":
            record.outcome = "ok"
            record.payload = attempt.payload_doc
            if self.cache is not None:
                # The job already succeeded: a cache publish failure
                # (disk full, permissions) is recorded, never allowed to
                # kill the slot and strand the rest of the sweep.
                try:
                    manifest = build_manifest(
                        record.spec, record.key, outcome="ok",
                        provenance={
                            "attempts": len(record.attempts),
                            "preemptions": record.preemptions,
                            "resumed_from": attempt.resumed_from,
                        })
                    self.cache.store(record.key, manifest,
                                     attempt.payload_doc)
                except OSError as exc:
                    record.cache_error = f"{type(exc).__name__}: {exc}"
            return
        if attempt.outcome == "preempted":
            record.preemptions += 1
            record.attempts.pop()            # cooperative, not a failure
            if self._draining:
                record.outcome = "cancelled"
                record.cancel_reason = (
                    "drained: stopped at a checkpoint boundary "
                    f"({attempt.detail})")
                return
            if record.preemptions >= MAX_PREEMPTIONS:
                record.outcome = "failed"
                return
            queue.put_nowait(record)         # resume immediately
            return
        if attempt.outcome in RETRYABLE:
            if self._draining:
                record.outcome = "cancelled"
                record.cancel_reason = (
                    "aborted by supervisor (worker killed)"
                    if self._aborting else
                    "drained: retryable failure not retried")
                return
            failures = sum(1 for a in record.attempts
                           if a.outcome in RETRYABLE)
            if failures < self.config.max_attempts:
                delay = self.config.backoff.delay_for(failures - 1)
                record.next_backoff = delay

                async def requeue_later() -> None:
                    await asyncio.sleep(delay)
                    queue.put_nowait(record)

                task = asyncio.get_running_loop().create_task(
                    requeue_later())
                self._requeues.add(task)
                task.add_done_callback(self._requeues.discard)
                return
            record.outcome = "failed"
            return
        # violation | detected | error: deterministic, terminal.
        record.outcome = attempt.outcome

    # -- one worker process -------------------------------------------------

    async def _run_attempt(self, record: JobRecord,
                           fresh: Optional[bool] = None) -> JobAttempt:
        spec = record.spec
        jobdir = os.path.join(self.workdir, "jobs",
                              _job_dirname(spec.name))
        os.makedirs(jobdir, exist_ok=True)
        self._arm_controls(record, jobdir)
        if fresh is None:
            fresh = not record.attempts and record.preemptions == 0
        if fresh:
            # First attempt: a checkpoint or heartbeat left behind by a
            # previous sweep in a reused workdir belongs to a different
            # job — resuming it would publish a wrong payload under this
            # job's cache key.  The fleet server passes ``fresh=False``
            # for journal-recovered jobs, whose checkpoints are exactly
            # what a restart must resume from.
            self._clear(os.path.join(jobdir, CHECKPOINT_FILE))
            self._clear(os.path.join(jobdir, HEARTBEAT_FILE))
        self._clear(os.path.join(jobdir, RESULT_FILE))
        self._clear(os.path.join(jobdir, PREEMPT_FLAG))

        backoff_delay = getattr(record, "next_backoff", 0.0)
        record.next_backoff = 0.0
        resumed_from = self._checkpoint_frame(jobdir)

        process = self._ctx.Process(
            target=worker_entry,
            args=(spec.to_dict(), jobdir, self.config.budget_events),
            daemon=True)
        process.start()
        self.executed += 1
        monitor = HeartbeatMonitor(os.path.join(jobdir, HEARTBEAT_FILE),
                                   timeout=self.config.heartbeat_timeout)
        preempt_flagged = False
        hung = False
        stale_age = 0.0
        loop = asyncio.get_running_loop()
        started = loop.time()
        while process.is_alive():
            await asyncio.sleep(self.config.poll_interval)
            monitor.poll()
            if self._aborting:
                process.kill()               # second signal: stop now
                break
            over_deadline = (
                self.config.preempt_after is not None
                and loop.time() - started > self.config.preempt_after)
            if (self._draining or over_deadline) and not preempt_flagged:
                with open(os.path.join(jobdir, PREEMPT_FLAG), "w") as flag:
                    flag.write("preempt requested by supervisor\n")
                preempt_flagged = True
            if monitor.stale():
                process.kill()               # SIGKILL; heartbeats ceased
                hung = True
                stale_age = monitor.age()
                break
        process.join()                       # dead or just killed: quick
        exitcode_desc = process_exitcode_desc(process.exitcode)
        process.close()

        # A published result supersedes the staleness verdict: a worker
        # that finished just as the monitor killed it still did the work,
        # and the result file is this attempt's (cleared before spawn).
        result = self._read_result(jobdir)
        if result is not None:
            return JobAttempt(
                outcome=result.get("outcome", "error"),
                detail=result.get("detail", ""),
                resumed_from=result.get("resumed_from", 0),
                backoff_delay=backoff_delay,
                bundle=result.get("bundle"),
                payload_doc=result.get("payload"))

        # No result: the process died (or we killed it for hanging).
        kind = "hung" if hung else "crashed"
        failure = FleetWorkerFailure(
            kind,
            f"no heartbeat for {stale_age:.1f}s "
            f"(timeout {self.config.heartbeat_timeout}s); killed"
            if hung else
            f"worker exited {exitcode_desc} without a result "
            f"(resume point: frame {resumed_from})",
            last_heartbeat=monitor.last)
        bundle = self._write_attempt_bundle(record, jobdir, failure)
        return JobAttempt(outcome=kind, detail=str(failure),
                          resumed_from=resumed_from,
                          backoff_delay=backoff_delay, bundle=bundle)

    # -- helpers ------------------------------------------------------------

    def _arm_controls(self, record: JobRecord, jobdir: str) -> None:
        """Install (or retire) this attempt's injected-fault control."""
        controls = self.config.inject.get(record.spec.name, [])
        index = len(record.attempts) + record.preemptions
        path = os.path.join(jobdir, CONTROL_FILE)
        if index < len(controls) and controls[index]:
            with open(path, "w") as handle:
                json.dump(controls[index], handle)
        else:
            self._clear(path)

    @staticmethod
    def _clear(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    @staticmethod
    def _checkpoint_frame(jobdir: str) -> int:
        from repro.health import load_checkpoint
        from repro.soc.checkpoint import CheckpointError
        try:
            return load_checkpoint(
                os.path.join(jobdir, CHECKPOINT_FILE)).frame_index
        except (CheckpointError, OSError):
            return 0

    def _write_attempt_bundle(self, record: JobRecord, jobdir: str,
                              failure: FleetWorkerFailure) -> Optional[str]:
        """Triage bundle for an attempt that died without reporting."""
        from repro.health import load_checkpoint
        from repro.sanitize.triage import write_bundle
        from repro.soc.checkpoint import CheckpointError
        checkpoint = None
        try:
            checkpoint = load_checkpoint(
                os.path.join(jobdir, CHECKPOINT_FILE))
        except (CheckpointError, OSError):
            pass
        try:
            return write_bundle(
                os.path.join(jobdir, TRIAGE_DIR),
                seed=record.spec.seed, error=failure,
                command=f"python -m repro fleet --seeds {record.spec.seed} "
                        f"--models {record.spec.model} "
                        f"--frames {record.spec.frames}",
                config={"job": record.spec.to_dict(),
                        "attempt": len(record.attempts) + 1,
                        "supervisor": failure.details},
                checkpoint=checkpoint)
        except OSError:
            return None

    def _read_result(self, jobdir: str) -> Optional[dict]:
        try:
            with open(os.path.join(jobdir, RESULT_FILE)) as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None


def process_exitcode_desc(code) -> str:
    if code is None:
        return "with unknown status"
    if code < 0:
        import signal as _signal
        try:
            return f"on signal {_signal.Signals(-code).name}"
        except ValueError:
            return f"on signal {-code}"
    return f"with code {code}"


def run_sweep(specs, config: Optional[FleetConfig] = None,
              workdir: str = "fleet-work") -> FleetReport:
    """Submit ``specs`` and drive them all to terminal outcomes."""
    supervisor = FleetSupervisor(config or FleetConfig(), workdir)
    supervisor.submit_sweep(specs)
    return supervisor.run()
