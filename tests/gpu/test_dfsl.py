"""Tests for the DFSL controller (Algorithm 1)."""

import pytest

from repro.gpu.dfsl import DFSLController


def drive(controller, time_of_wt, frames):
    """Simulate frames where exec time is a function of WT size."""
    used = []
    for _ in range(frames):
        wt = controller.begin_frame()
        used.append(wt)
        controller.end_frame(time_of_wt(wt))
    return used


class TestDFSL:
    def test_validation(self):
        with pytest.raises(ValueError):
            DFSLController(min_wt=0, max_wt=5)
        with pytest.raises(ValueError):
            DFSLController(min_wt=5, max_wt=5)
        with pytest.raises(ValueError):
            DFSLController(run_frames=0)

    def test_evaluation_sweeps_wt_sizes(self):
        c = DFSLController(min_wt=1, max_wt=5, run_frames=10)
        used = drive(c, lambda wt: 100.0, frames=c.eval_frames)
        assert used == [1, 2, 3, 4]

    def test_run_phase_uses_best(self):
        # WT=3 is fastest.
        cost = {1: 100.0, 2: 90.0, 3: 50.0, 4: 80.0}
        c = DFSLController(min_wt=1, max_wt=5, run_frames=6)
        used = drive(c, lambda wt: cost[wt], frames=c.cycle_length)
        assert used[c.eval_frames:] == [3] * 6

    def test_reevaluation_after_run_phase(self):
        """A scene change between cycles must switch WTBest."""
        phase_cost = [{1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0},
                      {1: 40.0, 2: 30.0, 3: 20.0, 4: 10.0}]
        c = DFSLController(min_wt=1, max_wt=5, run_frames=4)
        cycle = c.cycle_length
        used = []
        for frame in range(2 * cycle):
            wt = c.begin_frame()
            used.append(wt)
            costs = phase_cost[frame // cycle]
            c.end_frame(costs[wt])
        assert used[c.eval_frames:cycle] == [1] * 4
        assert used[cycle + c.eval_frames:] == [4] * 4

    def test_in_evaluation_flag(self):
        c = DFSLController(min_wt=1, max_wt=3, run_frames=2)
        flags = []
        for _ in range(c.cycle_length):
            flags.append(c.in_evaluation)
            c.begin_frame()
            c.end_frame(1.0)
        assert flags == [True, True, False, False]

    def test_history_records_mode(self):
        c = DFSLController(min_wt=1, max_wt=3, run_frames=1)
        drive(c, lambda wt: float(wt), frames=3)
        modes = [entry[3] for entry in c.history]
        assert modes == ["eval", "eval", "run"]

    def test_ties_keep_first_best(self):
        c = DFSLController(min_wt=1, max_wt=4, run_frames=2)
        used = drive(c, lambda wt: 10.0, frames=c.cycle_length)
        assert used[c.eval_frames:] == [1, 1]
