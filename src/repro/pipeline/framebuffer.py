"""Color and depth buffers with byte-accurate addressing and image export.

The color buffer is RGBA8 laid out row-major (scanout order), which gives
the display controller its sequential read pattern while the GPU's tile-
order writes are only piecewise-sequential — the asymmetry case study I's
HMC analysis hinges on.
"""

from __future__ import annotations

import numpy as np

PIXEL_BYTES = 4


class Framebuffer:
    """An RGBA color buffer plus a float depth buffer."""

    # Distinct default regions so color/depth/stencil never alias in the
    # shared L2 / DRAM even when no context addresses are supplied.
    DEFAULT_COLOR_BASE = 0x2000_0000
    DEFAULT_DEPTH_BASE = 0x2800_0000
    DEFAULT_STENCIL_BASE = 0x2C00_0000

    def __init__(self, width: int, height: int,
                 color_base: int = DEFAULT_COLOR_BASE,
                 depth_base: int = DEFAULT_DEPTH_BASE,
                 stencil_base: int = DEFAULT_STENCIL_BASE) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.color = np.zeros((height, width, 4))
        self.depth = np.ones((height, width))
        self.stencil = np.zeros((height, width), dtype=np.int64)
        self.color_base = color_base
        self.depth_base = depth_base
        self.stencil_base = stencil_base

    def clear(self, color=(0.0, 0.0, 0.0, 1.0), depth: float = 1.0,
              stencil: int = 0) -> None:
        self.color[:] = np.asarray(color, dtype=np.float64)
        self.depth[:] = depth
        self.stencil[:] = stencil

    def bind_addresses(self, color_base: int, depth_base: int,
                       stencil_base: int) -> None:
        """Adopt the owning GL context's buffer addresses (nonzero only)."""
        if color_base:
            self.color_base = color_base
        if depth_base:
            self.depth_base = depth_base
        if stencil_base:
            self.stencil_base = stencil_base

    @property
    def size_bytes(self) -> int:
        return self.width * self.height * PIXEL_BYTES

    def color_address(self, x, y):
        """Byte address(es) of pixel color; accepts scalars or arrays."""
        return self.color_base + (np.asarray(y) * self.width + np.asarray(x)) * PIXEL_BYTES

    def depth_address(self, x, y):
        return self.depth_base + (np.asarray(y) * self.width + np.asarray(x)) * PIXEL_BYTES

    def stencil_address(self, x, y):
        # One byte per stencil value, packed row-major.
        return self.stencil_base + np.asarray(y) * self.width + np.asarray(x)

    def read_stencil(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        return self.stencil[ys, xs]

    def write_stencil(self, xs: np.ndarray, ys: np.ndarray,
                      values: np.ndarray) -> None:
        self.stencil[ys, xs] = np.asarray(values, dtype=np.int64) & 0xFF

    def read_color(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        return self.color[ys, xs]

    def write_color(self, xs: np.ndarray, ys: np.ndarray,
                    rgba: np.ndarray) -> None:
        self.color[ys, xs] = np.clip(rgba, 0.0, 1.0)

    def read_depth(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        return self.depth[ys, xs]

    def write_depth(self, xs: np.ndarray, ys: np.ndarray,
                    values: np.ndarray) -> None:
        self.depth[ys, xs] = values

    def to_rgba8(self) -> np.ndarray:
        return (np.clip(self.color, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)

    def save_ppm(self, path: str) -> None:
        """Write the color buffer as a binary PPM (RGB, alpha dropped)."""
        rgb = self.to_rgba8()[:, :, :3]
        with open(path, "wb") as handle:
            handle.write(f"P6\n{self.width} {self.height}\n255\n".encode())
            handle.write(rgb.tobytes())

    def coverage(self) -> float:
        """Fraction of pixels whose depth was written (cheap render check)."""
        return float(np.mean(self.depth < 1.0))
