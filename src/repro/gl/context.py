"""The GL context: resource and state management plus draw-call assembly.

:class:`GLContext` is the reproduction's Mesa: applications (examples, the
Android-like app model, trace replay) talk to it, and it emits fully
resolved :class:`DrawCall` records that either the reference renderer or the
GPU timing model consume.  It also owns a bump allocator that gives every
buffer, texture and framebuffer a unique byte address range, so downstream
timing models see a consistent address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geometry.mesh import Mesh, PrimitiveMode
from repro.gl.buffers import IndexBuffer, VertexBuffer
from repro.gl.state import GLState
from repro.gl.textures import Texture2D

ALIGN = 128     # allocate on cache-line boundaries


@dataclass
class DrawCall:
    """Everything needed to render one glDrawElements-equivalent call.

    ``uniform_base`` is the byte address of this call's uniform block in the
    GPU address space; constant-cache traffic is derived from it.
    """

    name: str
    vbo: VertexBuffer
    ibo: IndexBuffer
    mode: PrimitiveMode
    vs_source: str
    fs_source: str
    uniforms: dict[str, np.ndarray]
    textures: dict[str, Texture2D]
    state: GLState
    uniform_base: int = 0

    @property
    def num_primitives(self) -> int:
        if self.mode is PrimitiveMode.TRIANGLES:
            return self.ibo.count // 3
        return max(0, self.ibo.count - 2)

    def flat_uniform(self, name: str) -> np.ndarray:
        """A uniform's value flattened to a 1-D float array (row-major)."""
        if name not in self.uniforms:
            raise KeyError(
                f"draw call {self.name!r} has no uniform {name!r}; "
                f"known: {sorted(self.uniforms)}")
        return np.asarray(self.uniforms[name], dtype=np.float64).reshape(-1)


@dataclass
class Frame:
    """One rendered frame: ordered draw calls plus clear state."""

    width: int
    height: int
    draw_calls: list[DrawCall] = field(default_factory=list)
    clear_color: tuple[float, float, float, float] = (0.0, 0.0, 0.0, 1.0)
    clear_depth: float = 1.0
    clear_stencil: int = 0
    index: int = 0
    # GPU-visible buffer addresses (from the owning context's allocator);
    # the display controller scans ``color_base``.
    color_base: int = 0
    depth_base: int = 0
    stencil_base: int = 0

    @property
    def num_primitives(self) -> int:
        return sum(dc.num_primitives for dc in self.draw_calls)


class AddressAllocator:
    """Deterministic bump allocator for the GPU-visible address space."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base

    def allocate(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise ValueError(f"allocation size must be positive, got {size_bytes}")
        address = self._next
        self._next += (size_bytes + ALIGN - 1) // ALIGN * ALIGN
        return address


class GLContext:
    """API state machine and draw-call recorder.

    Typical use::

        ctx = GLContext(256, 192)
        ctx.use_program(vs_src, fs_src)
        ctx.set_uniform("mvp", mvp)
        ctx.bind_texture("albedo", checkerboard())
        ctx.draw_mesh(mesh)
        frame = ctx.end_frame()
    """

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.state = GLState(viewport=(width, height))
        self.allocator = AddressAllocator()
        self.framebuffer_address = self.allocator.allocate(width * height * 4)
        self.depthbuffer_address = self.allocator.allocate(width * height * 4)
        self.stencilbuffer_address = self.allocator.allocate(width * height)
        self._vs_source: Optional[str] = None
        self._fs_source: Optional[str] = None
        self._uniforms: dict[str, np.ndarray] = {}
        self._textures: dict[str, Texture2D] = {}
        self._draw_calls: list[DrawCall] = []
        self._frame_index = 0
        # Keyed by id(mesh); the mesh itself is kept in the value so the id
        # stays valid (a collected mesh would let Python reuse its id and
        # silently alias another mesh to the wrong buffers).
        self._buffer_cache: dict[int, tuple[Mesh, VertexBuffer, IndexBuffer]] = {}

    # -- state ------------------------------------------------------------

    def set_state(self, **changes) -> None:
        """Update render state, e.g. ``set_state(blend=True)``."""
        self.state = self.state.with_(**changes)

    def use_program(self, vs_source: str, fs_source: str) -> None:
        self._vs_source = vs_source
        self._fs_source = fs_source

    def set_uniform(self, name: str, value) -> None:
        self._uniforms[name] = np.asarray(value, dtype=np.float64)

    def bind_texture(self, name: str, texture: Texture2D) -> None:
        if texture.base_address == 0:
            texture.base_address = self.allocator.allocate(texture.size_bytes)
        self._textures[name] = texture

    # -- drawing ----------------------------------------------------------

    def buffers_for_mesh(self, mesh: Mesh) -> tuple[VertexBuffer, IndexBuffer]:
        """VBO/IBO for a mesh, cached so repeat frames reuse addresses."""
        key = id(mesh)
        if key not in self._buffer_cache:
            arrays: dict[str, np.ndarray] = {"position": mesh.positions}
            if mesh.normals is not None:
                arrays["normal"] = mesh.normals
            if mesh.uvs is not None:
                arrays["uv"] = mesh.uvs
            if mesh.colors is not None:
                arrays["color"] = mesh.colors
            vbo = VertexBuffer(arrays, name=f"{mesh.name}_vbo")
            vbo.base_address = self.allocator.allocate(vbo.size_bytes)
            ibo = IndexBuffer(mesh.indices, name=f"{mesh.name}_ibo")
            ibo.base_address = self.allocator.allocate(ibo.size_bytes)
            self._buffer_cache[key] = (mesh, vbo, ibo)
        _, vbo, ibo = self._buffer_cache[key]
        return vbo, ibo

    def draw_mesh(self, mesh: Mesh, name: Optional[str] = None) -> DrawCall:
        """Record a draw call for a mesh with the current state/program."""
        if self._vs_source is None or self._fs_source is None:
            raise RuntimeError("no shader program bound; call use_program() first")
        vbo, ibo = self.buffers_for_mesh(mesh)
        uniform_floats = sum(
            np.asarray(v).size for v in self._uniforms.values())
        uniform_base = self.allocator.allocate(max(uniform_floats, 1) * 4)
        call = DrawCall(
            uniform_base=uniform_base,
            name=name or mesh.name,
            vbo=vbo,
            ibo=ibo,
            mode=mesh.mode,
            vs_source=self._vs_source,
            fs_source=self._fs_source,
            uniforms=dict(self._uniforms),
            textures=dict(self._textures),
            state=self.state,
        )
        self._draw_calls.append(call)
        return call

    def end_frame(self) -> Frame:
        """Finish the current frame and return it; clears the call list."""
        frame = Frame(
            width=self.width,
            height=self.height,
            draw_calls=self._draw_calls,
            clear_color=self.state.clear_color,
            clear_depth=self.state.clear_depth,
            clear_stencil=self.state.clear_stencil,
            index=self._frame_index,
            color_base=self.framebuffer_address,
            depth_base=self.depthbuffer_address,
            stencil_base=self.stencilbuffer_address,
        )
        self._draw_calls = []
        self._frame_index += 1
        return frame
