"""Topology-aware job specs: validation, identity, cache keys."""

import pytest

from repro.common.config import SoCTopology
from repro.fleet import JobSpec, JobSpecError, cache_key, config_hash
from repro.fleet.manifest import result_payload


def _topology_doc(**overrides):
    doc = SoCTopology(name="point").to_dict()
    doc.update(overrides)
    return doc


class TestTopologySpecs:
    def test_round_trips_through_dict(self):
        spec = JobSpec(name="p", topology=_topology_doc(),
                       collect_metrics=True)
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.topology == _topology_doc()

    def test_invalid_topology_is_a_typed_spec_error(self):
        bad = _topology_doc()
        bad["warp_drive"] = True
        with pytest.raises(JobSpecError) as excinfo:
            JobSpec(name="p", topology=bad)
        assert "warp_drive" in str(excinfo.value)

    def test_topology_must_be_an_object(self):
        with pytest.raises(JobSpecError):
            JobSpec(name="p", topology="g2c2")

    def test_collect_metrics_must_be_bool(self):
        with pytest.raises(JobSpecError):
            JobSpec(name="p", collect_metrics=1)

    def test_topology_is_identity(self):
        plain = JobSpec(name="p")
        declared = JobSpec(name="p", topology=_topology_doc())
        assert "topology" in plain.identity()
        assert config_hash(plain) != config_hash(declared)
        assert cache_key(plain) != cache_key(declared)

    def test_same_topology_same_key_regardless_of_name(self):
        a = JobSpec(name="alpha", topology=_topology_doc())
        b = JobSpec(name="beta", topology=_topology_doc())
        assert cache_key(a) == cache_key(b)

    def test_collect_metrics_is_identity(self):
        quiet = JobSpec(name="p")
        measured = JobSpec(name="p", collect_metrics=True)
        assert cache_key(quiet) != cache_key(measured)

    def test_payload_metrics_block_is_optional(self):
        spec = JobSpec(name="p", collect_metrics=True)
        bare = result_payload(spec, 0xDEAD)
        assert "metrics" not in bare
        measured = result_payload(spec, 0xDEAD, metrics={"fps": 1.0})
        assert measured["metrics"] == {"fps": 1.0}
        # The resume-invariance contract: no top-level end_tick.
        assert "end_tick" not in measured
