"""Equivalence tests for the vectorized texture fast paths."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gl.textures import Texture2D, checkerboard, marble


class TestVectorizedAddresses:
    @given(st.lists(st.tuples(st.integers(-5, 70), st.integers(-5, 70)),
                    min_size=1, max_size=32))
    def test_matches_scalar_path(self, coords):
        texture = marble(size=64)
        texture.base_address = 0x5000
        txs = np.array([c[0] for c in coords])
        tys = np.array([c[1] for c in coords])
        vectorized = texture.texel_addresses(txs, tys)
        scalar = [texture.texel_address(int(tx), int(ty))
                  for tx, ty in coords]
        assert vectorized.tolist() == scalar

    def test_non_square_texture(self):
        texture = Texture2D(np.zeros((8, 16, 4)))
        addresses = texture.texel_addresses(np.arange(16), np.zeros(16,
                                            dtype=int))
        assert len(set(addresses.tolist())) == 16


class TestBilinearArrays:
    @given(st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4),
           st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4))
    def test_matches_footprint_path(self, us, vs):
        texture = checkerboard(size=16, squares=4)
        u = np.array(us)
        v = np.array(vs)
        rgba_a, footprint = texture.sample_bilinear(u, v)
        rgba_b, (x0, x1, y0, y1) = texture.sample_bilinear_arrays(u, v)
        assert np.allclose(rgba_a, rgba_b)
        for lane in range(4):
            expected = {(int(x0[lane]), int(y0[lane])),
                        (int(x1[lane]), int(y0[lane])),
                        (int(x0[lane]), int(y1[lane])),
                        (int(x1[lane]), int(y1[lane]))}
            assert set(footprint[lane]) == expected

    def test_scalar_input(self):
        texture = checkerboard(size=8, squares=2)
        rgba, (x0, x1, y0, y1) = texture.sample_bilinear_arrays(0.4, 0.6)
        assert rgba.shape == (4,)
