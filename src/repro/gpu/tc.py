"""The tile-coalescing (TC) stage (paper §3.3.5, Fig. 7).

Each SIMT cluster has a TC unit: a tile distributor stages incoming raster
tiles onto TC engines (TCEs); each TCE coalesces raster tiles belonging to
one screen-space TC tile — possibly from multiple primitives — into a
single shading batch.  A TCE flushes when its staging bins fill, when a
conflicting (overlapping) raster tile arrives, or after a timeout with no
new tiles.  Before a flushed TC tile is issued to the SIMT core, the unit
checks that no earlier TC tile for the same screen position is still in
flight — this exclusivity is what makes in-shader depth/blend race-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.events import EventQueue
from repro.common.stats import StatGroup
from repro.pipeline.raster import FragmentBlock


@dataclass
class TCTile:
    """A coalesced batch of fragments for one screen-space TC tile."""

    tc_col: int
    tc_row: int
    blocks: list[FragmentBlock] = field(default_factory=list)
    sequence: int = 0          # flush order (per unit)

    @property
    def position(self) -> tuple[int, int]:
        return (self.tc_col, self.tc_row)

    @property
    def fragment_count(self) -> int:
        return sum(block.count for block in self.blocks)

    @property
    def raster_tiles(self) -> set[tuple[int, int]]:
        return {(block.tile_x, block.tile_y) for block in self.blocks}


class _TCEngine:
    """One TCE: stages raster tiles for a single TC tile position."""

    __slots__ = ("position", "staged", "last_activity")

    def __init__(self) -> None:
        self.position: Optional[tuple[int, int]] = None
        self.staged: dict[tuple[int, int], FragmentBlock] = {}
        self.last_activity: int = 0

    @property
    def empty(self) -> bool:
        return self.position is None

    def reset(self) -> None:
        self.position = None
        self.staged = {}


class TCUnit:
    """Distributor + TCEs + exclusivity gate for one cluster."""

    def __init__(self, events: EventQueue, cluster_id: int,
                 tc_tile_raster_tiles: int, num_engines: int,
                 bins_per_engine: int, flush_timeout: int,
                 dispatch: Callable[[TCTile], None],
                 stats: Optional[StatGroup] = None) -> None:
        self.events = events
        self.cluster_id = cluster_id
        self.ratio = tc_tile_raster_tiles
        self.engines = [_TCEngine() for _ in range(num_engines)]
        self.bins_per_engine = bins_per_engine
        self.flush_timeout = flush_timeout
        self.dispatch = dispatch
        self.stats = stats or StatGroup(f"tc{cluster_id}")
        self._in_flight: set[tuple[int, int]] = set()
        self._waiting: dict[tuple[int, int], deque[TCTile]] = {}
        self._overflow: deque[FragmentBlock] = deque()
        self._sequence = 0

    # -- input ---------------------------------------------------------------

    def tc_position_of(self, block: FragmentBlock) -> tuple[int, int]:
        return (block.tile_x // self.ratio, block.tile_y // self.ratio)

    def submit_block(self, block: FragmentBlock) -> None:
        """Stage one raster tile's fragments (the distributor, Fig. 7-2)."""
        position = self.tc_position_of(block)
        engine = self._engine_for(position)
        if engine is None:
            # No TCE free: flush the least-recently-active engine to make room.
            engine = min((e for e in self.engines if not e.empty),
                         key=lambda e: e.last_activity)
            self._flush(engine)
        if engine.empty:
            engine.position = position
        key = (block.tile_x, block.tile_y)
        if key in engine.staged:
            # Conflict: overlapping raster tile -> new TC tile generation.
            self.stats.counter("conflicts").add()
            self._flush(engine)
            engine.position = position
        engine.staged[key] = block
        engine.last_activity = self.events.now
        self.stats.counter("blocks").add()
        if len(engine.staged) >= self.bins_per_engine:
            self._flush(engine)
        else:
            self.events.schedule(self.flush_timeout, self._timeout_check,
                                 engine, self.events.now)

    def _engine_for(self, position: tuple[int, int]) -> Optional[_TCEngine]:
        for engine in self.engines:
            if engine.position == position:
                return engine
        for engine in self.engines:
            if engine.empty:
                return engine
        return None

    def _timeout_check(self, engine: _TCEngine, stamp: int) -> None:
        if not engine.empty and engine.last_activity <= stamp:
            self.stats.counter("timeout_flushes").add()
            self._flush(engine)

    # -- flush & dispatch ---------------------------------------------------------

    def _flush(self, engine: _TCEngine) -> None:
        if engine.empty or not engine.staged:
            engine.reset()
            return
        tile = TCTile(tc_col=engine.position[0], tc_row=engine.position[1],
                      blocks=list(engine.staged.values()),
                      sequence=self._sequence)
        self._sequence += 1
        engine.reset()
        self.stats.counter("tiles").add()
        self.stats.histogram("fragments_per_tile").record(tile.fragment_count)
        self._try_dispatch(tile)

    def flush_all(self) -> None:
        """Drain every engine (end of draw)."""
        for engine in self.engines:
            if not engine.empty:
                self._flush(engine)

    def _try_dispatch(self, tile: TCTile) -> None:
        if tile.position in self._in_flight:
            self.stats.counter("exclusivity_stalls").add()
            self._waiting.setdefault(tile.position, deque()).append(tile)
            return
        self._in_flight.add(tile.position)
        self.dispatch(tile)

    def tile_retired(self, tile: TCTile) -> None:
        """Cluster calls this when all of a TC tile's warps retired."""
        self._in_flight.discard(tile.position)
        queue = self._waiting.get(tile.position)
        if queue:
            next_tile = queue.popleft()
            if not queue:
                del self._waiting[tile.position]
            self._try_dispatch(next_tile)

    # -- state inspection ------------------------------------------------------

    @property
    def busy(self) -> bool:
        if self._in_flight or self._waiting:
            return True
        return any(not engine.empty for engine in self.engines)
