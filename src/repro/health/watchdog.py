"""Simulation watchdog: in-flight request lifecycles and hang detection.

A long full-system run can hang in two ways that a bare event loop cannot
distinguish from progress: a memory request whose reply is lost (the issuer
waits forever while unrelated events keep firing) and a livelock where the
tick advances but no requests retire.  The watchdog tracks every request
entering the system interconnect, gives each a deadline, and — instead of
letting the frame hang — raises a :class:`WatchdogTimeout` naming the stuck
component, the request, and its age.

The watchdog rides the event queue as a :class:`~repro.common.events.Ticker`
that is only armed while requests are in flight, so an idle system still
drains its queue (``EventQueue.run()`` terminates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import EventQueue, SimulationError, Ticker
from repro.common.stats import StatGroup
from repro.memory.request import MemRequest


@dataclass(frozen=True)
class WatchdogReport:
    """What the watchdog saw when it fired."""

    kind: str                   # "request-timeout" | "no-progress"
    tick: int
    owner: str
    address: int
    age: int                    # ticks since the request was tracked
    attempt: int                # NoC retry attempts observed
    in_flight: int              # total requests outstanding

    def describe(self) -> str:
        if self.kind == "request-timeout":
            return (f"request from {self.owner} addr=0x{self.address:x} "
                    f"in flight for {self.age} ticks "
                    f"(attempt {self.attempt}) at tick {self.tick}; "
                    f"{self.in_flight} requests outstanding")
        return (f"no request retired for {self.age} ticks at tick "
                f"{self.tick} with {self.in_flight} in flight "
                f"(oldest: {self.owner} addr=0x{self.address:x})")


class WatchdogTimeout(SimulationError):
    """Raised (under the fail-fast policy) when the watchdog fires."""

    def __init__(self, report: WatchdogReport) -> None:
        super().__init__(f"watchdog: {report.describe()}",
                         tick=report.tick, owner=report.owner)
        self.report = report


@dataclass
class _Tracked:
    request: MemRequest
    tracked_at: int
    deadline: int


class Watchdog:
    """Tracks request lifecycles; fires on per-request deadline or stall.

    ``on_timeout`` (when given) receives each :class:`WatchdogReport` and
    suppresses the exception — quarantine-style observation for tests and
    soft-degrade policies.  Without it the watchdog raises
    :class:`WatchdogTimeout`, which propagates out of the event loop and
    aborts the run with provenance instead of a hang.
    """

    def __init__(self, events: EventQueue,
                 request_timeout: int = 150_000,
                 check_period: int = 5_000,
                 stall_window: Optional[int] = None,
                 on_timeout: Optional[Callable[[WatchdogReport], None]] = None
                 ) -> None:
        if request_timeout <= 0 or check_period <= 0:
            raise ValueError("request_timeout and check_period must be "
                             "positive")
        self.events = events
        self.request_timeout = request_timeout
        self.check_period = check_period
        self.stall_window = stall_window
        self.on_timeout = on_timeout
        self.stats = StatGroup("watchdog")
        self.reports: list[WatchdogReport] = []
        self._inflight: dict[int, _Tracked] = {}
        self._last_progress = 0
        self._ticker = Ticker(events, period=check_period,
                              callback=self._check, owner="watchdog")

    # -- lifecycle hooks (called by the NoC / memory system) -------------------

    def track(self, request: MemRequest) -> None:
        """A request entered the system; start its deadline clock."""
        now = self.events.now
        deadline = request.deadline if request.deadline is not None \
            else now + self.request_timeout
        self._inflight[id(request)] = _Tracked(request, now, deadline)
        self._last_progress = now
        self.stats.counter("tracked").add()
        self._ticker.kick(self.check_period)

    def retire(self, request: MemRequest) -> None:
        """The issuer saw the reply; the request is no longer suspect."""
        if self._inflight.pop(id(request), None) is not None:
            self._last_progress = self.events.now
            self.stats.counter("retired").add()

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def oldest(self) -> Optional[MemRequest]:
        for tracked in self._inflight.values():
            return tracked.request
        return None

    # -- periodic check ---------------------------------------------------------

    def _check(self) -> bool:
        now = self.events.now
        for tracked in self._inflight.values():
            if now >= tracked.deadline:
                self._fire(WatchdogReport(
                    kind="request-timeout", tick=now,
                    owner=tracked.request.owner,
                    address=tracked.request.address,
                    age=now - tracked.tracked_at,
                    attempt=tracked.request.attempt,
                    in_flight=len(self._inflight)))
                return bool(self._inflight)
        if (self.stall_window is not None and self._inflight
                and now - self._last_progress >= self.stall_window):
            oldest = next(iter(self._inflight.values()))
            self._fire(WatchdogReport(
                kind="no-progress", tick=now,
                owner=oldest.request.owner,
                address=oldest.request.address,
                age=now - self._last_progress,
                attempt=oldest.request.attempt,
                in_flight=len(self._inflight)))
        return bool(self._inflight)

    def _fire(self, report: WatchdogReport) -> None:
        self.reports.append(report)
        self.stats.counter("fired").add()
        if self.on_timeout is not None:
            self.on_timeout(report)
            # Soft policy: forget the offender so one stuck request is
            # reported once, not every check period.
            if report.kind == "request-timeout":
                self._inflight = {
                    key: tracked for key, tracked in self._inflight.items()
                    if tracked.request.address != report.address
                    or tracked.request.owner != report.owner}
            else:
                self._last_progress = self.events.now
            return
        raise WatchdogTimeout(report)
