"""Tests for the in-shader raster-operations epilogue."""

import numpy as np
import pytest

from repro.gl.state import BlendFactor, DepthFunc, GLState
from repro.shader.compiler import compile_shader
from repro.shader.interpreter import WarpInterpreter
from repro.shader.isa import Opcode
from repro.shader.rop_epilogue import attach_rop, uses_late_z

from tests.shader.fake_env import FakeEnv

SIMPLE_FS = """
void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 0.5); }
"""

DISCARD_FS = """
in float v_a;
void main() {
    if (v_a < 0.5) { discard; }
    gl_FragColor = vec4(1.0, 1.0, 1.0, 1.0);
}
"""

DEPTH_FS = """
void main() {
    gl_FragColor = vec4(1.0, 1.0, 1.0, 1.0);
    gl_FragDepth = 0.2;
}
"""


def run_rop(fs_source, state, env, name="rop_test"):
    base = compile_shader(fs_source, "fragment", name=name)
    program = attach_rop(base, state)
    z_base, _ = program.varyings.lookup("frag_z")
    result = WarpInterpreter(program, env).run()
    return program, result


class TestEarlyVsLateZ:
    def test_simple_shader_uses_early_z(self):
        program = compile_shader(SIMPLE_FS, "fragment", name="z1")
        assert not uses_late_z(program, GLState())

    def test_discard_forces_late_z(self):
        program = compile_shader(DISCARD_FS, "fragment", name="z2")
        assert uses_late_z(program, GLState())

    def test_depth_write_forces_late_z(self):
        program = compile_shader(DEPTH_FS, "fragment", name="z3")
        assert uses_late_z(program, GLState())

    def test_early_z_prologue_comes_first(self):
        base = compile_shader(SIMPLE_FS, "fragment", name="z4")
        program = attach_rop(base, GLState())
        # First instructions: LD_VARY frag_z, ZREAD, compare, discard.
        ops = [i.op for i in program.instructions[:4]]
        assert ops == [Opcode.LD_VARY, Opcode.ZREAD, Opcode.SETP_LT,
                       Opcode.DISCARD]

    def test_late_z_epilogue_comes_after_body(self):
        base = compile_shader(DISCARD_FS, "fragment", name="z5")
        program = attach_rop(base, GLState())
        zread_pc = next(i for i, ins in enumerate(program.instructions)
                        if ins.op is Opcode.ZREAD)
        tex_like_pc = next(i for i, ins in enumerate(program.instructions)
                           if ins.op is Opcode.DISCARD)
        assert zread_pc > tex_like_pc


class TestDepthFunctional:
    def test_depth_test_kills_occluded_fragments(self):
        env = FakeEnv(depth=np.array([0.3, 0.9] * 4))
        env.varyings = {0: np.full(8, 0.5)}    # frag_z = 0.5
        program, result = run_rop(SIMPLE_FS, GLState(), env, name="d1")
        # Fragments with buffer depth 0.3 fail LESS(0.5, 0.3).
        assert result.discarded.tolist() == [True, False] * 4
        # Survivors write color and depth.
        assert np.allclose(env.color[1, 0], 1.0)
        assert np.allclose(env.depth[1], 0.5)
        # Killed fragments leave buffers alone.
        assert np.allclose(env.color[0, 0], 0.0)
        assert np.allclose(env.depth[0], 0.3)

    def test_depth_write_disabled(self):
        env = FakeEnv(depth=np.full(8, 0.9))
        env.varyings = {0: np.full(8, 0.5)}
        run_rop(SIMPLE_FS, GLState(depth_write=False), env, name="d2")
        assert np.allclose(env.depth, 0.9)     # untouched

    def test_depth_test_disabled_writes_all(self):
        env = FakeEnv(depth=np.array([0.1] * 8))
        env.varyings = {0: np.full(8, 0.5)}
        program, result = run_rop(
            SIMPLE_FS, GLState(depth_test=False), env, name="d3")
        assert not result.discarded.any()
        assert np.allclose(env.color[:, 0], 1.0)
        # No depth traffic at all when the test is off.
        assert not any(i.op in (Opcode.ZREAD, Opcode.ZWRITE)
                       for i in program.instructions)

    def test_greater_func(self):
        env = FakeEnv(depth=np.array([0.3, 0.9] * 4))
        env.varyings = {0: np.full(8, 0.5)}
        _, result = run_rop(SIMPLE_FS,
                            GLState(depth_func=DepthFunc.GREATER), env,
                            name="d4")
        assert result.discarded.tolist() == [False, True] * 4

    def test_never_discards_everything(self):
        env = FakeEnv()
        env.varyings = {0: np.full(8, 0.5)}
        _, result = run_rop(SIMPLE_FS,
                            GLState(depth_func=DepthFunc.NEVER), env,
                            name="d5")
        assert result.discarded.all()

    def test_shader_written_depth_used_for_test(self):
        # gl_FragDepth = 0.2; buffer = 0.25 -> passes LESS; buffer 0.1 fails.
        env = FakeEnv(depth=np.array([0.25, 0.1] * 4))
        env.varyings = {0: np.full(8, 0.9)}    # interpolated z would fail
        _, result = run_rop(DEPTH_FS, GLState(), env, name="d6")
        assert result.discarded.tolist() == [False, True] * 4
        assert np.allclose(env.depth[0], 0.2)


class TestBlending:
    def test_alpha_blend(self):
        env = FakeEnv(color=np.tile([0.0, 1.0, 0.0, 1.0], (8, 1)))
        env.varyings = {0: np.full(8, 0.5)}
        state = GLState(depth_test=False, blend=True)
        run_rop(SIMPLE_FS, state, env, name="b1")
        # src=(1,0,0,.5): out.r = 1*0.5 + 0*0.5 = 0.5; out.g = 0+1*0.5 = 0.5
        assert np.allclose(env.color[:, 0], 0.5)
        assert np.allclose(env.color[:, 1], 0.5)

    def test_additive_blend(self):
        env = FakeEnv(color=np.full((8, 4), 0.25))
        env.varyings = {0: np.full(8, 0.5)}
        state = GLState(depth_test=False, blend=True,
                        blend_src=BlendFactor.ONE, blend_dst=BlendFactor.ONE)
        run_rop(SIMPLE_FS, state, env, name="b2")
        assert np.allclose(env.color[:, 0], 1.25)

    def test_no_blend_overwrites(self):
        env = FakeEnv(color=np.full((8, 4), 0.9))
        env.varyings = {0: np.full(8, 0.5)}
        run_rop(SIMPLE_FS, GLState(depth_test=False), env, name="b3")
        assert np.allclose(env.color[:, 0], 1.0)
        assert np.allclose(env.color[:, 1], 0.0)

    def test_blend_reads_framebuffer(self):
        base = compile_shader(SIMPLE_FS, "fragment", name="b4")
        blended = attach_rop(base, GLState(blend=True))
        plain = attach_rop(base, GLState(blend=False))
        assert any(i.op is Opcode.FB_READ for i in blended.instructions)
        assert not any(i.op is Opcode.FB_READ for i in plain.instructions)


class TestAttachRopStructure:
    def test_original_program_unmodified(self):
        base = compile_shader(SIMPLE_FS, "fragment", name="s1")
        before = len(base.instructions)
        attach_rop(base, GLState())
        assert len(base.instructions) == before

    def test_st_out_color_replaced_by_fb_write(self):
        base = compile_shader(SIMPLE_FS, "fragment", name="s2")
        program = attach_rop(base, GLState(depth_test=False))
        color_outs = [i for i in program.instructions
                      if i.op is Opcode.ST_OUT and i.slot < 4]
        assert not color_outs
        assert any(i.op is Opcode.FB_WRITE for i in program.instructions)

    def test_vertex_program_rejected(self):
        vs = compile_shader("in vec3 position;\n"
                            "void main() { gl_Position = vec4(position, 1.0); }",
                            "vertex", name="s3")
        with pytest.raises(ValueError):
            attach_rop(vs, GLState())

    def test_frag_z_varying_allocated(self):
        base = compile_shader(SIMPLE_FS, "fragment", name="s4")
        program = attach_rop(base, GLState())
        assert "frag_z" in program.varyings
