"""Fragment-stage execution environment and varying linkage.

:func:`build_varying_link` resolves each fragment-program varying scalar to
its producer (a vertex-program varying slot, the interpolated depth, or a
``gl_FragCoord`` component).  :class:`FragmentShaderEnv` services a warp of
fragments: varyings from the rasterizer, textures with real texel
addresses, depth/color buffer access with real framebuffer addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gl.context import DrawCall
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.vertex import build_constant_bank
from repro.shader.interpreter import MemAccess
from repro.shader.isa import MemSpace
from repro.shader.program import Program

# Varying-source kinds.
_VS_SLOT = "vs"
_FRAG_Z = "fragz"
_FRAGCOORD = "fragcoord"


def build_varying_link(vs_program: Program, fs_program: Program) -> list[tuple[str, int]]:
    """Map each FS varying scalar slot to its source.

    Returns a list indexed by FS scalar slot holding ``(kind, index)``:
    ``("vs", vs_slot)``, ``("fragz", 0)`` or ``("fragcoord", component)``.
    """
    link: list[tuple[str, int]] = [("", 0)] * fs_program.varyings.total
    for name, (base, width) in fs_program.varyings.items():
        if name == "frag_z":
            link[base] = (_FRAG_Z, 0)
            continue
        if name == "gl_FragCoord":
            for comp in range(width):
                link[base + comp] = (_FRAGCOORD, comp)
            continue
        if name not in vs_program.varyings:
            raise ValueError(
                f"fragment shader reads varying {name!r} the vertex shader "
                f"never writes (VS provides {vs_program.varyings.names()})")
        vs_base, vs_width = vs_program.varyings.lookup(name)
        if width > vs_width:
            raise ValueError(
                f"varying {name!r}: FS wants {width} floats, VS writes {vs_width}")
        for comp in range(width):
            link[base + comp] = (_VS_SLOT, vs_base + comp)
    return link


@dataclass
class FragmentWarp:
    """One warp's worth of fragments headed for shading.

    All arrays have warp_size entries; ``active`` masks real fragments.
    ``varyings`` is in the *vertex* program's varying layout.
    """

    xs: np.ndarray
    ys: np.ndarray
    z: np.ndarray
    inv_w: np.ndarray
    varyings: np.ndarray
    active: np.ndarray

    @property
    def warp_size(self) -> int:
        return len(self.xs)

    @property
    def num_fragments(self) -> int:
        return int(self.active.sum())


def pack_fragments(xs, ys, z, inv_w, varyings, warp_size: int = 32) -> list[FragmentWarp]:
    """Chunk fragment arrays into warp-sized :class:`FragmentWarp` packets."""
    total = len(xs)
    num_vary = varyings.shape[1] if varyings.ndim == 2 else 1
    warps = []
    for start in range(0, total, warp_size):
        end = min(start + warp_size, total)
        count = end - start
        warp = FragmentWarp(
            xs=np.zeros(warp_size, dtype=np.int64),
            ys=np.zeros(warp_size, dtype=np.int64),
            z=np.zeros(warp_size),
            inv_w=np.ones(warp_size),
            varyings=np.zeros((warp_size, num_vary)),
            active=np.zeros(warp_size, dtype=bool),
        )
        warp.xs[:count] = xs[start:end]
        warp.ys[:count] = ys[start:end]
        warp.z[:count] = z[start:end]
        warp.inv_w[:count] = inv_w[start:end]
        warp.varyings[:count] = varyings[start:end]
        warp.active[:count] = True
        warps.append(warp)
    return warps


class FragmentShaderEnv:
    """ExecEnv for one fragment warp."""

    def __init__(self, draw: DrawCall, program: Program,
                 vs_program: Program, warp: FragmentWarp,
                 framebuffer: Framebuffer,
                 link: list[tuple[str, int]] | None = None) -> None:
        self.draw = draw
        self.program = program
        self.warp = warp
        self.fb = framebuffer
        self.warp_size = warp.warp_size
        self.link = link if link is not None else build_varying_link(
            vs_program, program)
        self.constant_bank = build_constant_bank(draw, program)
        self._unit_textures = {}
        for name, unit in program.textures.items():
            if name not in draw.textures:
                raise ValueError(
                    f"shader samples {name!r} but draw call binds "
                    f"{sorted(draw.textures)}")
            self._unit_textures[unit] = draw.textures[name]
        self.outputs: dict[int, np.ndarray] = {}

    # -- ExecEnv --------------------------------------------------------------

    def attribute(self, slot, mask):
        raise RuntimeError("fragment shaders have no vertex attributes")

    def varying(self, slot: int, mask: np.ndarray) -> np.ndarray:
        kind, index = self.link[slot]
        if kind == _VS_SLOT:
            return self.warp.varyings[:, index]
        if kind == _FRAG_Z:
            return self.warp.z
        if kind == _FRAGCOORD:
            if index == 0:
                return self.warp.xs + 0.5
            if index == 1:
                return self.warp.ys + 0.5
            if index == 2:
                return self.warp.z
            return self.warp.inv_w
        raise RuntimeError(f"unlinked varying slot {slot}")

    def constant(self, slot: int, mask: np.ndarray):
        value = float(self.constant_bank[slot])
        return value, [MemAccess(MemSpace.CONST,
                                 self.draw.uniform_base + slot * 4, 4)]

    def tex(self, unit: int, u: np.ndarray, v: np.ndarray, mask: np.ndarray):
        texture = self._unit_textures[unit]
        rgba, (x0, x1, y0, y1) = texture.sample_bilinear_arrays(u, v)
        lanes = np.flatnonzero(mask)
        addresses = np.concatenate([
            texture.texel_addresses(x0[lanes], y0[lanes]),
            texture.texel_addresses(x1[lanes], y0[lanes]),
            texture.texel_addresses(x0[lanes], y1[lanes]),
            texture.texel_addresses(x1[lanes], y1[lanes]),
        ]) if len(lanes) else np.empty(0, dtype=np.int64)
        accesses = [MemAccess(MemSpace.TEXTURE, int(a), 4)
                    for a in addresses]
        return rgba, accesses

    def zread(self, mask: np.ndarray):
        values = self.fb.read_depth(self.warp.xs, self.warp.ys)
        addresses = self.fb.depth_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.DEPTH, int(addresses[lane]), 4)
                    for lane in np.flatnonzero(mask)]
        return values, accesses

    def zwrite(self, values: np.ndarray, mask: np.ndarray):
        self.fb.write_depth(self.warp.xs[mask], self.warp.ys[mask],
                            values[mask])
        addresses = self.fb.depth_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.DEPTH, int(addresses[lane]), 4, write=True)
                for lane in np.flatnonzero(mask)]

    def sread(self, mask: np.ndarray):
        values = self.fb.read_stencil(self.warp.xs, self.warp.ys)
        addresses = self.fb.stencil_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.DEPTH, int(addresses[lane]), 1)
                    for lane in np.flatnonzero(mask)]
        return values.astype(np.float64), accesses

    def swrite(self, values: np.ndarray, mask: np.ndarray):
        self.fb.write_stencil(self.warp.xs[mask], self.warp.ys[mask],
                              values[mask])
        addresses = self.fb.stencil_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.DEPTH, int(addresses[lane]), 1, write=True)
                for lane in np.flatnonzero(mask)]

    def fb_read(self, mask: np.ndarray):
        rgba = self.fb.read_color(self.warp.xs, self.warp.ys)
        addresses = self.fb.color_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.COLOR, int(addresses[lane]), 4)
                    for lane in np.flatnonzero(mask)]
        return rgba, accesses

    def fb_write(self, rgba: np.ndarray, mask: np.ndarray):
        self.fb.write_color(self.warp.xs[mask], self.warp.ys[mask],
                            rgba[mask])
        addresses = self.fb.color_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.COLOR, int(addresses[lane]), 4, write=True)
                for lane in np.flatnonzero(mask)]

    def ld_global(self, addresses, mask):
        raise RuntimeError("generic global loads unused in fragment stage")

    def st_global(self, addresses, values, mask):
        raise RuntimeError("generic global stores unused in fragment stage")

    def store_output(self, slot: int, values: np.ndarray, mask: np.ndarray) -> None:
        if slot not in self.outputs:
            self.outputs[slot] = np.zeros(self.warp_size)
        self.outputs[slot][mask] = values[mask]
