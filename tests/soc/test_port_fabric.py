"""Port-fabric acceptance tests (the ISSUE's two hard gates).

1. The default (unbounded) fabric reproduces the seed's paper-table
   statistics — and its *event schedule* — bit-identically.  The golden
   numbers below were captured on the pre-port-fabric tree; any drift
   means the refactor changed timing, which is a regression by
   definition.
2. Bounded-bandwidth mode exhibits genuine queueing delay: under the
   Fig. 12 high-load configuration, mean link traversal latency rises
   strictly as the link's service rate falls.
"""

import zlib

import pytest

from repro.harness.scenes import SceneSession
from repro.soc.soc import EmeraldSoC
from tests.health.full_system import HEIGHT, WIDTH, build_soc, tiny_config

# Captured on the seed tree (commit 28c03a6) with build_soc(num_frames=2).
GOLDEN = {
    "end_tick": 240_000,
    "mean_gpu_time": 2599.0,
    "mean_total_time": 5289.0,
    "dram_bytes": {"cpu": 393_984, "gpu": 35_072, "display": 27_648},
    "row_hit_rate": 0.15115606936416184,
    "bytes_per_activation": 155.50017024174326,
    "display_requests": 108,
    "display_completed": 4,
    "display_aborted": 0,
    "mean_latency": {"cpu": 179.08452535760728,
                     "gpu": 1143.653284671533,
                     "display": 505.8703703703704},
    "fb_crc": 1444291790,
    "events_fired": 28_060,
}


@pytest.mark.slow
@pytest.mark.full_system
class TestSeedIdentity:
    def test_unbounded_fabric_reproduces_seed_bit_identically(self):
        soc = build_soc(num_frames=2)
        results = soc.run()
        assert results.end_tick == GOLDEN["end_tick"]
        assert results.mean_gpu_time == GOLDEN["mean_gpu_time"]
        assert results.mean_total_time == GOLDEN["mean_total_time"]
        assert results.dram_bytes == GOLDEN["dram_bytes"]
        assert results.row_hit_rate == GOLDEN["row_hit_rate"]
        assert results.bytes_per_activation == GOLDEN["bytes_per_activation"]
        assert results.display_requests == GOLDEN["display_requests"]
        assert results.display_completed == GOLDEN["display_completed"]
        assert results.display_aborted == GOLDEN["display_aborted"]
        assert results.mean_latency == GOLDEN["mean_latency"]
        # The strongest schedule-identity checks: the functional output
        # and the exact number of events the run fired.
        assert (zlib.crc32(soc.gpu.fb.color.tobytes())
                == GOLDEN["fb_crc"])
        assert soc.events.events_fired == GOLDEN["events_fired"]

    def test_unbounded_link_reports_no_queueing(self):
        soc = build_soc(num_frames=1)
        results = soc.run()
        link = results.link_stats["noc.link"]
        assert link["packets"] > 0
        assert "rejected" not in link        # bounded-only counters absent
        assert "stall_ticks" not in link


def _bounded_run(bytes_per_cycle):
    session = SceneSession("cube", WIDTH, HEIGHT)
    config = tiny_config(num_frames=2)
    config.noc_capacity = 32
    config.noc_bytes_per_cycle = bytes_per_cycle
    soc = EmeraldSoC(config, session.frame, session.framebuffer_address)
    return soc.run()


@pytest.mark.slow
@pytest.mark.full_system
class TestBoundedBandwidth:
    def test_queueing_delay_rises_as_service_rate_falls(self):
        """Fig. 12 high-load regime: narrower links mean longer queues.

        Mean traversal (queueing + serialization + wire latency) must be
        strictly monotone in the service rate; the issuer-side latency
        histograms can't show this because ``issue_time`` is stamped at
        memory entry — the link stats are the point of the exercise.
        """
        means = []
        for bytes_per_cycle in (8.0, 4.0, 2.0):
            results = _bounded_run(bytes_per_cycle)
            link = results.link_stats["noc.link"]
            means.append(link["traversal.mean"])
            assert link["stall_ticks"] > 0          # senders were held
            assert link["queue_occupancy.mean"] > 0
        assert means[0] < means[1] < means[2]

    def test_bounded_run_still_completes_frames(self):
        results = _bounded_run(4.0)
        assert results.end_tick == GOLDEN["end_tick"]
        assert results.display_completed > 0
