"""The durable fleet server: admission, scheduling, recovery, sockets."""

import asyncio
import json
import os

import pytest

from repro.fleet import (FleetConfig, FleetSaturated, JobSpec, JobSubmission,
                         ServerConfig, SubmissionError)
from repro.fleet.journal import JobJournal, replay_journal
from repro.fleet.server import (ACK_DIR, EXIT_DRAINED, EXIT_DRAINED_PENDING,
                                JOURNAL_DIR, QUARANTINE_DIR, SPOOL_DIR,
                                FleetServer)
from repro.fleet.supervisor import BackoffPolicy

FAST_BACKOFF = BackoffPolicy(base=0.01, factor=2.0, cap=0.04)


def tiny_spec(name, seed=1, frames=2, **kwargs):
    return JobSpec(name=name, frames=frames, seed=seed, **kwargs)


def make_server(tmp_path, *, cache="cache", expect=None, **fleet_kwargs):
    fleet_kwargs.setdefault("workers", 1)
    fleet_kwargs.setdefault("backoff", FAST_BACKOFF)
    if cache is not None:
        fleet_kwargs.setdefault("cache_dir", str(tmp_path / cache))
    config = ServerConfig(fleet=FleetConfig(**fleet_kwargs),
                          expect=expect, enable_socket=False,
                          spool_poll=0.02)
    return FleetServer(config, str(tmp_path / "work"))


class TestSubmissionParsing:
    def test_bare_spec_document(self):
        submission = JobSubmission.from_dict(tiny_spec("a").to_dict())
        assert submission.spec.name == "a"
        assert submission.priority == 0 and submission.owner == "anonymous"

    def test_envelope_with_policy(self):
        doc = {"spec": tiny_spec("a").to_dict(), "priority": 3,
               "owner": "bench", "deadline": 30}
        submission = JobSubmission.from_dict(doc)
        assert submission.priority == 3
        assert submission.owner == "bench"
        assert submission.deadline == 30.0

    @pytest.mark.parametrize("doc", [
        "not-a-dict",
        {"spec": {"name": "a"}, "priority": "high"},
        {"spec": {"name": "a"}, "owner": ""},
        {"spec": {"name": "a"}, "deadline": -1},
        {"spec": {"name": "a"}, "deadline": True},
        {"spec": {"name": "a"}, "turbo": True},
        {"spec": {"name": "a", "frames": "two"}},
    ])
    def test_malformed_submissions_are_typed_rejections(self, doc):
        with pytest.raises(SubmissionError):
            JobSubmission.from_dict(doc)


class TestAdmission:
    def test_idempotent_resubmission_dedups_on_cache_key(self, tmp_path):
        server = make_server(tmp_path)
        first = server.submit(JobSubmission(spec=tiny_spec("a")))
        assert first == {"ok": True, "name": "a", "key": first["key"],
                         "dedup": False, "outcome": "pending"}
        # Same physics under a different scheduling label: one job.
        again = server.submit(JobSubmission(spec=tiny_spec("a-renamed")))
        assert again["dedup"] and again["name"] == "a"
        assert len(server._ready) == 1
        server.journal.close()

    def test_name_collision_with_different_spec_rejected(self, tmp_path):
        server = make_server(tmp_path)
        server.submit(JobSubmission(spec=tiny_spec("a", seed=1)))
        with pytest.raises(SubmissionError, match="already taken"):
            server.submit(JobSubmission(spec=tiny_spec("a", seed=2)))
        server.journal.close()

    def test_saturated_queue_sheds_with_journal_record(self, tmp_path):
        server = make_server(tmp_path, queue_limit=1)
        server.submit(JobSubmission(spec=tiny_spec("a")))
        with pytest.raises(FleetSaturated):
            server.submit(JobSubmission(spec=tiny_spec("b", seed=2)))
        server.journal.close()
        replay = replay_journal(
            os.path.join(server.workdir, JOURNAL_DIR))
        assert replay.jobs["b"].outcome == "shed"
        # The shed slot is not poisoned: once load drops the same name
        # may be resubmitted (exercises the journal's shed->submit rule).
        server2 = make_server(tmp_path, queue_limit=10)
        ack = server2.submit(JobSubmission(spec=tiny_spec("b", seed=2)))
        assert ack["outcome"] == "pending"
        server2.journal.close()


class TestScheduling:
    def test_priority_then_fair_share_then_fifo(self, tmp_path):
        server = make_server(tmp_path)
        server.submit(JobSubmission(spec=tiny_spec("a1", seed=1),
                                    owner="alice"))
        server.submit(JobSubmission(spec=tiny_spec("a2", seed=2),
                                    owner="alice"))
        server.submit(JobSubmission(spec=tiny_spec("b1", seed=3),
                                    owner="bob"))
        server.submit(JobSubmission(spec=tiny_spec("hot", seed=4),
                                    priority=5, owner="alice"))
        # alice has already consumed a claim; bob has not.
        server._owner_share["alice"] = 1
        order = [server._pick().name for _ in range(4)]
        assert order == ["hot", "b1", "a1", "a2"]
        server.journal.close()

    def test_deadline_passed_while_queued_cancels_with_bundle(self, tmp_path):
        server = make_server(tmp_path)

        async def scenario():
            server.submit(JobSubmission(spec=tiny_spec("late"),
                                        deadline=0.01))
            job = server._pick()
            await asyncio.sleep(0.05)
            await server._drive(job)
            return job

        job = asyncio.run(scenario())
        assert job.record.outcome == "cancelled"
        assert "deadline" in job.record.cancel_reason
        triage = os.path.join(server._jobdir(job), "triage")
        assert os.path.isdir(triage) and os.listdir(triage)
        server.journal.close()
        replay = replay_journal(os.path.join(server.workdir, JOURNAL_DIR))
        assert replay.jobs["late"].outcome == "cancelled"


class TestSpoolIntake:
    def _drop(self, server, name, doc):
        path = os.path.join(server.workdir, SPOOL_DIR, name)
        with open(path, "w", encoding="utf-8") as handle:
            if isinstance(doc, str):
                handle.write(doc)
            else:
                json.dump(doc, handle)
        return path

    def test_drop_file_is_consumed_and_acked(self, tmp_path):
        server = make_server(tmp_path)
        path = self._drop(server, "a.json", tiny_spec("a").to_dict())
        assert server.poll_spool() == 1
        assert not os.path.exists(path)
        ack_path = os.path.join(server.workdir, SPOOL_DIR, ACK_DIR,
                                "a.json")
        with open(ack_path) as handle:
            ack = json.load(handle)
        assert ack["ok"] and ack["name"] == "a"
        assert len(server._ready) == 1
        server.journal.close()

    def test_malformed_drop_is_quarantined_not_a_crash(self, tmp_path):
        server = make_server(tmp_path)
        self._drop(server, "broken.json", '{"name": "x", "frames":')
        self._drop(server, "badfield.json", {"name": "y", "frames": -5})
        assert server.poll_spool() == 2
        quarantine = os.path.join(server.workdir, SPOOL_DIR,
                                  QUARANTINE_DIR)
        names = sorted(os.listdir(quarantine))
        assert "broken.json" in names and "badfield.json" in names
        with open(os.path.join(quarantine,
                               "broken.json.reason.json")) as handle:
            reason = json.load(handle)
        assert "JSON" in reason["reason"] or "Error" in reason["reason"]
        assert server._jobs == {}          # nothing admitted
        server.journal.close()
        replay = replay_journal(os.path.join(server.workdir, JOURNAL_DIR))
        kinds = [record["type"] for record in replay.records]
        assert kinds.count("quarantine") == 2


class TestServeEndToEnd:
    def test_sweep_completes_and_second_incarnation_serves_from_cache(
            self, tmp_path):
        specs = [tiny_spec("a", seed=1), tiny_spec("b", seed=2)]
        server = make_server(tmp_path, workers=2, expect=2)
        for spec in specs:
            server.submit(JobSubmission(spec=spec))
        assert server.serve(install_signals=False) == EXIT_DRAINED
        assert all(server._jobs[s.name].record.outcome == "ok"
                   for s in specs)
        assert server.sup.executed == 2
        replay = replay_journal(os.path.join(server.workdir, JOURNAL_DIR))
        assert replay.clean_shutdown and replay.cache_hits() == 0

        # A fresh workdir sharing the cache: pure cache-hit serving.
        config = ServerConfig(
            fleet=FleetConfig(workers=2,
                              cache_dir=str(tmp_path / "cache")),
            expect=2, enable_socket=False)
        server2 = FleetServer(config, str(tmp_path / "work2"))
        for spec in specs:
            server2.submit(JobSubmission(spec=spec))
        assert server2.serve(install_signals=False) == EXIT_DRAINED
        assert server2.sup.executed == 0
        replay2 = replay_journal(
            os.path.join(server2.workdir, JOURNAL_DIR))
        assert replay2.cache_hits() == 2

    def test_crash_recovery_resumes_journaled_jobs(self, tmp_path):
        """A journal with submits but no clean shutdown (a kill -9): the
        next incarnation rebuilds the job table and runs the sweep."""
        workdir = tmp_path / "work"
        journal, _ = JobJournal.open(str(workdir / JOURNAL_DIR))
        journal.append("server-start", server="srv-dead-i1", pid=1,
                       workdir=str(workdir))
        for spec in (tiny_spec("a", seed=1), tiny_spec("b", seed=2)):
            from repro.fleet.manifest import cache_key
            journal.append("submit", name=spec.name, key=cache_key(spec),
                           spec=spec.to_dict(), priority=0, owner="drill",
                           deadline=None, source="test")
        journal.close()      # no clean-shutdown record: this is a crash

        server = make_server(tmp_path, workers=2, expect=2)
        assert {job.name for job in server._ready} == {"a", "b"}
        assert all(job.recovered for job in server._jobs.values())
        assert server.serve(install_signals=False) == EXIT_DRAINED
        replay = replay_journal(str(workdir / JOURNAL_DIR))
        assert replay.incarnations == 2
        assert {name: job.outcome for name, job in replay.jobs.items()} \
            == {"a": "ok", "b": "ok"}

    def test_recovery_reconciles_from_cache_without_executing(
            self, tmp_path):
        """Work completed before the kill is served from the cache on
        restart — zero worker processes spawned."""
        spec = tiny_spec("done-before-crash")
        warm = make_server(tmp_path, expect=1)
        warm.submit(JobSubmission(spec=spec))
        assert warm.serve(install_signals=False) == EXIT_DRAINED

        from repro.fleet.manifest import cache_key
        workdir2 = tmp_path / "work2"
        journal, _ = JobJournal.open(str(workdir2 / JOURNAL_DIR))
        journal.append("submit", name=spec.name, key=cache_key(spec),
                       spec=spec.to_dict(), priority=0, owner="drill",
                       deadline=None, source="test")
        journal.close()

        config = ServerConfig(
            fleet=FleetConfig(workers=1,
                              cache_dir=str(tmp_path / "cache")),
            expect=1, enable_socket=False)
        server = FleetServer(config, str(workdir2))
        # Reconciliation happened in __init__, before any worker slot.
        job = server._jobs[spec.name]
        assert job.record.outcome == "ok" and job.record.cache_hit
        assert server.serve(install_signals=False) == EXIT_DRAINED
        assert server.sup.executed == 0

    def test_unhealthy_pool_degrades_to_cache_only_serving(self, tmp_path):
        server = make_server(
            tmp_path, workers=1, max_attempts=1,
            inject={"crashy": [{"kill_at_frame": 0}]})
        server.config.unhealthy_after = 1
        server.config.expect = 2
        server.submit(JobSubmission(spec=tiny_spec("crashy", seed=1),
                                    priority=1))
        server.submit(JobSubmission(spec=tiny_spec("victim", seed=2)))
        assert server.serve(install_signals=False) == EXIT_DRAINED
        assert server.degraded
        assert server._jobs["crashy"].record.outcome == "failed"
        victim = server._jobs["victim"].record
        assert victim.outcome == "shed"
        replay = replay_journal(os.path.join(server.workdir, JOURNAL_DIR))
        done = {record["data"]["name"]: record["data"]
                for record in replay.records if record["type"] == "done"}
        assert "cache-only" in done["victim"]["detail"]


class TestUnixSocket:
    def _request(self, writer, reader, doc):
        async def roundtrip():
            writer.write((json.dumps(doc) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())
        return roundtrip()

    def test_socket_ops_and_drain_with_pending_exits_4(self, tmp_path):
        config = ServerConfig(
            fleet=FleetConfig(workers=1,
                              cache_dir=str(tmp_path / "cache")),
            enable_socket=True)
        server = FleetServer(config, str(tmp_path / "work"))
        server._pick = lambda: None      # freeze scheduling: intake only

        async def scenario():
            serve = asyncio.get_running_loop().create_task(
                server.serve_async(install_signals=False))
            for _ in range(100):
                if os.path.exists(server.socket_path):
                    break
                await asyncio.sleep(0.02)
            reader, writer = await asyncio.open_unix_connection(
                server.socket_path)
            replies = {}
            replies["ping"] = await self._request(
                writer, reader, {"op": "ping"})
            replies["bad"] = await self._request(
                writer, reader, {"op": "warp"})
            replies["submit"] = await self._request(
                writer, reader,
                {"op": "submit",
                 "job": {"spec": tiny_spec("sock-job").to_dict(),
                         "priority": 2, "owner": "cli"}})
            replies["dedup"] = await self._request(
                writer, reader,
                {"op": "submit", "job": tiny_spec("sock-job").to_dict()})
            replies["cancel-missing"] = await self._request(
                writer, reader, {"op": "cancel", "name": "ghost"})
            replies["status"] = await self._request(
                writer, reader, {"op": "status"})
            replies["drain"] = await self._request(
                writer, reader, {"op": "drain"})
            writer.close()
            return await serve, replies

        code, replies = asyncio.run(scenario())
        assert replies["ping"]["ok"]
        assert replies["ping"]["server"] == server.server_id
        assert replies["bad"]["error"] == "unknown-op"
        assert replies["submit"] == {"ok": True, "name": "sock-job",
                                     "key": replies["submit"]["key"],
                                     "dedup": False, "outcome": "pending"}
        assert replies["dedup"]["dedup"] is True
        assert replies["cancel-missing"]["error"] == "unknown-job"
        assert replies["status"]["pending"] == 1
        assert replies["status"]["ready"] is True
        assert replies["drain"] == {"ok": True, "draining": True}
        # One journaled job never ran: drained-with-pending exit code.
        assert code == EXIT_DRAINED_PENDING
        assert not os.path.exists(server.socket_path)
        replay = replay_journal(
            os.path.join(server.workdir, JOURNAL_DIR))
        assert replay.clean_shutdown
        assert [job.name for job in replay.pending] == ["sock-job"]

    def test_socket_cancel_of_queued_job(self, tmp_path):
        config = ServerConfig(
            fleet=FleetConfig(workers=1,
                              cache_dir=str(tmp_path / "cache")),
            expect=1, enable_socket=True)
        server = FleetServer(config, str(tmp_path / "work"))
        server._pick = lambda: None

        async def scenario():
            serve = asyncio.get_running_loop().create_task(
                server.serve_async(install_signals=False))
            for _ in range(100):
                if os.path.exists(server.socket_path):
                    break
                await asyncio.sleep(0.02)
            reader, writer = await asyncio.open_unix_connection(
                server.socket_path)
            await self._request(
                writer, reader,
                {"op": "submit", "job": tiny_spec("doomed").to_dict()})
            cancel = await self._request(
                writer, reader, {"op": "cancel", "name": "doomed"})
            writer.close()
            return await serve, cancel

        code, cancel = asyncio.run(scenario())
        assert cancel == {"ok": True, "name": "doomed",
                          "state": "cancelled"}
        # The cancellation is terminal work: expect=1 drains clean.
        assert code == EXIT_DRAINED
        replay = replay_journal(
            os.path.join(server.workdir, JOURNAL_DIR))
        assert replay.jobs["doomed"].outcome == "cancelled"
