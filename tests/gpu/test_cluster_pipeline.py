"""Integration tests on cluster pipeline internals (PMRB order, stages)."""

import numpy as np
import pytest

from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.common.events import EventQueue
from repro.geometry.mesh import Mesh
from repro.gl.context import GLContext
from repro.gl.state import BlendFactor, CullMode
from repro.gpu.gpu import EmeraldGPU
from repro.memory.builders import build_baseline_memory
from repro.pipeline.renderer import ReferenceRenderer

SIZE = 32
VS = "in vec3 position;\nvoid main() { gl_Position = vec4(position, 1.0); }"
FS = ("uniform vec4 flat_color;\n"
      "void main() { gl_FragColor = flat_color; }")


def make_gpu(num_clusters=2, pmrb_entries=64):
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=1))
    config = scaled_gpu(GPUConfig(num_clusters=num_clusters,
                                  pmrb_entries=pmrb_entries))
    return EmeraldGPU(events, config, SIZE, SIZE, memory=memory)


def overlapping_strips_frame(layers=8):
    """Many small overlapping quads at the same place: stresses PMRB
    ordering + TC exclusivity (blending makes order errors visible)."""
    ctx = GLContext(SIZE, SIZE)
    ctx.use_program(VS, FS)
    ctx.set_state(cull=CullMode.NONE, depth_test=False, blend=True,
                  blend_src=BlendFactor.ONE, blend_dst=BlendFactor.ONE)
    for i in range(layers):
        quad = Mesh(
            positions=np.array([[-0.5, -0.5, 0.0], [0.5, -0.5, 0.0],
                                [-0.5, 0.5, 0.0], [0.5, 0.5, 0.0]]),
            indices=np.array([0, 1, 2, 1, 3, 2]), name=f"layer{i}")
        ctx.set_uniform("flat_color", [0.1, 0.0, 0.0, 1.0])
        ctx.draw_mesh(quad, name=f"layer{i}")
    return ctx.end_frame()


class TestOrderingUnderContention:
    def test_additive_layers_sum_exactly(self):
        """8 additive layers: every pixel accumulates exactly 0.8."""
        frame = overlapping_strips_frame(8)
        gpu = make_gpu()
        gpu.run_frame(frame)
        covered = gpu.fb.color[:, :, 0] > 0
        assert covered.any()
        values = gpu.fb.color[:, :, 0][covered]
        assert np.allclose(values, 0.8), \
            "TC exclusivity must serialize same-position tiles"

    def test_tiny_pmrb_still_correct(self):
        """PMRB capacity throttles the launcher but preserves order."""
        frame = overlapping_strips_frame(6)
        gpu = make_gpu(pmrb_entries=2)
        gpu.run_frame(frame)
        reference, _ = ReferenceRenderer(SIZE, SIZE).render(frame)
        assert np.allclose(gpu.fb.color, reference.color)

    def test_many_clusters_single_tile(self):
        """All fragments land in one TC tile: one core does the shading."""
        ctx = GLContext(SIZE, SIZE)
        ctx.use_program(VS, FS)
        ctx.set_state(cull=CullMode.NONE)
        tiny = Mesh(positions=np.array([[-0.2, -0.2, 0.0], [0.0, -0.2, 0.0],
                                        [-0.2, 0.0, 0.0]]),
                    indices=np.arange(3), name="tiny")
        ctx.set_uniform("flat_color", [1.0, 1.0, 0.0, 1.0])
        ctx.draw_mesh(tiny)
        frame = ctx.end_frame()
        gpu = make_gpu(num_clusters=4)
        gpu.run_frame(frame)
        shading_cores = [core.core_id for core in gpu.cores
                         if core.stats.counter("warps.fragment").value > 0]
        assert len(shading_cores) == 1

    def test_wt_size_spreads_work(self):
        """WT=1 on a fullscreen quad engages every core."""
        ctx = GLContext(SIZE, SIZE)
        ctx.use_program(VS, FS)
        ctx.set_state(cull=CullMode.NONE)
        quad = Mesh(positions=np.array([[-1, -1, 0], [1, -1, 0],
                                        [-1, 1, 0], [1, 1, 0]], dtype=float),
                    indices=np.array([0, 1, 2, 1, 3, 2]), name="full")
        ctx.set_uniform("flat_color", [0.0, 1.0, 1.0, 1.0])
        ctx.draw_mesh(quad)
        frame = ctx.end_frame()
        gpu = make_gpu(num_clusters=4)
        gpu.work_tile_size = 1
        gpu.run_frame(frame)
        active = sum(1 for core in gpu.cores
                     if core.stats.counter("warps.fragment").value > 0)
        assert active == 4

    def test_vertex_work_round_robins_cores(self):
        frame = overlapping_strips_frame(8)   # 8 draws, 1 batch each
        gpu = make_gpu(num_clusters=2)
        gpu.run_frame(frame)
        vertex_counts = [core.stats.counter("warps.vertex").value
                         for core in gpu.cores]
        assert all(c > 0 for c in vertex_counts)
