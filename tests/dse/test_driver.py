"""The DSE driver end-to-end: grid -> fleet -> metrics -> frontier.

Kept tiny (two points, one frame) — the full 8-point sweep is the CI
smoke job's business.
"""

import json

import pytest

from repro.common.config import ConfigError
from repro.dse import (DSEConfig, DSEReport, format_dse_report, run_dse,
                       topology_grid)
from repro.dse.driver import DSE_REPORT_SCHEMA, dse_jobs


class TestGrid:
    def test_default_grid_is_eight_points(self):
        grid = topology_grid()
        assert len(grid) == 8
        assert len({t.name for t in grid}) == 8
        assert len({t.topology_hash() for t in grid}) == 8

    def test_axes_multiply(self):
        grid = topology_grid(clusters=(2,), stacks=(1, 2),
                             data_rates=(1333,),
                             cpu_mixes=("sym", "biglittle"))
        assert len(grid) == 4
        mixes = {t.cpu.core_types for t in grid}
        assert None in mixes
        assert ("app", "big", "little", "little") in mixes

    def test_two_stack_points_have_two_endpoints(self):
        grid = topology_grid(clusters=(2,), stacks=(2,), data_rates=(1333,))
        assert len(grid[0].memory) == 2
        assert {m.dram.channels for m in grid[0].memory} == {1}

    def test_unknown_cpu_mix_is_typed(self):
        with pytest.raises(ConfigError) as excinfo:
            topology_grid(cpu_mixes=("quantum",))
        assert "biglittle" in str(excinfo.value)

    def test_jobs_carry_topology_and_metrics_flag(self):
        grid = topology_grid(clusters=(2,), stacks=(1,), data_rates=(1333,))
        jobs = dse_jobs(grid, DSEConfig())
        assert jobs[0].topology == grid[0].to_dict()
        assert jobs[0].collect_metrics


class TestDriver:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("dse")
        grid = topology_grid(clusters=(2,), stacks=(1, 2),
                             data_rates=(1333,))
        config = DSEConfig(frames=1, workers=2,
                           cache_dir=str(root / "cache"),
                           workdir=str(root / "work"))
        report = run_dse(grid, config)
        return grid, config, root, report

    def test_sweep_evaluates_every_point(self, sweep):
        _, _, _, report = sweep
        assert report.ok
        assert len(report.points) == 2
        for point in report.points:
            assert point.metrics is not None
            for key in ("fps", "dram_bandwidth", "energy_uj",
                        "topology_hash", "dram_bytes"):
                assert key in point.metrics
            assert point.metrics["topology_hash"] == \
                point.topology.topology_hash()

    def test_frontier_is_nonempty_and_flagged(self, sweep):
        _, _, _, report = sweep
        assert report.frontier
        assert all(point.pareto for point in report.frontier)

    def test_report_schema(self, sweep):
        _, _, _, report = sweep
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == DSE_REPORT_SCHEMA
        assert doc["ok"] is True
        assert doc["frontier"]
        assert [o[0] for o in doc["objectives"]] == \
            ["fps", "dram_bandwidth", "energy_uj"]
        for point in doc["points"]:
            assert set(point) == {"name", "topology_hash", "topology",
                                  "outcome", "cache_hit", "metrics",
                                  "pareto"}

    def test_rerun_is_cache_only_and_identical(self, sweep):
        grid, config, root, first = sweep
        rerun_config = DSEConfig(frames=1, workers=2,
                                 cache_dir=config.cache_dir,
                                 workdir=str(root / "work2"))
        rerun = run_dse(grid, rerun_config)
        assert rerun.ok
        assert rerun.fleet.executed == 0
        assert all(point.cache_hit for point in rerun.points)
        assert [p.metrics for p in rerun.points] == \
            [p.metrics for p in first.points]

    def test_text_report_renders(self, sweep):
        _, _, _, report = sweep
        text = format_dse_report(report)
        assert "pareto frontier" in text
        assert "fps:max" in text
        for point in report.points:
            assert point.name in text
