"""Hand-computed extrapolation statistics (the SimPoint error-bar math).

Every expected value here is worked by hand from the formulas in the
:mod:`repro.sampling.stats` docstring, so a regression in the math cannot
hide behind the code computing its own expectations.
"""

import math

import pytest

from repro.sampling.stats import (SAMPLE_METRICS, ExtrapolatedRun,
                                  ExtrapolationError, SampledEstimate,
                                  WindowSample, extrapolate)


def sample(start, gpu=0.0, total=0.0, dram=0.0, energy=0.0):
    return WindowSample(start=start, end=start + 2, measured_frames=1,
                        gpu_time=gpu, total_time=total, dram_bytes=dram,
                        energy_uj=energy)


class TestExtrapolate:
    def test_hand_computed_mean_std_stderr(self):
        # gpu_time observations 2, 4, 6: mean 4, variance (4+0+4)/2 = 4,
        # std 2, stderr 2/sqrt(3).
        samples = [sample(0, gpu=2.0), sample(8, gpu=4.0), sample(16, gpu=6.0)]
        est = extrapolate(samples)["gpu_time"]
        assert est.mean == pytest.approx(4.0)
        assert est.std == pytest.approx(2.0)
        assert est.stderr == pytest.approx(2.0 / math.sqrt(3.0))
        assert est.windows == 3

    def test_ci95_is_mean_plus_minus_1_96_stderr(self):
        samples = [sample(0, total=10.0), sample(8, total=14.0)]
        est = extrapolate(samples)["total_time"]
        # mean 12, std sqrt((4+4)/1) = 2*sqrt(2), stderr std/sqrt(2) = 2.
        assert est.mean == pytest.approx(12.0)
        assert est.stderr == pytest.approx(2.0)
        low, high = est.ci95
        assert low == pytest.approx(12.0 - 1.96 * 2.0)
        assert high == pytest.approx(12.0 + 1.96 * 2.0)

    def test_identical_windows_have_zero_error_bar(self):
        samples = [sample(0, dram=512.0), sample(8, dram=512.0)]
        est = extrapolate(samples)["dram_bytes"]
        assert est.mean == pytest.approx(512.0)
        assert est.std == 0.0
        assert est.stderr == 0.0
        assert est.relative_stderr == 0.0

    def test_every_sample_metric_is_estimated(self):
        samples = [sample(0, 1, 2, 3, 4), sample(8, 5, 6, 7, 8)]
        estimates = extrapolate(samples)
        assert set(estimates) == set(SAMPLE_METRICS)
        assert estimates["energy_uj"].mean == pytest.approx(6.0)

    def test_zero_windows_is_a_typed_error_not_nan(self):
        with pytest.raises(ExtrapolationError) as excinfo:
            extrapolate([])
        assert excinfo.value.windows == 0

    def test_single_window_is_a_typed_error_not_nan(self):
        with pytest.raises(ExtrapolationError) as excinfo:
            extrapolate([sample(0, gpu=3.0)])
        assert excinfo.value.windows == 1

    def test_unknown_metric_name_rejected(self):
        with pytest.raises(KeyError):
            sample(0).metric("row_hit_rate")


class TestExtrapolatedRun:
    def run(self, total_time=20.0, dram=100.0, energy=3.0):
        samples = [sample(0, 1.0, total_time, dram, energy),
                   sample(8, 1.0, total_time, dram, energy)]
        return ExtrapolatedRun(estimates=extrapolate(samples),
                               total_frames=24, frame_period_ticks=1000,
                               samples=samples)

    def test_fps_follows_the_fleet_convention(self):
        # 1e6 ticks / mean total frame time.
        assert self.run(total_time=20.0).fps == pytest.approx(1e6 / 20.0)

    def test_totals_scale_per_frame_means_by_run_length(self):
        run = self.run(dram=100.0, energy=3.0)
        assert run.dram_bytes_total == pytest.approx(100.0 * 24)
        assert run.energy_uj_total == pytest.approx(3.0 * 24)
        assert run.dram_bandwidth == pytest.approx(100.0 / 1000)

    def test_as_dict_carries_windows_and_estimates(self):
        doc = self.run().as_dict()
        assert doc["total_frames"] == 24
        assert len(doc["windows"]) == 2
        assert set(doc["estimates"]) == set(SAMPLE_METRICS)
        est = doc["estimates"]["total_time"]
        assert est["mean"] == pytest.approx(20.0)
        assert est["ci95"] == [pytest.approx(20.0), pytest.approx(20.0)]


class TestSampledEstimate:
    def test_relative_stderr_guards_zero_mean(self):
        est = SampledEstimate(metric="gpu_time", mean=0.0, std=1.0,
                              stderr=0.5, windows=4)
        assert est.relative_stderr == 0.0

    def test_as_dict_shape(self):
        est = SampledEstimate(metric="gpu_time", mean=10.0, std=2.0,
                              stderr=1.0, windows=4)
        doc = est.as_dict()
        assert doc == {
            "metric": "gpu_time", "mean": 10.0, "std": 2.0, "stderr": 1.0,
            "ci95": [pytest.approx(10.0 - 1.96), pytest.approx(10.0 + 1.96)],
            "windows": 4,
        }
