#!/usr/bin/env python
"""Profile a frame: trace one full-system run and see where the ticks go.

Renders two frames of the M1 chair model on the tiny case-study-I system
with the cycle-attribution tracer attached, then

* prints the profiler's report — per-track busy ticks/utilization, a
  Fig. 14-style activity timeline, counter summaries, kernel totals;
* walks the frame decomposition (cpu_prepare / gpu_render per frame);
* writes the full Chrome-trace JSON — open it in Perfetto or
  chrome://tracing to scrub through the very same run.

Run:  python examples/trace_frame.py [trace.json]
"""

import sys

from repro.harness.case_study1 import CS1Config, run_cs1
from repro.trace import TraceConfig, load_trace, validate_trace


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    config = CS1Config(width=64, height=48, num_frames=2, texture_size=64,
                       gpu_frame_period_ticks=150_000,
                       display_period_ticks=75_000,
                       cpu_work_per_frame=60, cpu_fixed_ticks=8_000)
    results = run_cs1("M1", "BAS", config=config,
                      trace=TraceConfig(path=path, profile=True))

    attribution = results.profile
    print(attribution.format(buckets=48))

    print()
    print("Frame decomposition (ticks):")
    for frame, phases in attribution.frames("app"):
        parts = ", ".join(f"{p.name}={p.duration}" for p in phases)
        print(f"  {frame.name}: total={frame.duration}  ({parts})")

    warnings = validate_trace(load_trace(path))
    print()
    print(f"wrote {path} (well-formed, {len(warnings)} warning(s)) — "
          f"load it in Perfetto or chrome://tracing")


if __name__ == "__main__":
    main()
