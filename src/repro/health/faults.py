"""Deterministic, seeded fault injection for the SoC model.

The fault taxonomy follows the failure modes a real SoC bring-up fights:

* **DRAM reply drop** — a completion is lost on the response path (the
  request is serviced, the issuer never hears about it).  Without retries
  this deadlocks the issuer: exactly the scenario the watchdog exists to
  catch; with NoC retries it degrades to extra latency.
* **DRAM reply delay** — the completion arrives late (response-path
  congestion), stretching observed latency without losing the reply.
* **NoC latency spike** — a request-path hiccup: transient extra hops
  added to the interconnect latency.
* **Display underrun** — the scanout engine misses its fetch window for a
  refresh and the frame is aborted (the display re-shows the old image).

Every decision draws from a per-fault-class :class:`random.Random` stream
seeded from ``FaultConfig.seed``, and decisions are made in submit order —
which the event kernel keeps deterministic — so the same seed and injection
config reproduce the identical fault pattern, stats and framebuffer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.common.stats import StatGroup
from repro.memory.request import MemRequest


@dataclass(frozen=True)
class FaultConfig:
    """Injection probabilities and magnitudes (all off by default)."""

    seed: int = 0
    dram_drop: float = 0.0          # P(reply lost) per request
    dram_delay: float = 0.0         # P(reply delayed) per request
    dram_delay_ticks: int = 5_000
    noc_spike: float = 0.0          # P(extra request latency) per request
    noc_spike_ticks: int = 200
    display_underrun: float = 0.0   # P(forced underrun) per vsync

    def active(self) -> bool:
        return any((self.dram_drop, self.dram_delay, self.noc_spike,
                    self.display_underrun))

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build from a CLI spec like ``dram_drop=0.01,noc_spike=0.1,seed=3``.

        Field names match the dataclass; probabilities are floats, tick
        magnitudes and the seed are integers.
        """
        config = cls()
        if not spec:
            return config
        known = {f.name: f.type for f in fields(cls)}
        updates = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec entry {part!r} "
                                 f"(expected name=value)")
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in known:
                raise ValueError(
                    f"unknown fault {name!r}; known: {sorted(known)}")
            caster = int if name in ("seed", "dram_delay_ticks",
                                     "noc_spike_ticks") else float
            try:
                updates[name] = caster(raw.strip())
            except ValueError as exc:
                raise ValueError(f"bad value for fault {name!r}: "
                                 f"{raw.strip()!r}") from exc
        return replace(config, **updates)


@dataclass(frozen=True)
class RetryConfig:
    """Timeout/backoff for the NoC's lost-reply recovery.

    After ``timeout`` ticks with no reply the NoC re-injects a clone of the
    request; each successive retry waits ``backoff`` times longer.  When
    ``max_retries`` attempts are exhausted the request is left to the
    watchdog to report.
    """

    timeout: int = 25_000
    max_retries: int = 3
    backoff: float = 2.0

    def deadline_for(self, attempt: int) -> int:
        """Ticks to wait before declaring attempt ``attempt`` lost."""
        return int(self.timeout * (self.backoff ** attempt))

    def ladder_ticks(self) -> int:
        """Worst-case ticks from first injection to retry exhaustion.

        A watchdog sharing the system with retries must wait at least this
        long before declaring a request stuck, else it fires while the
        recovery it is supposed to complement is still in progress.
        """
        return sum(self.deadline_for(attempt)
                   for attempt in range(self.max_retries + 1))


class FaultInjector:
    """Stateful, deterministic fault source consulted by the NoC/display.

    Each fault class owns an independent RNG stream so enabling one class
    does not perturb another's decision sequence — a drop-only run and a
    drop+spike run agree on *which* requests drop.
    """

    #: Stream name -> attribute, in serialization order (checkpointing).
    STREAMS = {"drop": "_drop_rng", "delay": "_delay_rng",
               "spike": "_spike_rng", "display": "_display_rng"}

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = StatGroup("faults")
        self._drop_rng = random.Random((config.seed << 4) | 1)
        self._delay_rng = random.Random((config.seed << 4) | 2)
        self._spike_rng = random.Random((config.seed << 4) | 3)
        self._display_rng = random.Random((config.seed << 4) | 4)

    # -- checkpointing -----------------------------------------------------------

    def rng_state(self) -> dict:
        """JSON-serializable snapshot of all four RNG stream states.

        A resumed run that restores this reproduces the same downstream
        fault pattern as the uninterrupted run (``random.Random`` state is
        ``(version, (int, ...), gauss_next)`` — lists after a JSON round
        trip, which :meth:`restore_rng` converts back).
        """
        return {name: list(self._state_tuple(attr))
                for name, attr in self.STREAMS.items()}

    def _state_tuple(self, attr: str):
        version, internal, gauss = getattr(self, attr).getstate()
        return (version, list(internal), gauss)

    def restore_rng(self, state: dict) -> None:
        """Restore stream states captured by :meth:`rng_state`."""
        for name, attr in self.STREAMS.items():
            if name not in state:
                continue
            version, internal, gauss = state[name]
            getattr(self, attr).setstate(
                (version, tuple(internal), gauss))

    # -- request path -----------------------------------------------------------

    def noc_extra_latency(self, request: MemRequest) -> int:
        """Extra interconnect latency for this request (0 = no fault)."""
        if (self.config.noc_spike
                and self._spike_rng.random() < self.config.noc_spike):
            self.stats.counter("noc_spikes").add()
            return self.config.noc_spike_ticks
        return 0

    # -- response path ----------------------------------------------------------

    def reply_fate(self, request: MemRequest) -> tuple[str, int]:
        """Decide a completed request's reply fate.

        Returns ``("drop", 0)``, ``("delay", ticks)`` or ``("deliver", 0)``.
        Both RNG streams advance for every reply so the drop decision
        sequence is independent of the delay probability and vice versa.
        """
        drop = (self.config.dram_drop
                and self._drop_rng.random() < self.config.dram_drop)
        delay = (self.config.dram_delay
                 and self._delay_rng.random() < self.config.dram_delay)
        if drop:
            self.stats.counter("replies_dropped").add()
            request.metadata["fault"] = "reply-dropped"
            return ("drop", 0)
        if delay:
            self.stats.counter("replies_delayed").add()
            request.metadata["fault"] = "reply-delayed"
            return ("delay", self.config.dram_delay_ticks)
        return ("deliver", 0)

    # -- display ----------------------------------------------------------------

    def display_underrun_now(self) -> bool:
        """One decision per vsync: force an underrun this refresh?"""
        if (self.config.display_underrun
                and self._display_rng.random()
                < self.config.display_underrun):
            self.stats.counter("display_underruns").add()
            return True
        return False
