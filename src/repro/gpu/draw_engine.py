"""Per-draw orchestration: vertex launcher, primitive table, completion.

The vertex launcher (Fig. 3 B/C, §3.3.3) slices the index stream into
warp-sized batches with primitive-type-dependent vertex overlap, so each
warp's primitives are assembled entirely from warp-local vertices.
Batches launch round-robin across SIMT cores, throttled by PMRB space
(§3.3.4's deadlock-avoidance credit scheme).

The :class:`DrawContext` carries the draw's compiled programs, the shared
primitive table (clip/cull/raster results computed once, consumed by every
covering cluster) and the outstanding-work accounting that detects draw
completion.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.common.config import GPUConfig
from repro.common.events import EventQueue
from repro.common.geometry2d import work_tile_owner
from repro.common.stats import StatGroup
from repro.geometry.mesh import PrimitiveMode
from repro.gl.context import DrawCall
from repro.gpu.hiz import HiZBuffer
from repro.gpu.simt_core import WarpTask
from repro.pipeline.clip import clip_triangle, is_culled
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.raster import FragmentBlock, rasterize, to_screen
from repro.pipeline.shading_env import build_varying_link
from repro.pipeline.vertex import VertexShaderEnv
from repro.shader.compiler import compile_shader
from repro.shader.interpreter import WarpInterpreter
from repro.shader.rop_epilogue import attach_rop


@dataclass
class VertexBatch:
    """One warp's worth of index-stream entries plus its local primitives."""

    batch_id: int
    vertex_ids: np.ndarray                     # index values (VBO vertex ids)
    prims: list[tuple[int, tuple[int, int, int]]]   # (prim_id, local indices)
    clip: Optional[np.ndarray] = None          # filled after shading
    varyings: Optional[np.ndarray] = None


def build_vertex_batches(indices: np.ndarray, mode: PrimitiveMode,
                         warp_size: int = 32) -> list[VertexBatch]:
    """Slice the index stream into overlapped warp batches (§3.3.3)."""
    idx = np.asarray(indices, dtype=np.int64)
    batches: list[VertexBatch] = []
    if mode is PrimitiveMode.TRIANGLES:
        prims_per_batch = warp_size // 3
        entries_per_batch = prims_per_batch * 3
        total_prims = len(idx) // 3
        prim_id = 0
        for start in range(0, total_prims * 3, entries_per_batch):
            entries = idx[start:start + entries_per_batch]
            prims = []
            for local in range(0, len(entries) - 2, 3):
                prims.append((prim_id, (local, local + 1, local + 2)))
                prim_id += 1
            batches.append(VertexBatch(len(batches), entries, prims))
    elif mode is PrimitiveMode.TRIANGLE_STRIP:
        shared = 2
        step = warp_size - shared
        total_prims = max(0, len(idx) - 2)
        start = 0
        prim_id = 0
        while prim_id < total_prims:
            entries = idx[start:start + warp_size]
            prims = []
            for local in range(len(entries) - 2):
                if prim_id >= total_prims:
                    break
                if prim_id % 2 == 0:
                    order = (local, local + 1, local + 2)
                else:
                    order = (local + 1, local, local + 2)
                prims.append((prim_id, order))
                prim_id += 1
            batches.append(VertexBatch(len(batches), entries, prims))
            start += step
    elif mode is PrimitiveMode.TRIANGLE_FAN:
        # The fan center rides along in lane 0 of every batch.
        per_batch = warp_size - 2                # new rim vertices per batch
        total_prims = max(0, len(idx) - 2)
        prim_id = 0
        rim = 1
        while prim_id < total_prims:
            rim_entries = idx[rim:rim + per_batch + 1]
            entries = np.concatenate([idx[:1], rim_entries])
            prims = []
            for local in range(1, len(entries) - 1):
                if prim_id >= total_prims:
                    break
                prims.append((prim_id, (0, local, local + 1)))
                prim_id += 1
            batches.append(VertexBatch(len(batches), entries, prims))
            rim += per_batch
    else:  # pragma: no cover
        raise AssertionError(f"unhandled mode {mode}")
    return batches


@dataclass
class PrimitiveRecord:
    """Functional results for one primitive, shared by all clusters."""

    prim_id: int
    cluster_mask: frozenset[int] = frozenset()
    candidate_tiles: dict[int, int] = field(default_factory=dict)
    blocks_by_cluster: dict[int, list[FragmentBlock]] = field(
        default_factory=dict)
    culled: bool = True


@dataclass
class PrimRef:
    """Pointer from a vertex batch to one of its primitives."""

    prim_id: int
    batch: VertexBatch
    local: tuple[int, int, int]


class DrawContext:
    """Shared state for one in-flight draw call."""

    def __init__(self, engine: "DrawEngine", draw: DrawCall,
                 fb: Framebuffer, hiz: HiZBuffer, wt_size: int,
                 on_done: Callable[[], None]) -> None:
        self.engine = engine
        self.draw = draw
        self.fb = fb
        self.hiz = hiz
        self.wt_size = wt_size
        self.on_done = on_done
        self.events = engine.events
        self.config = engine.config
        self.clusters = engine.clusters
        self.stats = engine.stats

        self.vs_program = compile_shader(draw.vs_source, "vertex",
                                         name=f"{draw.name}_vs")
        fs_base = compile_shader(draw.fs_source, "fragment",
                                 name=f"{draw.name}_fs")
        self.rop_program = attach_rop(fs_base, draw.state)
        self.link = build_varying_link(self.vs_program, self.rop_program)
        # Stable program ids (I-cache addressing must be run-deterministic).
        self.fs_program_id = zlib.crc32(draw.fs_source.encode()) % 1024
        self.vs_program_id = zlib.crc32(draw.vs_source.encode()) % 1024
        # Applicability is judged on the *base* shader: the ROP epilogue's
        # own discard/zwrite are the depth test itself, not shader behavior
        # that would make Hi-Z unsound.
        self.hiz_active = (engine.config.raster.hiz_enabled
                           and hiz.applicable(draw.state, fs_base))

        self.prim_table: dict[int, PrimitiveRecord] = {}
        self._outstanding = 0
        self._launcher_done = False
        self._completed = False
        self.last_fragment_time: Optional[int] = None

        raster_px = engine.config.raster.raster_tile_px
        self._tc_ratio = engine.config.raster.tc_tile_raster_tiles
        self._tc_cols = ((fb.width + raster_px - 1) // raster_px
                         + self._tc_ratio - 1) // self._tc_ratio
        self._raster_px = raster_px
        # Precomputed raster-tile-granularity owner grid: owner_grid[r, c]
        # is the cluster owning raster tile (c, r) under this WT size.
        raster_cols = (fb.width + raster_px - 1) // raster_px
        raster_rows = (fb.height + raster_px - 1) // raster_px
        self._owner_grid = np.empty((raster_rows, raster_cols),
                                    dtype=np.int64)
        for row in range(raster_rows):
            for col in range(raster_cols):
                self._owner_grid[row, col] = work_tile_owner(
                    col // self._tc_ratio, row // self._tc_ratio,
                    self._tc_cols, wt_size, len(self.clusters))

    # -- accounting ---------------------------------------------------------------

    def inc(self, kind: str) -> None:
        self._outstanding += 1

    def dec(self, kind: str) -> None:
        self._outstanding -= 1
        if self._outstanding < 0:  # pragma: no cover - accounting bug guard
            raise RuntimeError(f"outstanding underflow at {kind}")
        self._maybe_finish()

    def launcher_finished(self) -> None:
        self._launcher_done = True
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self._launcher_done and self._outstanding == 0
                and not self._completed):
            self._completed = True
            self.on_done()

    def on_prim_popped(self, prim_id: int) -> None:
        self.engine.return_credit(prim_id)

    def note_fragment_activity(self, now: int) -> None:
        self.last_fragment_time = now
        self.engine.note_fragment(now)

    # -- functional primitive resolution -----------------------------------------

    def owner_of_tc_tile(self, tc_col: int, tc_row: int) -> int:
        return work_tile_owner(tc_col, tc_row, self._tc_cols, self.wt_size,
                               len(self.clusters))

    def resolve_primitive(self, ref: PrimRef) -> PrimitiveRecord:
        """Clip, cull and rasterize a primitive once (cached)."""
        if ref.prim_id in self.prim_table:
            return self.prim_table[ref.prim_id]
        record = PrimitiveRecord(prim_id=ref.prim_id)
        self.prim_table[ref.prim_id] = record
        batch = ref.batch
        tri_clip = batch.clip[list(ref.local)]
        tri_var = batch.varyings[list(ref.local)]
        pieces = clip_triangle(tri_clip, tri_var, ref.prim_id)
        pieces = [p for p in pieces
                  if not is_culled(p, self.draw.state.cull)]
        if not pieces:
            self.stats.counter("prims_rejected").add()
            return record
        record.culled = False
        self.stats.counter("prims_rasterized").add()
        mask: set[int] = set()
        candidate: dict[int, int] = {}
        blocks_by_cluster: dict[int, list[FragmentBlock]] = {}
        owner_grid = self._owner_grid
        for piece in pieces:
            tri = to_screen(piece, self.fb.width, self.fb.height)
            x0, y0, x1, y1 = tri.bounding_box(self.fb.width, self.fb.height)
            if x0 >= x1 or y0 >= y1:
                continue
            # Candidate raster tiles (coarse raster cost) per owning
            # cluster, counted on the precomputed owner grid.
            rpx = self._raster_px
            owners = owner_grid[y0 // rpx:(y1 - 1) // rpx + 1,
                                x0 // rpx:(x1 - 1) // rpx + 1]
            counts = np.bincount(owners.ravel(),
                                 minlength=len(self.clusters))
            for owner in np.flatnonzero(counts):
                mask.add(int(owner))
                candidate[int(owner)] = (candidate.get(int(owner), 0)
                                         + int(counts[owner]))
            for block in rasterize(tri, self.fb.width, self.fb.height, rpx):
                owner = int(owner_grid[block.tile_y, block.tile_x])
                blocks_by_cluster.setdefault(owner, []).append(block)
        record.cluster_mask = frozenset(mask)
        record.candidate_tiles = candidate
        record.blocks_by_cluster = blocks_by_cluster
        return record


class DrawEngine:
    """Runs draw calls through the GPU, one at a time."""

    def __init__(self, events: EventQueue, config: GPUConfig, clusters: list,
                 stats: Optional[StatGroup] = None) -> None:
        self.events = events
        self.config = config
        self.clusters = clusters
        self.stats = stats or StatGroup("draw_engine")
        self._credits = 0
        self._pending_batches: list[tuple[VertexBatch, DrawContext]] = []
        self._next_core = 0
        self._prim_pops: dict[int, int] = {}
        self.fragment_first: Optional[int] = None
        self.fragment_last: Optional[int] = None

    def reset_fragment_window(self) -> None:
        self.fragment_first = None
        self.fragment_last = None

    def note_fragment(self, now: int) -> None:
        if self.fragment_first is None:
            self.fragment_first = now
        self.fragment_last = now

    def run_draw(self, draw: DrawCall, fb: Framebuffer, hiz: HiZBuffer,
                 wt_size: int, on_done: Callable[[], None]) -> DrawContext:
        tracer = self.events.tracer
        if tracer is not None:
            span = f"draw:{draw.name}"
            tracer.begin("gpu", span, args={"prims": draw.num_primitives})

            def on_done(_done=on_done, _tracer=tracer, _span=span):
                _tracer.end("gpu", _span)
                _done()
        ctx = DrawContext(self, draw, fb, hiz, wt_size, on_done)
        for cluster in self.clusters:
            cluster.begin_draw(ctx)
        batches = build_vertex_batches(draw.ibo.indices, draw.mode,
                                       self.config.core.warp_size)
        self.stats.counter("draws").add()
        self.stats.counter("vertex_batches").add(len(batches))
        max_batch_prims = max((len(b.prims) for b in batches), default=1)
        self._credits = max(self.config.pmrb_entries, max_batch_prims)
        self._prim_pops = {}
        self._pending_batches = [(batch, ctx) for batch in batches]
        self._launch_ready()
        if not batches:
            ctx.launcher_finished()
        return ctx

    # -- launcher --------------------------------------------------------------

    def _launch_ready(self) -> None:
        while self._pending_batches:
            batch, ctx = self._pending_batches[0]
            cost = max(len(batch.prims), 1)
            if cost > self._credits:
                return
            self._pending_batches.pop(0)
            self._credits -= cost
            self._launch_batch(batch, ctx)

    def _launch_batch(self, batch: VertexBatch, ctx: DrawContext) -> None:
        ctx.inc("batch")
        for prim_id, _ in batch.prims:
            self._prim_pops[prim_id] = len(self.clusters)
        env = VertexShaderEnv(ctx.draw, ctx.vs_program, batch.vertex_ids,
                              warp_size=self.config.core.warp_size)
        result = WarpInterpreter(ctx.vs_program, env).run(
            initial_mask=env.active)
        batch.clip = env.clip
        batch.varyings = env.varyings
        core_index = self._next_core % len(self.clusters)
        self._next_core += 1
        cluster = self.clusters[core_index]
        task = WarpTask(result.trace, kind="vertex",
                        program_id=ctx.vs_program_id,
                        on_complete=lambda t, b=batch, c=cluster, x=ctx:
                        self._vertex_batch_done(b, c, x))
        cluster.core.submit(task)

    def _vertex_batch_done(self, batch: VertexBatch, cluster,
                           ctx: DrawContext) -> None:
        refs = [PrimRef(prim_id, batch, local)
                for prim_id, local in batch.prims]
        cluster.submit_vertex_prims(refs)
        ctx.dec("batch")
        self._check_launcher_done(ctx)

    def return_credit(self, prim_id: int) -> None:
        remaining = self._prim_pops.get(prim_id)
        if remaining is None:
            return
        remaining -= 1
        if remaining == 0:
            del self._prim_pops[prim_id]
            self._credits += 1
            self._launch_ready()
        else:
            self._prim_pops[prim_id] = remaining

    def _check_launcher_done(self, ctx: DrawContext) -> None:
        if not self._pending_batches:
            ctx.launcher_finished()
