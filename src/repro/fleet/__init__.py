"""Fault-tolerant simulation fleet (DESIGN.md §10).

``repro.fleet`` turns the single-run simulator into a supervised,
crash-tolerant service: an asyncio :class:`FleetSupervisor` shards
benchmark sweeps, chaos seeds and user-submitted configs across a
multiprocess worker pool, detects crashed and hung workers by heartbeat
deadline (the :mod:`repro.health.watchdog` idiom in wall-clock time),
requeues them with capped exponential backoff, resumes retried jobs from
their last :class:`~repro.soc.checkpoint.GraphicsCheckpoint`, and caches
deterministic results content-addressed on (config hash, seed, code
version) with gem5-style manifests.  Failures surface as typed outcomes
with PR 4 triage bundles attached — the chaos loud-death contract
extended to the process-pool layer.

Quickstart::

    from repro.fleet import FleetConfig, JobSpec, run_sweep

    specs = [JobSpec(name=f"cube-s{seed}", frames=2, seed=seed)
             for seed in (1, 2, 3)]
    report = run_sweep(specs,
                       FleetConfig(workers=2, cache_dir="fleet-cache"),
                       workdir="fleet-work")
    assert report.ok        # rerun: served entirely from cache

CLI: ``python -m repro fleet --seeds 1,2,3 --workers 2``.
"""

from __future__ import annotations

from repro.fleet.cache import CachedResult, ResultCache
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.job import (ATTEMPT_OUTCOMES, JOB_OUTCOMES, JobAttempt,
                             JobRecord, JobSpec, JobSpecError)
from repro.fleet.manifest import (ManifestError, build_manifest, cache_key,
                                  code_version, config_hash,
                                  validate_manifest)
from repro.fleet.supervisor import (BackoffPolicy, FleetConfig, FleetReport,
                                    FleetSaturated, FleetSupervisor,
                                    FleetWorkerFailure, run_sweep)
from repro.fleet.worker import run_job, worker_entry

__all__ = [
    "ATTEMPT_OUTCOMES",
    "BackoffPolicy",
    "CachedResult",
    "FleetConfig",
    "FleetReport",
    "FleetSaturated",
    "FleetSupervisor",
    "FleetWorkerFailure",
    "HeartbeatMonitor",
    "JOB_OUTCOMES",
    "JobAttempt",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "ManifestError",
    "ResultCache",
    "build_manifest",
    "cache_key",
    "code_version",
    "config_hash",
    "run_job",
    "run_sweep",
    "validate_manifest",
    "worker_entry",
]
