"""Fragment-stage execution environment and varying linkage.

:func:`build_varying_link` resolves each fragment-program varying scalar to
its producer (a vertex-program varying slot, the interpolated depth, or a
``gl_FragCoord`` component).  :class:`FragmentShaderEnv` services a warp of
fragments: varyings from the rasterizer, textures with real texel
addresses, depth/color buffer access with real framebuffer addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gl.context import DrawCall
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.vertex import build_constant_bank
from repro.shader.interpreter import MemAccess
from repro.shader.isa import MemSpace
from repro.shader.program import Program

# Varying-source kinds.
_VS_SLOT = "vs"
_FRAG_Z = "fragz"
_FRAGCOORD = "fragcoord"


def build_varying_link(vs_program: Program, fs_program: Program) -> list[tuple[str, int]]:
    """Map each FS varying scalar slot to its source.

    Returns a list indexed by FS scalar slot holding ``(kind, index)``:
    ``("vs", vs_slot)``, ``("fragz", 0)`` or ``("fragcoord", component)``.
    """
    link: list[tuple[str, int]] = [("", 0)] * fs_program.varyings.total
    for name, (base, width) in fs_program.varyings.items():
        if name == "frag_z":
            link[base] = (_FRAG_Z, 0)
            continue
        if name == "gl_FragCoord":
            for comp in range(width):
                link[base + comp] = (_FRAGCOORD, comp)
            continue
        if name not in vs_program.varyings:
            raise ValueError(
                f"fragment shader reads varying {name!r} the vertex shader "
                f"never writes (VS provides {vs_program.varyings.names()})")
        vs_base, vs_width = vs_program.varyings.lookup(name)
        if width > vs_width:
            raise ValueError(
                f"varying {name!r}: FS wants {width} floats, VS writes {vs_width}")
        for comp in range(width):
            link[base + comp] = (_VS_SLOT, vs_base + comp)
    return link


@dataclass
class FragmentWarp:
    """One warp's worth of fragments headed for shading.

    All arrays have warp_size entries; ``active`` masks real fragments.
    ``varyings`` is in the *vertex* program's varying layout.
    """

    xs: np.ndarray
    ys: np.ndarray
    z: np.ndarray
    inv_w: np.ndarray
    varyings: np.ndarray
    active: np.ndarray

    @property
    def warp_size(self) -> int:
        return len(self.xs)

    @property
    def num_fragments(self) -> int:
        return int(self.active.sum())


def pack_fragments(xs, ys, z, inv_w, varyings, warp_size: int = 32) -> list[FragmentWarp]:
    """Chunk fragment arrays into warp-sized :class:`FragmentWarp` packets.

    One padded bulk copy per array, then disjoint slice views per warp —
    value-identical to packing each warp separately (zero-padded tails,
    ``inv_w`` padded with ones), without 6 allocations per warp.
    """
    total = len(xs)
    if total == 0:
        return []
    num_vary = varyings.shape[1] if varyings.ndim == 2 else 1
    num_warps = -(-total // warp_size)
    padded = num_warps * warp_size
    all_xs = np.zeros(padded, dtype=np.int64)
    all_ys = np.zeros(padded, dtype=np.int64)
    all_z = np.zeros(padded)
    all_inv_w = np.ones(padded)
    all_vary = np.zeros((padded, num_vary))
    all_active = np.zeros(padded, dtype=bool)
    all_xs[:total] = xs
    all_ys[:total] = ys
    all_z[:total] = z
    all_inv_w[:total] = inv_w
    all_vary[:total] = varyings
    all_active[:total] = True
    return [
        FragmentWarp(
            xs=all_xs[start:start + warp_size],
            ys=all_ys[start:start + warp_size],
            z=all_z[start:start + warp_size],
            inv_w=all_inv_w[start:start + warp_size],
            varyings=all_vary[start:start + warp_size],
            active=all_active[start:start + warp_size],
        )
        for start in range(0, padded, warp_size)
    ]


class FragmentShaderEnv:
    """ExecEnv for one fragment warp."""

    def __init__(self, draw: DrawCall, program: Program,
                 vs_program: Program, warp: FragmentWarp,
                 framebuffer: Framebuffer,
                 link: list[tuple[str, int]] | None = None) -> None:
        self.draw = draw
        self.program = program
        self.warp = warp
        self.fb = framebuffer
        self.warp_size = warp.warp_size
        self.link = link if link is not None else build_varying_link(
            vs_program, program)
        self.constant_bank = build_constant_bank(draw, program)
        self._unit_textures = {}
        for name, unit in program.textures.items():
            if name not in draw.textures:
                raise ValueError(
                    f"shader samples {name!r} but draw call binds "
                    f"{sorted(draw.textures)}")
            self._unit_textures[unit] = draw.textures[name]
        self.outputs: dict[int, np.ndarray] = {}

    # -- ExecEnv --------------------------------------------------------------

    def attribute(self, slot, mask):
        raise RuntimeError("fragment shaders have no vertex attributes")

    def varying(self, slot: int, mask: np.ndarray) -> np.ndarray:
        kind, index = self.link[slot]
        if kind == _VS_SLOT:
            return self.warp.varyings[:, index]
        if kind == _FRAG_Z:
            return self.warp.z
        if kind == _FRAGCOORD:
            if index == 0:
                return self.warp.xs + 0.5
            if index == 1:
                return self.warp.ys + 0.5
            if index == 2:
                return self.warp.z
            return self.warp.inv_w
        raise RuntimeError(f"unlinked varying slot {slot}")

    def constant(self, slot: int, mask: np.ndarray):
        value = float(self.constant_bank[slot])
        return value, [MemAccess(MemSpace.CONST,
                                 self.draw.uniform_base + slot * 4, 4)]

    def tex(self, unit: int, u: np.ndarray, v: np.ndarray, mask: np.ndarray):
        texture = self._unit_textures[unit]
        rgba, (x0, x1, y0, y1) = texture.sample_bilinear_arrays(u, v)
        lanes = np.flatnonzero(mask)
        addresses = np.concatenate([
            texture.texel_addresses(x0[lanes], y0[lanes]),
            texture.texel_addresses(x1[lanes], y0[lanes]),
            texture.texel_addresses(x0[lanes], y1[lanes]),
            texture.texel_addresses(x1[lanes], y1[lanes]),
        ]) if len(lanes) else np.empty(0, dtype=np.int64)
        accesses = [MemAccess(MemSpace.TEXTURE, int(a), 4)
                    for a in addresses]
        return rgba, accesses

    def zread(self, mask: np.ndarray):
        values = self.fb.read_depth(self.warp.xs, self.warp.ys)
        addresses = self.fb.depth_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.DEPTH, int(a), 4)
                    for a in addresses[mask]]
        return values, accesses

    def zwrite(self, values: np.ndarray, mask: np.ndarray):
        self.fb.write_depth(self.warp.xs[mask], self.warp.ys[mask],
                            values[mask])
        addresses = self.fb.depth_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.DEPTH, int(a), 4, write=True)
                for a in addresses[mask]]

    def sread(self, mask: np.ndarray):
        values = self.fb.read_stencil(self.warp.xs, self.warp.ys)
        addresses = self.fb.stencil_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.DEPTH, int(a), 1)
                    for a in addresses[mask]]
        return values.astype(np.float64), accesses

    def swrite(self, values: np.ndarray, mask: np.ndarray):
        self.fb.write_stencil(self.warp.xs[mask], self.warp.ys[mask],
                              values[mask])
        addresses = self.fb.stencil_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.DEPTH, int(a), 1, write=True)
                for a in addresses[mask]]

    def fb_read(self, mask: np.ndarray):
        rgba = self.fb.read_color(self.warp.xs, self.warp.ys)
        addresses = self.fb.color_address(self.warp.xs, self.warp.ys)
        accesses = [MemAccess(MemSpace.COLOR, int(a), 4)
                    for a in addresses[mask]]
        return rgba, accesses

    def fb_write(self, rgba: np.ndarray, mask: np.ndarray):
        self.fb.write_color(self.warp.xs[mask], self.warp.ys[mask],
                            rgba[mask])
        addresses = self.fb.color_address(self.warp.xs, self.warp.ys)
        return [MemAccess(MemSpace.COLOR, int(a), 4, write=True)
                for a in addresses[mask]]

    def ld_global(self, addresses, mask):
        raise RuntimeError("generic global loads unused in fragment stage")

    def st_global(self, addresses, values, mask):
        raise RuntimeError("generic global stores unused in fragment stage")

    def store_output(self, slot: int, values: np.ndarray, mask: np.ndarray) -> None:
        if slot not in self.outputs:
            self.outputs[slot] = np.zeros(self.warp_size)
        self.outputs[slot][mask] = values[mask]
