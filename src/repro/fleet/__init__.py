"""Fault-tolerant simulation fleet (DESIGN.md §10, server mode §14).

``repro.fleet`` turns the single-run simulator into a supervised,
crash-tolerant service: an asyncio :class:`FleetSupervisor` shards
benchmark sweeps, chaos seeds and user-submitted configs across a
multiprocess worker pool, detects crashed and hung workers by heartbeat
staleness (a monotonic attempt-progress counter, immune to clock jumps),
requeues them with capped exponential backoff, resumes retried jobs from
their last :class:`~repro.soc.checkpoint.GraphicsCheckpoint`, and caches
deterministic results content-addressed on (config hash, seed, code
version) with gem5-style manifests.  Failures surface as typed outcomes
with PR 4 triage bundles attached — the chaos loud-death contract
extended to the process-pool layer.

On top of the one-shot supervisor sits the **durable fleet server**
(:mod:`repro.fleet.server`): a long-lived service whose entire state is
reconstructible after ``kill -9`` from its write-ahead job journal
(:mod:`repro.fleet.journal`), with file-drop + Unix-socket intake,
priority / fair-share / deadline scheduling, and graceful SIGTERM
drains.  :mod:`repro.fleet.drill` is the server-level chaos drill that
SIGKILLs the server mid-sweep and asserts byte-identical results.

Quickstart (one-shot sweep)::

    from repro.fleet import FleetConfig, JobSpec, run_sweep

    specs = [JobSpec(name=f"cube-s{seed}", frames=2, seed=seed)
             for seed in (1, 2, 3)]
    report = run_sweep(specs,
                       FleetConfig(workers=2, cache_dir="fleet-cache"),
                       workdir="fleet-work")
    assert report.ok        # rerun: served entirely from cache

CLI: ``python -m repro fleet sweep --seeds 1,2,3 --workers 2``; the
server is ``python -m repro fleet serve|submit|status|drain|gc``.
"""

from __future__ import annotations

from repro.fleet.cache import (CacheGCReport, CachedResult, ResultCache,
                               sweep_triage_bundles)
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.job import (ATTEMPT_OUTCOMES, JOB_OUTCOMES, JobAttempt,
                             JobRecord, JobSpec, JobSpecError)
from repro.fleet.journal import (JobJournal, JournalReplay, ReplayedJob,
                                 replay_journal)
from repro.fleet.manifest import (ManifestError, build_manifest, cache_key,
                                  code_version, config_hash,
                                  validate_manifest)
from repro.fleet.server import (FleetServer, JobSubmission, ServerConfig,
                                SubmissionError, journal_status)
from repro.fleet.supervisor import (BackoffPolicy, FleetConfig, FleetReport,
                                    FleetSaturated, FleetSupervisor,
                                    FleetWorkerFailure, run_sweep)
from repro.fleet.worker import run_job, worker_entry

__all__ = [
    "ATTEMPT_OUTCOMES",
    "BackoffPolicy",
    "CacheGCReport",
    "CachedResult",
    "FleetConfig",
    "FleetReport",
    "FleetSaturated",
    "FleetServer",
    "FleetSupervisor",
    "FleetWorkerFailure",
    "HeartbeatMonitor",
    "JOB_OUTCOMES",
    "JobAttempt",
    "JobJournal",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "JobSubmission",
    "JournalReplay",
    "ManifestError",
    "ReplayedJob",
    "ResultCache",
    "ServerConfig",
    "SubmissionError",
    "build_manifest",
    "cache_key",
    "code_version",
    "config_hash",
    "journal_status",
    "replay_journal",
    "run_job",
    "run_sweep",
    "sweep_triage_bundles",
    "validate_manifest",
    "worker_entry",
]
