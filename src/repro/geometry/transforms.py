"""4x4 transform matrices: model/view/projection/viewport.

Conventions match OpenGL: right-handed eye space looking down -Z, clip space
with w-divide to NDC in [-1, 1]^3, column-vector matrices (``M @ v``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.vec import cross, normalize


def identity() -> np.ndarray:
    return np.eye(4, dtype=np.float64)


def translate(x: float, y: float, z: float) -> np.ndarray:
    m = identity()
    m[:3, 3] = (x, y, z)
    return m


def scale(x: float, y: float, z: float) -> np.ndarray:
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = x, y, z
    return m


def rotate_x(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def rotate_y(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotate_z(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def perspective(fov_y_radians: float, aspect: float, near: float, far: float) -> np.ndarray:
    """Standard OpenGL perspective projection matrix."""
    if near <= 0 or far <= near:
        raise ValueError(f"need 0 < near < far, got near={near}, far={far}")
    if aspect <= 0:
        raise ValueError(f"aspect must be positive, got {aspect}")
    f = 1.0 / math.tan(fov_y_radians / 2.0)
    m = np.zeros((4, 4), dtype=np.float64)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = 2.0 * far * near / (near - far)
    m[3, 2] = -1.0
    return m


def orthographic(left: float, right: float, bottom: float, top: float,
                 near: float, far: float) -> np.ndarray:
    """Standard OpenGL orthographic projection matrix."""
    if right == left or top == bottom or far == near:
        raise ValueError("degenerate orthographic volume")
    m = identity()
    m[0, 0] = 2.0 / (right - left)
    m[1, 1] = 2.0 / (top - bottom)
    m[2, 2] = -2.0 / (far - near)
    m[0, 3] = -(right + left) / (right - left)
    m[1, 3] = -(top + bottom) / (top - bottom)
    m[2, 3] = -(far + near) / (far - near)
    return m


def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray) -> np.ndarray:
    """View matrix placing the camera at ``eye`` looking at ``target``."""
    forward = normalize(np.asarray(target, dtype=np.float64) - eye)
    side = normalize(cross(forward, np.asarray(up, dtype=np.float64)))
    true_up = cross(side, forward)
    m = identity()
    m[0, :3] = side
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[0, 3] = -np.dot(side, eye)
    m[1, 3] = -np.dot(true_up, eye)
    m[2, 3] = np.dot(forward, eye)
    return m


def viewport_transform(ndc_x: float, ndc_y: float, width: int, height: int) -> tuple[float, float]:
    """Map NDC [-1, 1] to pixel coordinates with y=0 at the top row."""
    px = (ndc_x + 1.0) * 0.5 * width
    py = (1.0 - ndc_y) * 0.5 * height
    return px, py


def normal_matrix(model: np.ndarray) -> np.ndarray:
    """3x3 inverse-transpose of the model matrix's linear part."""
    return np.linalg.inv(model[:3, :3]).T
