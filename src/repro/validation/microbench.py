"""The 14 validation microbenchmarks (§3.4).

Each microbenchmark isolates one axis of GPU behavior — fill rate,
texturing, geometry throughput, depth complexity, discard, blending — the
way the paper's Tegra microbenchmarks do.  Each builds a single frame at a
fixed resolution; the accuracy study renders it on the timing model and
compares draw time / fill rate against the surrogate hardware model.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.geometry.mesh import Mesh
from repro.geometry.models import cube, mask, sphere, teapot, triangles
from repro.gl.context import Frame, GLContext
from repro.gl.state import BlendFactor, CullMode, DepthFunc
from repro.gl.textures import checkerboard, gradient, marble
from repro.shader import builtins

WIDTH, HEIGHT = 96, 96

FLAT_VS = "in vec3 position;\nvoid main() { gl_Position = vec4(position, 1.0); }"
FLAT_FS = ("uniform vec4 flat_color;\n"
           "void main() { gl_FragColor = flat_color; }")


def _quad(z: float = 0.5, scale: float = 1.0, offset=(0.0, 0.0)) -> Mesh:
    ox, oy = offset
    positions = np.array([
        [-scale + ox, -scale + oy, z], [scale + ox, -scale + oy, z],
        [-scale + ox, scale + oy, z], [scale + ox, scale + oy, z],
    ])
    uvs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    return Mesh(positions=positions, indices=np.array([0, 1, 2, 1, 3, 2]),
                uvs=uvs, name=f"quad{z}_{scale}_{ox}")


def _flat_ctx(color=(0.8, 0.2, 0.2, 1.0)) -> GLContext:
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.use_program(FLAT_VS, FLAT_FS)
    ctx.set_state(cull=CullMode.NONE)
    ctx.set_uniform("flat_color", np.asarray(color))
    return ctx


def _fill_small() -> Frame:
    ctx = _flat_ctx()
    ctx.draw_mesh(_quad(scale=0.25))
    return ctx.end_frame()


def _fill_half() -> Frame:
    ctx = _flat_ctx()
    ctx.draw_mesh(_quad(scale=0.7))
    return ctx.end_frame()


def _fill_full() -> Frame:
    ctx = _flat_ctx()
    ctx.draw_mesh(_quad(scale=1.0))
    return ctx.end_frame()


def _fill_quads_grid() -> Frame:
    ctx = _flat_ctx()
    for i in range(4):
        for j in range(4):
            ctx.draw_mesh(_quad(scale=0.2,
                                offset=(-0.75 + i * 0.5, -0.75 + j * 0.5)))
    return ctx.end_frame()


def _textured(texture) -> Frame:
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.use_program(builtins.TRANSFORM_UV_VERTEX, builtins.TEXTURED_FRAGMENT)
    ctx.set_state(cull=CullMode.NONE)
    ctx.set_uniform("mvp", np.eye(4))
    ctx.bind_texture("albedo", texture)
    ctx.draw_mesh(_quad(scale=1.0))
    return ctx.end_frame()


def _textured_small_texture() -> Frame:
    return _textured(checkerboard(size=32, squares=4))


def _textured_large_texture() -> Frame:
    return _textured(marble(size=256, seed=5))


def _lit_mesh(mesh: Mesh, eye=(1.6, 1.3, 2.4)) -> Frame:
    from repro.geometry.transforms import look_at, perspective
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.use_program(builtins.LIT_TEXTURED_VERTEX,
                    builtins.LIT_TEXTURED_FRAGMENT)
    proj = perspective(math.radians(60), 1.0, 0.1, 50.0)
    view = look_at(np.array(eye, dtype=np.float64), np.zeros(3),
                   np.array([0.0, 1.0, 0.0]))
    model = np.eye(4)
    ctx.set_uniform("mvp", proj @ view @ model)
    ctx.set_uniform("model", model)
    ctx.set_uniform("light_dir", [0.4, 1.0, 0.6])
    ctx.set_uniform("tint", [1.0, 1.0, 1.0, 1.0])
    ctx.bind_texture("albedo", gradient(size=64))
    ctx.draw_mesh(mesh)
    return ctx.end_frame()


def _lit_cube() -> Frame:
    return _lit_mesh(cube())


def _lit_sphere_dense() -> Frame:
    return _lit_mesh(sphere(radius=1.1, detail=12))


def _geometry_heavy_small_on_screen() -> Frame:
    return _lit_mesh(mask(detail=3), eye=(4.5, 3.5, 7.0))


def _depth_complexity() -> Frame:
    """Four stacked full-screen layers, back to front."""
    ctx = _flat_ctx()
    ctx.set_state(depth_func=DepthFunc.LEQUAL)
    for i, z in enumerate((0.8, 0.6, 0.4, 0.2)):
        ctx.set_uniform("flat_color", [0.2 * (i + 1), 0.1, 0.1, 1.0])
        ctx.draw_mesh(_quad(z=z))
    return ctx.end_frame()


def _depth_complexity_front_to_back() -> Frame:
    ctx = _flat_ctx()
    ctx.set_state(depth_func=DepthFunc.LEQUAL)
    for i, z in enumerate((0.2, 0.4, 0.6, 0.8)):
        ctx.set_uniform("flat_color", [0.2 * (i + 1), 0.1, 0.1, 1.0])
        ctx.draw_mesh(_quad(z=z))
    return ctx.end_frame()


def _discard_cutout() -> Frame:
    tex = checkerboard(size=64, squares=8,
                       color_a=(1.0, 1.0, 1.0, 1.0),
                       color_b=(0.0, 0.0, 0.0, 0.0))
    ctx = GLContext(WIDTH, HEIGHT)
    ctx.use_program(builtins.TRANSFORM_UV_VERTEX,
                    builtins.ALPHA_CUTOUT_FRAGMENT)
    ctx.set_state(cull=CullMode.NONE)
    ctx.set_uniform("mvp", np.eye(4))
    ctx.bind_texture("albedo", tex)
    ctx.draw_mesh(_quad(scale=1.0))
    return ctx.end_frame()


def _blending_layers() -> Frame:
    ctx = _flat_ctx(color=(0.8, 0.3, 0.2, 0.4))
    ctx.set_state(blend=True, depth_test=False,
                  blend_src=BlendFactor.SRC_ALPHA,
                  blend_dst=BlendFactor.ONE_MINUS_SRC_ALPHA)
    for __ in range(3):
        ctx.draw_mesh(_quad(scale=0.9))
    return ctx.end_frame()


def _fan_heavy() -> Frame:
    ctx = _flat_ctx()
    ctx.draw_mesh(triangles(detail=8))
    return ctx.end_frame()


def _mixed_teapot() -> Frame:
    return _lit_mesh(teapot(detail=4), eye=(2.6, 2.2, 4.0))


MICROBENCHMARKS: dict[str, Callable[[], Frame]] = {
    "fill_small": _fill_small,
    "fill_half": _fill_half,
    "fill_full": _fill_full,
    "fill_grid": _fill_quads_grid,
    "tex_small": _textured_small_texture,
    "tex_large": _textured_large_texture,
    "lit_cube": _lit_cube,
    "lit_sphere": _lit_sphere_dense,
    "geom_heavy": _geometry_heavy_small_on_screen,
    "depth_b2f": _depth_complexity,
    "depth_f2b": _depth_complexity_front_to_back,
    "discard": _discard_cutout,
    "blend3": _blending_layers,
    "teapot": _mixed_teapot,
}

assert len(MICROBENCHMARKS) == 14, "the paper uses 14 microbenchmarks"


def build_microbench(name: str) -> Frame:
    if name not in MICROBENCHMARKS:
        raise KeyError(f"unknown microbenchmark {name!r}; "
                       f"known: {sorted(MICROBENCHMARKS)}")
    return MICROBENCHMARKS[name]()
