#!/usr/bin/env python
"""Case study II in miniature: DFSL adapting the work-tile size.

Renders an animated teapot on the standalone GPU, first with the two
static extremes (maximum load balance WT=1, maximum locality WT=6), then
with DFSL dynamically picking the WT size per frame (Algorithm 1).  Prints
each frame's fragment-shading time and the final comparison.

Run:  python examples/dfsl_adaptive.py
"""

from repro.harness.case_study2 import CS2Config, run_dfsl, run_static

FRAMES = 8
WORKLOAD = "W6"        # teapot


def main() -> None:
    config = CS2Config(width=128, height=96, texture_size=128)

    print(f"workload {WORKLOAD}, {FRAMES} frames, "
          f"{config.width}x{config.height}")
    static_times = {}
    for wt in (1, 3, 6):
        results = run_static(WORKLOAD, wt, FRAMES, config)
        mean = sum(r.time for r in results) / len(results)
        static_times[wt] = mean
        print(f"  static WT={wt}: mean fragment-shading time "
              f"{mean:8.0f} cycles")

    results, controller = run_dfsl(
        WORKLOAD, frames=FRAMES + 5, config=config,
        eval_min=1, eval_max=7, run_frames=32)
    print("\nDFSL trace (frame, WT, time, phase):")
    for frame_index, wt, time, mode in controller.history:
        print(f"  frame {frame_index:2d}  WT={wt}  {time:8.0f}  {mode}")
    run_phase = [t for _, _, t, mode in controller.history if mode == "run"]
    if run_phase:
        dfsl_mean = sum(run_phase) / len(run_phase)
        best_static = min(static_times.values())
        print(f"\nDFSL run-phase mean : {dfsl_mean:8.0f} cycles "
              f"(chose WT={controller.wt_best})")
        print(f"best static mean    : {best_static:8.0f} cycles")
        print(f"DFSL vs worst static: "
              f"{max(static_times.values()) / dfsl_mean:5.2f}x speedup")


if __name__ == "__main__":
    main()
