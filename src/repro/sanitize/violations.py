"""Typed runtime-invariant violations raised by the sanitizer.

Every violation is a :class:`~repro.common.events.SimulationError`, so it
propagates out of the event loop unwrapped under every error policy and
carries the tick/owner provenance the health subsystem already reports.
On top of that each class names the *invariant* that broke (``kind``) and
carries a machine-readable ``details`` dict — the payload the triage
bundle serializes, so a violation is diagnosable from the bundle alone.

The catalog (DESIGN.md §9 lists the invariants in full):

* :class:`PortProtocolViolation` — a component broke the try_send/busy/
  retry handshake (send-while-blocked with a different packet, retry
  delivered to a port that never blocked);
* :class:`DoubleDeliveryViolation` — one logical request completed twice
  at its issuer;
* :class:`LostRetryViolation` — a blocked sender aged past the configured
  window without a ``send_retry`` wake (the PR 3 PortTap bug class);
* :class:`ResourceLeakViolation` — an age-thresholded resource entry
  (MSHR, DRAM queue slot, watchdog-tracked request, bounded-link buffer)
  outlived its window;
* :class:`LivenessViolation` — ticks advance but nothing completes while
  work is outstanding (model-level livelock);
* :class:`CheckpointMismatchViolation` — a checkpoint did not survive a
  serialize → restore → shadow-replay round trip;
* :class:`JournalConsistencyViolation` — the fleet server's write-ahead
  job journal failed replay validation (CRC mismatch or corruption
  anywhere but the torn tail, a sequence-number gap, an impossible state
  transition).  Raised by :mod:`repro.fleet.journal` during recovery —
  the journal is the server's source of truth, so inconsistency is loud,
  never silently "repaired".
"""

from __future__ import annotations

from typing import Optional

from repro.common.events import SimulationError


class SanitizerViolation(SimulationError):
    """Base class: a runtime invariant the sanitizer guards was broken."""

    kind = "invariant"

    def __init__(self, message: str, *, tick: int = 0,
                 owner: Optional[str] = None,
                 details: Optional[dict] = None) -> None:
        super().__init__(f"sanitizer[{self.kind}]: {message}",
                         tick=tick, owner=owner)
        self.details = dict(details or {})
        #: Filled in by the triage writer when a bundle is emitted.
        self.bundle_path: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-serializable payload for the triage bundle."""
        return {
            "kind": self.kind,
            "message": str(self),
            "tick": self.tick,
            "owner": self.owner,
            "details": self.details,
        }


class PortProtocolViolation(SanitizerViolation):
    """The try_send/busy/retry handshake was violated."""

    kind = "port-protocol"


class DoubleDeliveryViolation(SanitizerViolation):
    """A logical request's completion callback fired more than once."""

    kind = "double-delivery"


class LostRetryViolation(SanitizerViolation):
    """A blocked sender never received its ``send_retry`` wake."""

    kind = "lost-retry-wake"


class ResourceLeakViolation(SanitizerViolation):
    """An age-thresholded resource entry outlived its window.

    ``details["resource"]`` names the pool (``mshr``, ``dram-queue``,
    ``inflight-request``, ``link-buffer``).
    """

    kind = "resource-leak"


class LivenessViolation(SanitizerViolation):
    """Ticks advance, work is outstanding, nothing completes."""

    kind = "liveness"


class CheckpointMismatchViolation(SanitizerViolation):
    """A checkpoint failed the serialize/restore/shadow-replay diff."""

    kind = "checkpoint-roundtrip"


class JournalConsistencyViolation(SanitizerViolation):
    """The fleet job journal failed replay validation.

    ``details`` carries the segment path, the offending line number, and
    the specific check that failed (``crc``, ``seq``, ``transition``).
    A torn final record in the active segment is *not* a violation — a
    SIGKILL mid-append legitimately leaves one — but damage anywhere
    else means the journal cannot be trusted as a source of truth.
    """

    kind = "journal-consistency"
