"""The pure-software reference renderer.

Chains the full functional pipeline — vertex shading, assembly/clip/cull,
viewport transform, rasterization, fragment shading with the in-shader ROP
epilogue — primitive by primitive, in draw-call order.  The GPU timing
model reuses exactly these pieces, so its framebuffer must match this
renderer's pixel-for-pixel; tests assert that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gl.context import DrawCall, Frame
from repro.pipeline.clip import assemble_and_clip
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.raster import rasterize, to_screen
from repro.pipeline.shading_env import (
    FragmentShaderEnv,
    build_varying_link,
    pack_fragments,
)
from repro.pipeline.vertex import run_vertex_shading
from repro.shader.compiler import compile_shader
from repro.shader.interpreter import WarpInterpreter
from repro.shader.rop_epilogue import attach_rop


@dataclass
class RenderStats:
    """Counters the reference renderer collects per frame."""

    draw_calls: int = 0
    vertices_shaded: int = 0
    input_primitives: int = 0
    rejected_primitives: int = 0
    culled_primitives: int = 0
    rasterized_primitives: int = 0
    fragments_shaded: int = 0
    fragments_discarded: int = 0
    fragment_warps: int = 0

    def merge(self, other: "RenderStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class ReferenceRenderer:
    """Renders frames functionally; the ground truth for the timing model."""

    def __init__(self, width: int, height: int, warp_size: int = 32,
                 raster_tile_px: int = 4) -> None:
        self.width = width
        self.height = height
        self.warp_size = warp_size
        self.raster_tile_px = raster_tile_px

    def render(self, frame: Frame) -> tuple[Framebuffer, RenderStats]:
        fb = Framebuffer(self.width, self.height)
        fb.clear(frame.clear_color, frame.clear_depth, frame.clear_stencil)
        stats = RenderStats()
        for draw in frame.draw_calls:
            stats.merge(self.render_draw(draw, fb))
        return fb, stats

    def render_draw(self, draw: DrawCall, fb: Framebuffer) -> RenderStats:
        stats = RenderStats(draw_calls=1)
        shaded = run_vertex_shading(draw, self.warp_size)
        stats.vertices_shaded = shaded.num_vertices

        prims, clip_stats = assemble_and_clip(
            draw.ibo.indices, draw.mode, shaded.clip, shaded.varyings,
            draw.state.cull)
        stats.input_primitives = clip_stats.input_primitives
        stats.rejected_primitives = clip_stats.trivially_rejected
        stats.culled_primitives = clip_stats.culled
        stats.rasterized_primitives = len(prims)

        fs_base = compile_shader(draw.fs_source, "fragment",
                                 name=f"{draw.name}_fs")
        rop_program = attach_rop(fs_base, draw.state)
        link = build_varying_link(shaded.program, rop_program)

        for prim in prims:
            tri = to_screen(prim, self.width, self.height)
            blocks = rasterize(tri, self.width, self.height,
                               self.raster_tile_px)
            if not blocks:
                continue
            xs = np.concatenate([b.xs for b in blocks])
            ys = np.concatenate([b.ys for b in blocks])
            z = np.concatenate([b.z for b in blocks])
            inv_w = np.concatenate([b.inv_w for b in blocks])
            varyings = np.vstack([b.varyings for b in blocks])
            for warp in pack_fragments(xs, ys, z, inv_w, varyings,
                                       self.warp_size):
                env = FragmentShaderEnv(draw, rop_program, shaded.program,
                                        warp, fb, link=link)
                result = WarpInterpreter(rop_program, env).run(
                    initial_mask=warp.active)
                stats.fragment_warps += 1
                stats.fragments_shaded += warp.num_fragments
                stats.fragments_discarded += int(
                    (result.discarded & warp.active).sum())
        return stats
