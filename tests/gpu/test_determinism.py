"""Determinism: identical runs produce identical cycles and statistics."""

import numpy as np
import pytest

from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.common.events import EventQueue
from repro.gpu.gpu import EmeraldGPU
from repro.harness.scenes import SceneSession
from repro.memory.builders import build_baseline_memory


def run_once(model="teapot", frames=2):
    session = SceneSession(model, 64, 48)
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=2))
    gpu = EmeraldGPU(events, scaled_gpu(GPUConfig(num_clusters=3)), 64, 48,
                     memory=memory)
    stats = [gpu.run_frame(session.frame(i)) for i in range(frames)]
    return gpu, stats


class TestDeterminism:
    def test_cycles_and_counters_identical(self):
        gpu_a, stats_a = run_once()
        gpu_b, stats_b = run_once()
        for a, b in zip(stats_a, stats_b):
            assert a.cycles == b.cycles
            assert a.fragment_cycles == b.fragment_cycles
            assert a.fragments == b.fragments
            assert a.l1_misses == b.l1_misses
            assert a.l2_misses == b.l2_misses
            assert a.dram_bytes == b.dram_bytes
            assert a.tc_tiles == b.tc_tiles

    def test_images_identical(self):
        gpu_a, _ = run_once()
        gpu_b, _ = run_once()
        assert np.array_equal(gpu_a.fb.color, gpu_b.fb.color)
        assert np.array_equal(gpu_a.fb.depth, gpu_b.fb.depth)

    def test_event_counts_identical(self):
        gpu_a, _ = run_once()
        gpu_b, _ = run_once()
        assert gpu_a.events.events_fired == gpu_b.events.events_fired

    def test_per_core_stats_identical(self):
        gpu_a, _ = run_once()
        gpu_b, _ = run_once()
        for core_a, core_b in zip(gpu_a.cores, gpu_b.cores):
            assert core_a.stats.dump() == core_b.stats.dump()
            assert core_a.cache_misses() == core_b.cache_misses()
