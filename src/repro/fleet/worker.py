"""The fleet worker: one process, one job attempt, a typed result.

``worker_entry`` is the :mod:`multiprocessing` target; ``run_job`` holds
the actual logic (and is callable in-process for tests).  The worker's
contract is the chaos harness's loud-death contract extended to a
process boundary: **whatever happens, the job directory ends up with
either an atomic ``result.json`` naming a typed outcome, or nothing at
all** (the process was killed) — never a bare traceback, never a torn
result a supervisor could misread.

Per-attempt flow:

1. If ``checkpoint.json`` exists (a previous attempt crashed or was
   preempted), validate and load it; a
   :class:`~repro.soc.checkpoint.CheckpointCorruptError` quarantines the
   snapshot and falls back to a from-scratch run.
2. Run the tiny full-system workload with the watchdog armed, per-frame
   checkpoints written atomically, the sanitizer armed (triage bundles
   under ``triage/``), and a frame hook that heartbeats and honors the
   fault-injection controls CI / tests use (self-SIGKILL, deliberate
   hang).
3. Map the ending to the attempt taxonomy (:mod:`repro.fleet.job`) and
   publish ``result.json`` write-then-rename.

Determinism: the result payload is derived from the final framebuffer
(bit-identical across crash/resume, pinned by the recovery tests), so a
retried or preempted job publishes the same payload bytes as an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import replace
from typing import Optional

from repro.fleet.job import JobSpec
from repro.fleet.manifest import cache_key, result_payload
from repro.health import (FaultConfig, HealthConfig, PreemptionRequested,
                          RetryConfig, load_checkpoint)
from repro.soc.checkpoint import CheckpointError

#: Job-directory file names (the worker/supervisor wire protocol).
RESULT_FILE = "result.json"
CHECKPOINT_FILE = "checkpoint.json"
HEARTBEAT_FILE = "heartbeat.json"
CONTROL_FILE = "control.json"
PREEMPT_FLAG = "PREEMPT"
CLAIM_FILE = "CLAIM"
TRIAGE_DIR = "triage"

DEFAULT_BUDGET_EVENTS = 5_000_000


def _read_control(jobdir: str) -> dict:
    """Test/CI fault-injection controls (absent in production runs).

    ``kill_at_frame`` — SIGKILL ourselves after that frame completes (a
    real, uncatchable worker crash); ``hang_at_frame`` — stop beating and
    sleep (a hung worker for the heartbeat monitor to catch);
    ``hang_after_result`` — publish the result, then stop beating (the
    publish-vs-staleness race: the supervisor must accept the result).
    """
    try:
        with open(os.path.join(jobdir, CONTROL_FILE)) as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return {}
    return doc if isinstance(doc, dict) else {}


def _read_claim(jobdir: str) -> Optional[str]:
    """The supervisor's claim token for this attempt, if one was issued.

    The fleet server writes ``CLAIM`` (one line: server incarnation +
    attempt sequence) before spawning the worker; the token is stamped
    into every snapshot as provenance (:class:`GraphicsCheckpoint.claim`).
    One-shot sweeps issue no claims and the field stays None.
    """
    try:
        with open(os.path.join(jobdir, CLAIM_FILE)) as handle:
            token = handle.readline().strip()
    except OSError:
        return None
    return token or None


def _load_resume_checkpoint(jobdir: str, expected_job: Optional[str]):
    """(checkpoint, fallback_reason) — corrupt snapshots are quarantined.

    A snapshot owned by a different job (``checkpoint.job`` disagrees
    with ``expected_job``) is set aside as ``.foreign`` and ignored:
    resuming it would silently replay another job's state and publish a
    wrong payload under this job's cache key.
    """
    path = os.path.join(jobdir, CHECKPOINT_FILE)
    if not os.path.exists(path):
        return None, None
    try:
        checkpoint = load_checkpoint(path)
    except (CheckpointError, OSError) as exc:
        # Typed corruption (CRC mismatch, truncation) or unreadable file:
        # keep the evidence, rerun from scratch.
        quarantine = path + ".corrupt"
        try:
            os.replace(path, quarantine)
        except OSError:
            pass
        return None, f"{type(exc).__name__}: {exc}"
    if expected_job is not None and checkpoint.job != expected_job:
        try:
            os.replace(path, path + ".foreign")
        except OSError:
            pass
        return None, (f"checkpoint owner {checkpoint.job!r} does not "
                      f"match this job ({expected_job!r}); "
                      f"rerunning from scratch")
    return checkpoint, None


def _fb_crc(soc) -> int:
    import zlib
    return zlib.crc32(soc.gpu.fb.color.tobytes())


def _sanitize_config(jobdir: str, spec: JobSpec):
    from repro.sanitize.chaos import CHAOS_SANITIZE
    return replace(
        CHAOS_SANITIZE,
        bundle_dir=os.path.join(jobdir, TRIAGE_DIR),
        command=f"python -m repro fleet --jobs - <<'EOF'\n"
                f"[{json.dumps(spec.to_dict())}]\nEOF")


def _run_config(spec: JobSpec, jobdir: str, frame_hook, preempt_check,
                job_key: Optional[str] = None,
                claim: Optional[str] = None):
    from repro.common.config import (DRAMConfig, GPUConfig, SoCTopology,
                                     scaled_gpu)
    from repro.soc.soc import SoCRunConfig

    faults = None
    if spec.faults:
        faults = FaultConfig(seed=spec.seed, **spec.faults)
    # A declarative spec carries the full system shape; name-string specs
    # keep the fleet's historical default shape.
    topology = (SoCTopology.from_dict(spec.topology)
                if spec.topology is not None else None)
    return SoCRunConfig(
        width=spec.width, height=spec.height, num_frames=spec.frames,
        memory_config=spec.memory_config,
        dram=DRAMConfig(channels=2),
        gpu=scaled_gpu(GPUConfig(num_clusters=2)),
        gpu_frame_period_ticks=120_000,
        display_period_ticks=60_000,
        cpu_work_per_frame=40,
        seed=spec.seed,
        topology=topology,
        health=HealthConfig(
            watchdog=True,
            faults=faults,
            retry=RetryConfig() if spec.retries else None,
            checkpoint_every=1,
            checkpoint_path=os.path.join(jobdir, CHECKPOINT_FILE),
            checkpoint_job=job_key,
            checkpoint_claim=claim,
            preempt_check=preempt_check,
            error_policy="wrap"),
        sanitize=_sanitize_config(jobdir, spec),
        frame_hook=frame_hook,
    )


def _metrics(soc, results) -> dict:
    """DSE metrics from a finished run (``spec.collect_metrics``).

    Deterministic for the fault-free, uninterrupted runs the DSE driver
    dispatches; runs with kill/preempt controls should not request
    metrics (the frame-time means cover resumed frames only).
    """
    from repro.gpu.energy import soc_energy
    from repro.memory.request import SourceType

    end_tick = max(1, results.end_tick)
    mean_total = results.mean_total_time
    total_bytes = soc.memory.total_bytes()
    return {
        "end_tick": results.end_tick,
        "mean_gpu_time": results.mean_gpu_time,
        "mean_total_time": mean_total,
        "fps_fraction": results.fps_fraction,
        "fps": (1e6 / mean_total) if mean_total else 0.0,
        "dram_bytes": {src.value: soc.memory.total_bytes(src)
                       for src in SourceType},
        "dram_bandwidth": total_bytes / end_tick,
        "energy_uj": soc_energy(soc).total_uj,
        "topology_hash": soc.topology.topology_hash(),
    }


def _run_sampled_job(spec: JobSpec, jobdir: str, config, base: dict,
                     job_key: str) -> dict:
    """The sampled-job attempt: alternate windows, extrapolate, publish.

    Sampled runs own their window checkpointing in memory (no
    ``checkpoint.json``, no crash-resume — a retried attempt restarts
    from scratch; the run is a fraction of a full-detail one, so the
    resume machinery would cost more than it saves).  Heartbeats and the
    kill/hang controls still ride the frame hook inside detailed
    windows.  The cached payload carries only deterministic facts — the
    estimates, the schedule, the last detailed framebuffer CRC — never
    wall-clock times (those go in the result doc outside the payload).
    """
    from repro.common.events import SimulationError
    from repro.harness.scenes import SceneSession
    from repro.sampling.sampler import run_sampled
    from repro.sampling.stats import ExtrapolationError
    from repro.sampling.windows import parse_sample_spec
    from repro.sanitize.violations import SanitizerViolation

    schedule = parse_sample_spec(spec.sample, spec.frames)

    def factory():
        return SceneSession(spec.model, spec.width, spec.height)

    try:
        sampled = run_sampled(config, factory, schedule, job=job_key)
    except SanitizerViolation as violation:
        return _write_result(jobdir, {
            **base, "outcome": "violation", "detail": str(violation),
            "bundle": violation.bundle_path})
    except (SimulationError, ExtrapolationError) as error:
        return _write_result(jobdir, {
            **base, "outcome": "detected",
            "detail": f"{type(error).__name__}: {error}"})
    except Exception as exc:                    # loud-death contract
        return _write_result(jobdir, {
            **base, "outcome": "error",
            "detail": f"{type(exc).__name__}: {exc}"})
    doc = sampled.as_dict()
    for volatile in ("wall_functional", "wall_detailed", "wall_total"):
        doc.pop(volatile, None)
    payload = result_payload(spec, sampled.final_detailed_fb_crc,
                             metrics={"sampled": doc})
    return _write_result(jobdir, {
        **base, "outcome": "ok", "detail": "",
        "payload": payload,
        "wall_functional": sampled.wall_functional,
        "wall_detailed": sampled.wall_detailed,
        "frames_functional": sampled.frames_functional,
        "frames_detailed": sampled.frames_detailed})


def _write_result(jobdir: str, doc: dict) -> dict:
    """Publish the attempt's verdict atomically."""
    path = os.path.join(jobdir, RESULT_FILE)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return doc


def run_job(spec: JobSpec, jobdir: str,
            budget_events: int = DEFAULT_BUDGET_EVENTS) -> dict:
    """Run one attempt; always returns (and persists) a typed outcome."""
    from repro.harness.scenes import SceneSession
    from repro.health.recovery import resume_run
    from repro.sanitize.violations import SanitizerViolation
    from repro.soc.soc import EmeraldSoC
    from repro.common.events import SimulationError

    os.makedirs(jobdir, exist_ok=True)
    control = _read_control(jobdir)
    heartbeat_path = os.path.join(jobdir, HEARTBEAT_FILE)
    preempt_flag = os.path.join(jobdir, PREEMPT_FLAG)
    beats = 0

    def frame_hook(frame_index: int, tick: int) -> None:
        nonlocal beats
        beats += 1
        from repro.fleet.heartbeat import write_heartbeat
        write_heartbeat(heartbeat_path, frame=frame_index, tick=tick,
                        beats=beats)
        if control.get("kill_at_frame") == frame_index:
            os.kill(os.getpid(), signal.SIGKILL)
        if control.get("hang_at_frame") == frame_index:
            time.sleep(3600)                    # a hang, for the monitor

    def preempt_check(frames_done: int) -> bool:
        # Never "preempt" a run whose final frame just finished — the
        # loop is about to end normally and the result is in hand.
        return (frames_done < spec.frames
                and os.path.exists(preempt_flag))

    job_key = cache_key(spec)
    checkpoint, fallback = _load_resume_checkpoint(jobdir, job_key)
    if checkpoint is not None and checkpoint.frame_index >= spec.frames:
        # The previous attempt snapshotted *after* its final frame and
        # died before its result was consumed (e.g. a worker orphaned by
        # a server SIGKILL).  Nothing is left to simulate, but the final
        # framebuffer lived only in the dead process — rewind so the
        # resume re-renders the last frame and republishes the identical
        # payload instead of hashing a never-drawn framebuffer.
        try:
            checkpoint = checkpoint.rewind(
                checkpoint.frame_index - spec.frames + 1)
        except ValueError as exc:
            checkpoint, fallback = None, f"unrewindable snapshot: {exc}"
    resumed_from = checkpoint.frame_index if checkpoint is not None else 0
    base = {"name": spec.name, "resumed_from": resumed_from,
            "fallback": fallback}

    session = SceneSession(spec.model, spec.width, spec.height)
    from repro.fleet.heartbeat import write_heartbeat
    write_heartbeat(heartbeat_path, frame=-1, tick=0, beats=0)

    config = _run_config(spec, jobdir, frame_hook, preempt_check,
                         job_key=job_key, claim=_read_claim(jobdir))
    if spec.sample is not None:
        return _run_sampled_job(spec, jobdir, config, base, job_key)
    try:
        if spec.ffwd and resumed_from < spec.ffwd:
            # Fast-forward jobs skip the warm-up frames functionally
            # (zero timing events) and enter detailed timing from the
            # snapshot — unless an on-disk checkpoint already sits past
            # the switch point, in which case the normal resume wins.
            from repro.sampling.functional import FunctionalSim
            sim = FunctionalSim(config, session.frame, render="none")
            sim.run(spec.ffwd)
            checkpoint = sim.checkpoint(job=job_key)
            session = SceneSession(spec.model, spec.width, spec.height)
        if checkpoint is not None:
            soc, results = resume_run(checkpoint, config, session.frame,
                                      session.framebuffer_address,
                                      max_events=budget_events)
        else:
            soc = EmeraldSoC(config, session.frame,
                             session.framebuffer_address)
            results = soc.run(max_events=budget_events)
    except PreemptionRequested as preempted:
        return _write_result(jobdir, {
            **base, "outcome": "preempted",
            "detail": str(preempted),
            "checkpoint_frame": preempted.frame_index})
    except SanitizerViolation as violation:
        return _write_result(jobdir, {
            **base, "outcome": "violation", "detail": str(violation),
            "bundle": violation.bundle_path})
    except SimulationError as error:
        return _write_result(jobdir, {
            **base, "outcome": "detected",
            "detail": f"{type(error).__name__}: {error}"})
    except Exception as exc:                    # loud-death contract:
        return _write_result(jobdir, {          # typed, never a traceback
            **base, "outcome": "error",
            "detail": f"{type(exc).__name__}: {exc}"})

    metrics = _metrics(soc, results) if spec.collect_metrics else None
    payload = result_payload(spec, _fb_crc(soc), metrics=metrics)
    if spec.collect_metrics:
        # A full stats dump (with the topology block) rides along for
        # DSE post-mortems; not part of the cached payload.
        from repro.harness.report import write_stats_json
        write_stats_json(soc.stat_groups(),
                         os.path.join(jobdir, "stats.json"),
                         topology=soc.topology)
    doc = _write_result(jobdir, {
        **base, "outcome": "ok", "detail": "",
        "payload": payload,
        "end_tick": results.end_tick,
        "checkpoints": results.checkpoints_taken,
        "noc_retries": results.noc_retries})
    if control.get("hang_after_result"):
        time.sleep(3600)                        # result published, then hang
    return doc


def worker_entry(spec_dict: dict, jobdir: str,
                 budget_events: int = DEFAULT_BUDGET_EVENTS) -> None:
    """Process target: nothing escapes — a result file or death only."""
    try:
        spec = JobSpec.from_dict(spec_dict)
        run_job(spec, jobdir, budget_events=budget_events)
    except BaseException as exc:    # pragma: no cover - last-ditch guard
        try:
            _write_result(jobdir, {
                "name": spec_dict.get("name", "?"),
                "outcome": "error",
                "detail": f"{type(exc).__name__}: {exc}",
                "resumed_from": 0, "fallback": None})
        except BaseException:
            pass
