"""Fast-forward driver: N frames functional, then detailed timing.

:func:`fast_forward` is the gem5 ``--fast-forward`` idiom composed from
this repo's parts: a :class:`~repro.sampling.functional.FunctionalSim`
executes the warm-up frames with zero timing events, snapshots at the
region-of-interest boundary, and :func:`~repro.health.recovery.resume_run`
enters detailed timing from that snapshot — the exact machinery crash
recovery already uses, which is what makes the switch trustworthy.

:func:`verify_equivalence` is the executable form of the mode-switch
contract (DESIGN.md §13).  It checks, for one workload:

1. **trace identity** — the functional engine's recorded command stream
   is byte-identical to the detailed engine's at the same boundary;
2. **boundary framebuffer** — the functional render of the switch frame
   matches the detailed GPU's framebuffer after the same frame, CRC-exact;
3. **final framebuffer** — fast-forward-then-detailed ends with the same
   framebuffer CRC as an uninterrupted full-detail run;
4. **post-switch fingerprint** — the detailed phase after a functional
   snapshot is bit-identical (events fired, duration, per-frame times,
   DRAM traffic, framebuffer) to a detailed phase resumed from a
   *detailed* snapshot at the same boundary, i.e. the engines are
   interchangeable on either side of the switch.

The CI ffwd smoke job gates on this report.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.health import HealthConfig
from repro.health.recovery import resume_run
from repro.sampling.functional import FunctionalSim, FunctionalSimError
from repro.soc.checkpoint import GraphicsCheckpoint


def fb_crc(soc) -> int:
    """CRC32 of a SoC's GPU framebuffer color plane (the golden idiom)."""
    return zlib.crc32(soc.gpu.fb.color.tobytes())


def switch_fingerprint(soc, results) -> dict:
    """Tick-origin-independent fingerprint of a post-switch detailed phase.

    Resume is tick-shift invariant, so two detailed phases entered from
    snapshots at the same frame boundary must agree on everything here
    *bit-exactly* — only absolute tick origins may differ, hence
    ``duration`` (end minus start) rather than ``end_tick``.
    """
    return {
        "frames": len(results.frames),
        "duration": results.end_tick - soc._start_tick,
        "events_fired": soc.events.events_fired,
        "mean_gpu_time": results.mean_gpu_time,
        "mean_total_time": results.mean_total_time,
        "gpu_times": [r.gpu_time for r in results.frames],
        "total_times": [r.total_time for r in results.frames],
        "dram_bytes": dict(results.dram_bytes),
        "row_hit_rate": results.row_hit_rate,
        "fb_crc": fb_crc(soc),
    }


@dataclass
class FastForwardResult:
    """One fast-forwarded run: functional warm-up + detailed remainder."""

    checkpoint: GraphicsCheckpoint     # the switch-boundary snapshot
    soc: object                        # the detailed-phase EmeraldSoC
    results: object                    # SoCResults for the detailed frames
    frames_functional: int
    frames_detailed: int
    functional_fb_crc: Optional[int]   # switch-frame render (policy-dependent)
    final_fb_crc: int                  # after the last detailed frame
    wall_functional: float
    wall_detailed: float

    @property
    def wall_total(self) -> float:
        return self.wall_functional + self.wall_detailed

    def fingerprint(self) -> dict:
        return switch_fingerprint(self.soc, self.results)


def fast_forward(run_config, session_factory: Callable[[], object],
                 ffwd_frames: int, job: Optional[str] = None,
                 render: str = "boundary",
                 max_events: Optional[int] = None) -> FastForwardResult:
    """Run ``ffwd_frames`` functionally, then the rest in detailed timing.

    ``session_factory`` builds a fresh scene session (``.frame`` +
    ``.framebuffer_address``) per phase — the same fresh-session
    semantics crash-recovery resume has, so frame content stays a pure
    function of the frame index on both sides of the switch.
    """
    if not 0 < ffwd_frames < run_config.num_frames:
        raise FunctionalSimError(
            f"ffwd_frames must leave at least one detailed frame: need "
            f"0 < ffwd < {run_config.num_frames}, got {ffwd_frames}")
    start = time.perf_counter()
    session = session_factory()
    sim = FunctionalSim(run_config, session.frame, render=render)
    sim.run(ffwd_frames)
    checkpoint = sim.checkpoint(job=job)
    wall_functional = time.perf_counter() - start

    start = time.perf_counter()
    session = session_factory()
    soc, results = resume_run(checkpoint, run_config, session.frame,
                              session.framebuffer_address,
                              max_events=max_events)
    wall_detailed = time.perf_counter() - start
    return FastForwardResult(
        checkpoint=checkpoint, soc=soc, results=results,
        frames_functional=ffwd_frames,
        frames_detailed=len(results.frames),
        functional_fb_crc=sim.fb_crc() if sim.fb is not None else None,
        final_fb_crc=fb_crc(soc),
        wall_functional=wall_functional, wall_detailed=wall_detailed)


def verify_equivalence(run_config, session_factory: Callable[[], object],
                       ffwd_frames: int) -> dict:
    """Prove the functional/detailed switch is exact for one workload.

    Runs the fast-forwarded configuration plus three detailed controls
    (full run, boundary-truncated run, detailed-snapshot resume) and
    reports the four contract checks.  ``ok`` is True only when every
    check passes; the CI smoke job fails on anything else.
    """
    base = replace(run_config, health=None, frame_hook=None)

    ffwd = fast_forward(base, session_factory, ffwd_frames,
                        render="boundary")

    # Control 1: uninterrupted full-detail run (final-framebuffer golden).
    start = time.perf_counter()
    session = session_factory()
    from repro.soc.soc import EmeraldSoC   # late import: cycle via health
    soc_full = EmeraldSoC(base, session.frame, session.framebuffer_address)
    soc_full.run()
    wall_full = time.perf_counter() - start

    # Control 2: detailed run truncated at the switch boundary, writing a
    # detailed-mode snapshot exactly there (checkpoint_every=ffwd).  Its
    # final framebuffer is the boundary frame the functional render must
    # match, and its snapshot is the detailed twin of ffwd.checkpoint.
    boundary_config = replace(
        base, num_frames=ffwd_frames,
        health=HealthConfig(checkpoint_every=ffwd_frames))
    session = session_factory()
    soc_boundary = EmeraldSoC(boundary_config, session.frame,
                              session.framebuffer_address)
    soc_boundary.run()
    detailed_ckpt = soc_boundary.checkpoints.last

    # Control 3: detailed phase resumed from the *detailed* snapshot.
    session = session_factory()
    soc_resumed, results_resumed = resume_run(
        detailed_ckpt, base, session.frame, session.framebuffer_address)

    functional_fp = ffwd.fingerprint()
    detailed_fp = switch_fingerprint(soc_resumed, results_resumed)
    checks = {
        "trace_identity":
            ffwd.checkpoint.trace_json == detailed_ckpt.trace_json,
        "boundary_fb_crc":
            ffwd.functional_fb_crc == fb_crc(soc_boundary),
        "final_fb_crc": ffwd.final_fb_crc == fb_crc(soc_full),
        "post_switch_fingerprint": functional_fp == detailed_fp,
    }
    return {
        "workload": getattr(run_config, "memory_config", None),
        "ffwd_frames": ffwd_frames,
        "total_frames": run_config.num_frames,
        "checks": checks,
        "ok": all(checks.values()),
        "final_fb_crc": ffwd.final_fb_crc,
        "boundary_fb_crc": ffwd.functional_fb_crc,
        "checkpoint_modes": [ffwd.checkpoint.mode, detailed_ckpt.mode],
        "post_switch_fingerprint": functional_fp,
        "wall": {
            "ffwd": ffwd.wall_total,
            "ffwd_functional": ffwd.wall_functional,
            "full_detail": wall_full,
        },
    }
