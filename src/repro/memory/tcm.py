"""TCM-style intensity clustering (Kim et al.), as used by DASH.

Every quantum the scheduler classifies CPU threads into a memory
*non-intensive* and a memory *intensive* cluster.  Threads are sorted by
bandwidth usage ascending; threads are admitted to the non-intensive
cluster while their cumulative usage stays below ``ClusterThresh x
TotalBWusage`` (Table 3: ClusterThresh = 0.15).

The paper's case study highlights the ambiguity of ``TotalBWusage`` in an
SoC: the ``DCB`` configuration computes it from CPU traffic only, ``DTB``
from all traffic including IPs (§5.1.1).  :class:`IntensityClassifier`
supports both via ``include_ip_bandwidth``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.memory.request import SourceType


class IntensityClassifier:
    """Per-quantum CPU thread intensity clustering."""

    def __init__(self, cluster_threshold: float = 0.15,
                 quantum_ticks: int = 1_000_000,
                 include_ip_bandwidth: bool = False) -> None:
        if not (0.0 < cluster_threshold < 1.0):
            raise ValueError("cluster_threshold must be in (0, 1)")
        self.cluster_threshold = cluster_threshold
        self.quantum_ticks = quantum_ticks
        self.include_ip_bandwidth = include_ip_bandwidth
        self._usage: dict[int, int] = defaultdict(int)   # cpu id -> bytes
        self._ip_bytes = 0
        self._quantum_start = 0
        self._intensive: set[int] = set()

    def note_traffic(self, source: SourceType, source_id: int,
                     size: int) -> None:
        if source is SourceType.CPU:
            self._usage[source_id] += size
        else:
            self._ip_bytes += size

    def is_intensive(self, cpu_id: int) -> bool:
        return cpu_id in self._intensive

    @property
    def intensive_threads(self) -> frozenset[int]:
        return frozenset(self._intensive)

    def maybe_advance_quantum(self, now: int) -> bool:
        """Recluster when the quantum elapsed; True if reclassified."""
        if now - self._quantum_start < self.quantum_ticks:
            return False
        self._recluster()
        self._quantum_start = now
        self._usage.clear()
        self._ip_bytes = 0
        return True

    def _recluster(self) -> None:
        total = sum(self._usage.values())
        if self.include_ip_bandwidth:
            total += self._ip_bytes
        if total == 0:
            self._intensive = set()
            return
        budget = self.cluster_threshold * total
        used = 0.0
        intensive: set[int] = set()
        for cpu_id, usage in sorted(self._usage.items(),
                                    key=lambda item: (item[1], item[0])):
            if used + usage <= budget:
                used += usage       # stays non-intensive
            else:
                intensive.add(cpu_id)
        self._intensive = intensive
