"""Opt-in cycle-attribution tracing (Chrome-trace export + profiler).

See DESIGN.md §8 for the trace model, track naming scheme and the
overhead contract.  Quick use::

    from repro.trace import TraceConfig
    config.trace = TraceConfig(path="frame.json", profile=True)
"""

from repro.trace.profiler import CycleAttribution, Span, profile, summarize
from repro.trace.taps import TraceTap
from repro.trace.tracer import (DEFAULT_CATEGORIES, TraceConfig, TraceError,
                                Tracer, load_trace)
from repro.trace.validate import TraceFormatError, validate_trace

__all__ = [
    "CycleAttribution", "Span", "profile", "summarize",
    "TraceTap",
    "DEFAULT_CATEGORIES", "TraceConfig", "TraceError", "Tracer",
    "load_trace",
    "TraceFormatError", "validate_trace",
]
