"""Compiled per-program dispatch tables for the warp executor (fastpath).

The reference :class:`~repro.shader.interpreter.WarpInterpreter` decodes
every instruction on every dynamic execution: isinstance checks per
operand, opcode dict probes, a fresh ``np.errstate`` context per op.  At
hundreds of thousands of dynamic warp instructions per frame that decode
cost dominates the actual numpy lane arithmetic.

This module performs the decode **once per program**: each instruction is
compiled to a pre-bound handler closure (operand register indices and
immediate lane arrays captured at build time), and the run loop walks the
handler table with a single ``errstate`` around the whole execution.  The
table is cached per ``(program digest, warp size)`` by
:func:`repro.shader.compiler.dispatch_for`.

Bit-identity contract: for any program/env/mask, :meth:`CompiledProgram.run`
returns an :class:`~repro.shader.interpreter.ExecResult` whose trace
(op/pc/active_lanes/accesses sequences), discarded and completed masks,
register effects and env side effects are exactly those of the reference
interpreter — same numpy operations on the same values in the same order,
only the Python interpretation overhead removed.  ``tests/shader/
test_dispatch.py`` pins this equivalence per opcode family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.shader.interpreter import (
    ExecResult,
    TraceOp,
    WarpTrace,
    _ALU_BINARY,
    _ALU_UNARY,
    _SETP,
    _StackEntry,
)
from repro.shader.isa import Imm, Instruction, Opcode, Pred, Reg
from repro.shader.program import Program

# Table-row kinds; control flow is handled by the run loop itself.
_EXEC, _BRA, _EXIT, _DISCARD = 0, 1, 2, 3


def _make_reader(operand, width: int):
    """Pre-bound operand fetch: ``read(regs, preds) -> (W,) array``.

    Immediates become one cached lane array per program (the reference
    interpreter builds an identical ``np.full`` per read; no op mutates
    its source arrays, so sharing is value-identical).
    """
    kind = type(operand)
    if kind is Reg:
        return lambda regs, preds, _i=operand.index: regs[_i]
    if kind is Imm:
        arr = np.full(width, operand.value)
        arr.setflags(write=False)
        return lambda regs, preds, _a=arr: _a
    if kind is Pred:
        return lambda regs, preds, _i=operand.index: preds[_i]
    raise TypeError(f"cannot read operand {operand!r}")


def _build_handler(instr: Instruction, width: int):
    """Compile one instruction to ``handler(regs, preds, mask, record, env)``.

    Each family mirrors the corresponding ``WarpInterpreter._execute``
    branch exactly (same array expressions, same masked writes, same
    ``record.accesses`` extension order).
    """
    op = instr.op
    if op in _ALU_BINARY:
        fn = _ALU_BINARY[op]
        d = instr.dsts[0].index
        ra = _make_reader(instr.srcs[0], width)
        rb = _make_reader(instr.srcs[1], width)

        def handler(regs, preds, mask, record, env):
            regs[d][mask] = fn(ra(regs, preds), rb(regs, preds))[mask]
        return handler
    if op in _ALU_UNARY:
        fn = _ALU_UNARY[op]
        d = instr.dsts[0].index
        ra = _make_reader(instr.srcs[0], width)

        def handler(regs, preds, mask, record, env):
            regs[d][mask] = np.asarray(fn(ra(regs, preds)))[mask]
        return handler
    if op is Opcode.MAD:
        d = instr.dsts[0].index
        ra = _make_reader(instr.srcs[0], width)
        rb = _make_reader(instr.srcs[1], width)
        rc = _make_reader(instr.srcs[2], width)

        def handler(regs, preds, mask, record, env):
            regs[d][mask] = (ra(regs, preds) * rb(regs, preds)
                             + rc(regs, preds))[mask]
        return handler
    if op in _SETP:
        fn = _SETP[op]
        d = instr.dsts[0].index
        ra = _make_reader(instr.srcs[0], width)
        rb = _make_reader(instr.srcs[1], width)

        def handler(regs, preds, mask, record, env):
            preds[d][mask] = fn(ra(regs, preds), rb(regs, preds))[mask]
        return handler
    if op is Opcode.SEL:
        d = instr.dsts[0].index
        p = instr.srcs[0].index
        ra = _make_reader(instr.srcs[1], width)
        rb = _make_reader(instr.srcs[2], width)

        def handler(regs, preds, mask, record, env):
            regs[d][mask] = np.where(preds[p], ra(regs, preds),
                                     rb(regs, preds))[mask]
        return handler
    if op is Opcode.PAND:
        d = instr.dsts[0].index
        a, b = instr.srcs[0].index, instr.srcs[1].index

        def handler(regs, preds, mask, record, env):
            preds[d][mask] = (preds[a] & preds[b])[mask]
        return handler
    if op is Opcode.POR:
        d = instr.dsts[0].index
        a, b = instr.srcs[0].index, instr.srcs[1].index

        def handler(regs, preds, mask, record, env):
            preds[d][mask] = (preds[a] | preds[b])[mask]
        return handler
    if op is Opcode.PNOT:
        d = instr.dsts[0].index
        a = instr.srcs[0].index

        def handler(regs, preds, mask, record, env):
            preds[d][mask] = ~preds[a][mask]
        return handler
    if op is Opcode.LD_ATTR:
        d = instr.dsts[0].index
        slot = instr.slot

        def handler(regs, preds, mask, record, env):
            values, accesses = env.attribute(slot, mask)
            regs[d][mask] = np.asarray(values)[mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.LD_VARY:
        d = instr.dsts[0].index
        slot = instr.slot

        def handler(regs, preds, mask, record, env):
            regs[d][mask] = np.asarray(env.varying(slot, mask))[mask]
        return handler
    if op is Opcode.LD_CONST:
        d = instr.dsts[0].index
        slot = instr.slot

        def handler(regs, preds, mask, record, env):
            value, accesses = env.constant(slot, mask)
            regs[d][mask] = np.full(width, value)[mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.ST_OUT:
        slot = instr.slot
        ra = _make_reader(instr.srcs[0], width)

        def handler(regs, preds, mask, record, env):
            env.store_output(slot, ra(regs, preds), mask)
        return handler
    if op is Opcode.TEX:
        slot = instr.slot
        dsts = tuple(d.index for d in instr.dsts)
        ru = _make_reader(instr.srcs[0], width)
        rv = _make_reader(instr.srcs[1], width)

        def handler(regs, preds, mask, record, env):
            rgba, accesses = env.tex(slot, ru(regs, preds),
                                     rv(regs, preds), mask)
            for i, d in enumerate(dsts):
                regs[d][mask] = rgba[:, i][mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.ZREAD or op is Opcode.SREAD:
        d = instr.dsts[0].index
        call = "zread" if op is Opcode.ZREAD else "sread"

        def handler(regs, preds, mask, record, env):
            values, accesses = getattr(env, call)(mask)
            regs[d][mask] = np.asarray(values)[mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.ZWRITE or op is Opcode.SWRITE:
        ra = _make_reader(instr.srcs[0], width)
        call = "zwrite" if op is Opcode.ZWRITE else "swrite"

        def handler(regs, preds, mask, record, env):
            record.accesses.extend(getattr(env, call)(ra(regs, preds), mask))
        return handler
    if op is Opcode.FB_READ:
        dsts = tuple(d.index for d in instr.dsts)

        def handler(regs, preds, mask, record, env):
            rgba, accesses = env.fb_read(mask)
            for i, d in enumerate(dsts):
                regs[d][mask] = rgba[:, i][mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.FB_WRITE:
        readers = tuple(_make_reader(s, width) for s in instr.srcs)

        def handler(regs, preds, mask, record, env):
            rgba = np.stack([r(regs, preds) for r in readers], axis=1)
            record.accesses.extend(env.fb_write(rgba, mask))
        return handler
    if op is Opcode.LD_GLOBAL:
        d = instr.dsts[0].index
        ra = _make_reader(instr.srcs[0], width)

        def handler(regs, preds, mask, record, env):
            values, accesses = env.ld_global(ra(regs, preds), mask)
            regs[d][mask] = np.asarray(values)[mask]
            record.accesses.extend(accesses)
        return handler
    if op is Opcode.ST_GLOBAL:
        ra = _make_reader(instr.srcs[0], width)
        rb = _make_reader(instr.srcs[1], width)

        def handler(regs, preds, mask, record, env):
            record.accesses.extend(
                env.st_global(ra(regs, preds), rb(regs, preds), mask))
        return handler
    raise NotImplementedError(f"unhandled opcode {op}")   # pragma: no cover


class CompiledProgram:
    """A program decoded once into a handler table; see module docstring.

    Table rows are plain tuples walked at C speed:
    ``(kind, guard_index, guard_sense, handler, opcode, target, reconv)``
    — ``guard_index`` is -1 when unguarded; for ``_BRA`` rows the guard
    fields describe the branch condition and ``handler`` is ``None``.
    """

    __slots__ = ("program", "width", "exit_pc", "table",
                 "_num_regs", "_num_preds")

    def __init__(self, program: Program, width: int) -> None:
        self.program = program
        self.width = width
        self.exit_pc = len(program.instructions)
        self._num_regs = max(program.num_regs, 1)
        self._num_preds = max(program.num_preds, 1)
        table = []
        for instr in program.instructions:
            op = instr.op
            gidx = instr.guard.index if instr.guard is not None else -1
            gsense = instr.guard_sense
            if op is Opcode.BRA:
                table.append((_BRA, gidx, gsense, None, op,
                              instr.target, instr.reconv))
            elif op is Opcode.EXIT:
                table.append((_EXIT, gidx, gsense, None, op, None, None))
            elif op is Opcode.DISCARD:
                table.append((_DISCARD, gidx, gsense, None, op, None, None))
            else:
                table.append((_EXEC, gidx, gsense,
                              _build_handler(instr, width), op, None, None))
        self.table = tuple(table)

    def run(self, env, initial_mask: Optional[np.ndarray] = None,
            max_dynamic_instructions: int = 100_000) -> ExecResult:
        """Execute one warp; mirrors ``WarpInterpreter.run`` step for step."""
        width = self.width
        exit_pc = self.exit_pc
        table = self.table

        regs = np.zeros((self._num_regs, width))
        preds = np.zeros((self._num_preds, width), dtype=bool)
        if initial_mask is None:
            initial_mask = np.ones(width, dtype=bool)
        else:
            initial_mask = np.asarray(initial_mask, dtype=bool).copy()

        discarded = np.zeros(width, dtype=bool)
        completed = np.zeros(width, dtype=bool)
        stack = [_StackEntry(0, exit_pc, initial_mask.copy())]
        trace = WarpTrace()
        ops = trace.ops
        append = ops.append
        count_nonzero = np.count_nonzero

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            while stack:
                if len(ops) > max_dynamic_instructions:
                    raise RuntimeError(
                        f"{self.program.name}: exceeded "
                        f"{max_dynamic_instructions} dynamic instructions "
                        "(diverging loop?)"
                    )
                entry = stack[-1]
                pc = entry.pc
                active = entry.mask
                # count_nonzero beats ndarray.any() on warp-width bool
                # arrays (no ufunc-reduce machinery) — same truth value.
                if pc == entry.rpc or pc >= exit_pc \
                        or not count_nonzero(active):
                    stack.pop()
                    continue
                kind, gidx, gsense, handler, opcode, target, reconv = table[pc]
                if gidx >= 0 and kind != _BRA:
                    guard_values = preds[gidx]
                    effective = (active & guard_values if gsense
                                 else active & ~guard_values)
                else:
                    effective = active

                count = count_nonzero(effective)
                record = TraceOp(opcode, pc, count)
                append(record)

                if kind == _EXEC:
                    if count:
                        handler(regs, preds, effective, record, env)
                    entry.pc = pc + 1
                    continue
                if kind == _BRA:
                    if gidx < 0:
                        entry.pc = target
                        continue
                    cond = preds[gidx]
                    if not gsense:
                        cond = ~cond
                    taken = active & cond
                    fall = active & ~cond
                    if not count_nonzero(taken):
                        entry.pc = pc + 1
                    elif not count_nonzero(fall):
                        entry.pc = target
                    else:
                        if reconv is None:
                            raise RuntimeError(
                                "divergent branch without reconvergence: "
                                f"pc={pc}")
                        entry.pc = reconv   # current entry becomes the join
                        stack.append(_StackEntry(pc + 1, reconv, fall))
                        stack.append(_StackEntry(target, reconv, taken))
                    continue
                if kind == _EXIT:
                    completed |= active
                    entry.pc = pc + 1
                    dead = ~active          # materialized before mutation
                    for frame in stack:
                        frame.mask &= dead
                    continue
                # _DISCARD
                discarded |= effective
                entry.pc = pc + 1
                dead = ~effective
                for frame in stack:
                    frame.mask &= dead
                continue

        return ExecResult(trace=trace, discarded=discarded,
                          completed=completed)
