"""Compiled-dispatch equivalence: the fastpath table vs the interpreter.

The reference loop (``WarpInterpreter._run_interpreted``) is the oracle:
for every opcode family the compiled program must produce bit-identical
environment side effects, discard/complete masks and recorded traces —
not merely "close" results, since the timing model replays the trace and
any drift changes the event schedule.
"""

import numpy as np
import pytest

from repro.fastpath import use_fastpath
from repro.shader.compiler import _DISPATCH_CACHE, dispatch_for
from repro.shader.interpreter import WarpInterpreter
from repro.shader.program import assemble

from tests.shader.fake_env import FakeEnv


def env_pair(**kwargs):
    return FakeEnv(**kwargs), FakeEnv(**kwargs)


def run_both(asm, stage="fragment", env_kwargs=None, initial_mask=None):
    program = assemble(asm, stage=stage)
    fast_env, ref_env = env_pair(**(env_kwargs or {}))
    with use_fastpath(True):
        fast = WarpInterpreter(program, fast_env).run(initial_mask)
    with use_fastpath(False):
        ref = WarpInterpreter(program, ref_env).run(initial_mask)
    return fast, ref, fast_env, ref_env


def assert_identical(fast, ref, fast_env, ref_env):
    assert np.array_equal(fast.discarded, ref.discarded)
    assert np.array_equal(fast.completed, ref.completed)
    assert len(fast.trace.ops) == len(ref.trace.ops)
    for fop, rop in zip(fast.trace.ops, ref.trace.ops):
        assert fop.op is rop.op
        assert fop.pc == rop.pc
        assert fop.active_lanes == rop.active_lanes
        assert [(a.space, a.address, a.size, a.write) for a in fop.accesses] \
            == [(a.space, a.address, a.size, a.write) for a in rop.accesses]
    assert sorted(fast_env.outputs) == sorted(ref_env.outputs)
    for slot, values in fast_env.outputs.items():
        assert np.array_equal(values, ref_env.outputs[slot])
    assert np.array_equal(fast_env.depth, ref_env.depth)
    assert np.array_equal(fast_env.color, ref_env.color)
    assert fast_env.global_memory == ref_env.global_memory


class TestEquivalence:
    def test_straight_line_alu(self):
        fast, ref, fe, re_ = run_both("""
            mov r0, 2.0
            add r1, r0, 3.0
            mul r2, r1, r1
            mad r3, r2, r0, r1
            rsqrt r4, r2
            min r5, r3, r4
            st.out o0, r5
            exit
        """)
        assert_identical(fast, ref, fe, re_)

    def test_divergent_branch_reconverges(self):
        fast, ref, fe, re_ = run_both("""
            ld.vary r0, v0
            setp.lt p0, r0, 4.0
            @p0 bra small
            mul r1, r0, 2.0
            bra join
        small:
            add r1, r0, 100.0
        join:
            st.out o0, r1
            exit
        """, env_kwargs={"varyings": {0: np.arange(8.0)}})
        assert_identical(fast, ref, fe, re_)

    def test_predicated_discard(self):
        fast, ref, fe, re_ = run_both("""
            ld.vary r0, v0
            setp.ge p0, r0, 5.0
            @p0 discard
            st.out o0, r0
            exit
        """, env_kwargs={"varyings": {0: np.arange(8.0)}})
        assert fast.discarded.sum() == 3
        assert_identical(fast, ref, fe, re_)

    def test_memory_ops_and_trace_addresses(self):
        fast, ref, fe, re_ = run_both("""
            zread r0
            mov r1, 0.25
            zwrite r1
            fb.read r2, r3, r4, r5
            fb.write r1, r1, r1, r1
            exit
        """)
        assert_identical(fast, ref, fe, re_)

    def test_partial_initial_mask(self):
        mask = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=bool)
        fast, ref, fe, re_ = run_both("""
            ld.vary r0, v0
            add r0, r0, 1.0
            st.out o0, r0
            exit
        """, env_kwargs={"varyings": {0: np.arange(8.0)}},
            initial_mask=mask)
        assert fast.trace.ops[0].active_lanes == 4
        assert_identical(fast, ref, fe, re_)


class TestDispatchCache:
    def test_cache_hit_keyed_by_digest_and_width(self):
        asm = "mov r0, 1.0\nst.out o0, r0\nexit"
        a = assemble(asm, stage="fragment")
        b = assemble(asm, stage="fragment")
        first = dispatch_for(a, 8)
        assert dispatch_for(b, 8) is first          # same digest, same table
        assert dispatch_for(a, 16) is not first     # width is part of the key

    def test_distinct_programs_get_distinct_tables(self):
        a = assemble("mov r0, 1.0\nexit", stage="fragment")
        b = assemble("mov r0, 2.0\nexit", stage="fragment")
        assert a.digest != b.digest
        assert dispatch_for(a, 8) is not dispatch_for(b, 8)

    def test_cache_backstop_clears_instead_of_growing(self):
        from repro.shader import compiler
        saved = dict(_DISPATCH_CACHE)
        try:
            _DISPATCH_CACHE.clear()
            _DISPATCH_CACHE.update({
                ("fake", i): None for i in range(compiler._DISPATCH_CACHE_MAX)
            })
            program = assemble("exit", stage="fragment")
            dispatch_for(program, 8)
            assert len(_DISPATCH_CACHE) == 1
        finally:
            _DISPATCH_CACHE.clear()
            _DISPATCH_CACHE.update(saved)
