"""System interconnect: a latency hop between IPs and the memory system.

The NoC is also where the health subsystem hooks the request path:

* every request entering the memory system is registered with the
  :class:`~repro.health.watchdog.Watchdog` (when armed) and retired when
  its reply is delivered — the watchdog's view of "in flight" is the
  issuer's view;
* a :class:`~repro.health.faults.FaultInjector` can spike the request-path
  latency and drop or delay replies on the response path;
* a :class:`~repro.health.faults.RetryConfig` arms a per-request timeout:
  a reply that does not arrive in time triggers re-injection of a cloned
  request with exponential backoff, so a lost reply degrades to extra
  latency instead of deadlocking the issuer.  Late duplicate replies
  (original and retry both completing) are delivered exactly once.

With no health hooks attached the NoC schedules exactly the same events as
the bare latency hop, keeping health-free runs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import EventQueue
from repro.common.stats import StatGroup
from repro.memory.request import MemRequest, SourceType, adapt_completion
from repro.memory.system import MemorySystem


@dataclass
class _Flight:
    """Delivery state of one logical request across retry attempts."""

    request: MemRequest
    original_callback: Optional[Callable[[MemRequest], None]] = None
    delivered: bool = False
    attempts: int = 1
    timer: Optional[object] = None      # the armed timeout Event


class SystemNoC:
    """Adds a fixed latency to every request entering the memory system.

    The paper uses gem5's classic (coherent) system network; a fixed-latency
    hop preserves the first-order effect — IP-to-DRAM distance — without a
    flit-level model.
    """

    def __init__(self, events: EventQueue, memory: MemorySystem,
                 latency: int = 12, watchdog=None, injector=None,
                 retry=None) -> None:
        self.events = events
        self.memory = memory
        self.latency = latency
        self.watchdog = watchdog
        self.injector = injector
        self.retry = retry
        self.stats = StatGroup("noc")

    @property
    def _plain(self) -> bool:
        return (self.watchdog is None and self.injector is None
                and self.retry is None)

    def submit(self, request: MemRequest) -> None:
        if self._plain:
            # Health-free fast path: identical event schedule to the seed.
            self.events.schedule(self.latency, self.memory.submit, request)
            return
        flight = _Flight(request=request,
                         original_callback=request.callback)
        if self.watchdog is not None:
            self.watchdog.track(request)
        request.callback = lambda completed: self._reply(flight, completed)
        self._inject_attempt(flight, request)

    def access(self, address, size, write, callback):
        """Cache-port compatible entry (used behind the GPU L2).

        The completed :class:`MemRequest` is passed through to callbacks
        that accept it (latency and fault markers flow back to the
        issuer); zero-argument cache callbacks are invoked bare.
        """
        self.submit(MemRequest(
            address=address, size=size, write=write, source=SourceType.GPU,
            callback=adapt_completion(callback)))

    # -- health path ------------------------------------------------------------

    def _inject_attempt(self, flight: _Flight, attempt: MemRequest) -> None:
        """Send one attempt toward the memory system and arm its timeout."""
        extra = (self.injector.noc_extra_latency(attempt)
                 if self.injector is not None else 0)
        self.events.schedule(self.latency + extra, self.memory.submit,
                             attempt, owner="noc")
        if self.retry is not None:
            wait = (self.latency + extra
                    + self.retry.deadline_for(attempt.attempt))
            flight.timer = self.events.schedule(
                wait, self._timeout, flight, owner="noc.retry")

    def _reply(self, flight: _Flight, completed: MemRequest) -> None:
        """Response path: the memory system finished one attempt."""
        if self.injector is not None:
            fate, delay = self.injector.reply_fate(completed)
            if fate == "drop":
                return              # reply lost; the timeout (if armed)
                                    # re-injects, else the watchdog reports
            if fate == "delay":
                self.events.schedule(delay, self._deliver, flight, completed,
                                     owner="noc")
                return
        self._deliver(flight, completed)

    def _deliver(self, flight: _Flight, completed: MemRequest) -> None:
        if flight.delivered:
            self.stats.counter("duplicate_replies").add()
            return
        flight.delivered = True
        if flight.timer is not None:
            flight.timer.cancel()
            flight.timer = None
        # Surface completion state on the original request object even when
        # a retry clone carried the data back.
        original = flight.request
        if completed is not original:
            original.complete_time = completed.complete_time
            original.issue_time = completed.issue_time
            original.attempt = completed.attempt
        if self.watchdog is not None:
            self.watchdog.retire(original)
        if flight.original_callback is not None:
            flight.original_callback(original)

    def _timeout(self, flight: _Flight) -> None:
        flight.timer = None
        if flight.delivered:
            return
        if flight.attempts > self.retry.max_retries:
            # Out of retries: leave the request in flight for the watchdog
            # to report with its full age and attempt count.
            self.stats.counter("retries_exhausted").add()
            return
        flight.attempts += 1
        clone = flight.request.clone_for_retry()
        flight.request.attempt = clone.attempt
        clone.callback = lambda completed: self._reply(flight, completed)
        self.stats.counter("retries").add()
        self._inject_attempt(flight, clone)
