"""Content-addressed deterministic result cache.

Layout (two-level fan-out, gem5-artifact style)::

    <root>/ab/abcdef.../MANIFEST.json     # provenance + validation
    <root>/ab/abcdef.../result.json       # canonical deterministic payload

Determinism (pinned since PR 2) makes hits exact: the same (config hash,
seed, code version) address always maps to bit-identical ``result.json``
bytes, so serving from cache *is* re-running the job.

Robustness contract:

* **Atomic publish** — an entry is staged in a scratch directory and
  renamed into place; readers never observe a half-written entry.  Two
  workers racing to publish the same key both succeed (the loser's
  staging directory is discarded — determinism means the bytes agree).
* **Corrupt entries are misses** — a damaged manifest or unreadable
  payload quarantines the entry (renamed to ``*.corrupt-N``) and reports
  a miss, so one bad disk block costs a re-run, not a crash or a wrong
  answer.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from typing import Optional

from repro.fleet.manifest import (MANIFEST_NAME, RESULT_NAME, ManifestError,
                                  payload_bytes, validate_manifest)


@dataclass
class CachedResult:
    """One validated cache entry."""

    key: str
    manifest: dict
    payload: dict
    result_bytes: bytes
    path: str


class ResultCache:
    """The on-disk store; safe for concurrent writers on one filesystem."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def lookup(self, key: str) -> Optional[CachedResult]:
        """Return the validated entry for ``key``, or None (a miss).

        Anything wrong with the entry — missing files, truncated JSON, a
        manifest that disagrees with its address — quarantines it and
        counts as a miss.
        """
        path = self.entry_dir(key)
        if not os.path.isdir(path):
            self.misses += 1
            return None
        try:
            with open(os.path.join(path, MANIFEST_NAME)) as handle:
                manifest = validate_manifest(json.load(handle), key=key)
            with open(os.path.join(path, RESULT_NAME), "rb") as handle:
                raw = handle.read()
            payload = json.loads(raw)
            if payload_bytes(payload) != raw:
                raise ManifestError("result payload is not canonical")
        except (OSError, ValueError) as exc:   # ManifestError is a ValueError
            self._quarantine(path, reason=str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return CachedResult(key=key, manifest=manifest, payload=payload,
                            result_bytes=raw, path=path)

    def store(self, key: str, manifest: dict, payload: dict) -> str:
        """Publish an entry atomically; returns its final path."""
        final = self.entry_dir(key)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        staging = f"{final}.staging-{os.getpid()}"
        os.makedirs(staging, exist_ok=True)
        try:
            with open(os.path.join(staging, RESULT_NAME), "wb") as handle:
                handle.write(payload_bytes(payload))
            with open(os.path.join(staging, MANIFEST_NAME), "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            try:
                os.rename(staging, final)
            except OSError:
                if not os.path.isdir(final):
                    # Not the publish race — a genuine failure
                    # (permissions, a file squatting at the entry path).
                    # Swallowing it would silently never cache.
                    raise
                # A concurrent worker published first; deterministic
                # results mean the winner's bytes equal ours.
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final

    def _quarantine(self, path: str, reason: str) -> None:
        target, suffix = f"{path}.corrupt", 1
        while os.path.exists(target):
            suffix += 1
            target = f"{path}.corrupt-{suffix}"
        try:
            os.rename(path, target)
            with open(os.path.join(target, "QUARANTINE"), "w") as handle:
                handle.write(reason + "\n")
        except OSError:
            pass                               # best effort; still a miss
        self.quarantined += 1

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined}
