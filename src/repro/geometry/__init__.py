"""Geometry substrate: vector math, transforms, meshes and procedural models.

Stands in for the 3D assets the paper renders (Sibenik, Spot, Suzanne,
Teapot, plus the case-study-I Android app models) — see DESIGN.md §1 for the
substitution rationale.
"""

from repro.geometry.mesh import Mesh, PrimitiveMode
from repro.geometry.models import model_by_name, MODEL_NAMES

__all__ = ["Mesh", "PrimitiveMode", "model_by_name", "MODEL_NAMES"]
