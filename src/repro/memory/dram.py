"""DRAM channel timing model: banks, row buffers, data-bus serialization.

Timing follows a simplified LPDDR state machine.  Per transaction the
controller pays, in controller cycles:

* row hit:   ``tCAS``;
* bank idle: ``tRCD + tCAS``;
* conflict:  ``tRP + tRCD + tCAS`` (precharge the open row first).

Bank preparation overlaps other banks' data bursts; the data bus serializes
bursts (``t_burst`` cycles per transaction).  At each scheduler wake the
channel commits up to :data:`ISSUE_WINDOW` transactions so bank-level
parallelism can hide preparation latency — the effect HMC's bank-striped
IP mapping banks on.

Statistics per channel: row hit rate, activations, bytes per activation,
per-source bandwidth time series and latency histograms — everything
Figs. 10, 11 and 14 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue, Ticker
from repro.common.ports import ResponsePort, respond
from repro.common.stats import StatGroup
from repro.memory.address_map import AddressMapping, DramCoord
from repro.memory.request import MemRequest

ISSUE_WINDOW = 4            # transactions committed per scheduler wake
DEFAULT_ROWS = 4096


@dataclass(slots=True)
class QueuedRequest:
    request: MemRequest
    coord: DramCoord
    enqueue_time: int
    # Resolved once at enqueue so scheduler scans compare two attributes
    # (``bank.open_row == row``) instead of re-deriving bank and row per
    # queue entry per wake.
    bank: "_Bank" = None
    row: int = 0


class Scheduler(Protocol):
    """Picks the next queued transaction; notified of each service."""

    def choose(self, queue: list[QueuedRequest], channel: "DRAMChannel",
               now: int) -> int:
        """Index into ``queue`` of the transaction to commit next."""
        ...

    def note_served(self, entry: QueuedRequest, now: int) -> None:
        ...


class _Bank:
    __slots__ = ("open_row", "ready", "bytes_since_activate")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready: int = 0
        self.bytes_since_activate: int = 0


class DRAMChannel:
    """One channel: a request queue, bank array and a scheduler."""

    def __init__(self, queue: EventQueue, config: DRAMConfig,
                 mapping: AddressMapping, scheduler: Scheduler,
                 channel_id: int, cycle_ticks: int,
                 decode_channels: int = 1, rows: int = DEFAULT_ROWS,
                 stats: Optional[StatGroup] = None) -> None:
        self.events = queue
        self.config = config
        self.mapping = mapping
        self.scheduler = scheduler
        self.channel_id = channel_id
        self.cycle_ticks = max(1, int(cycle_ticks))
        self.decode_channels = decode_channels
        self.rows = rows
        self.columns = max(1, config.row_bytes // mapping.line_bytes)
        self.banks = [_Bank() for _ in range(config.banks * config.ranks)]
        self.bus_free = 0
        self.pending: list[QueuedRequest] = []
        self.stats = stats or StatGroup(f"dram.ch{channel_id}")
        self._owner = f"dram.ch{channel_id}"
        self._run_ahead_ticks = ISSUE_WINDOW * max(
            1, 128 // int(config.peak_bytes_per_ctrl_cycle)) * self.cycle_ticks
        self.ingress = ResponsePort(f"{self._owner}.in", self._recv,
                                    owner=self)
        self._ticker = Ticker(queue, period=self.cycle_ticks,
                              callback=self._wake, owner=self._owner)
        # Hot-path handles: one submit/commit/complete per DRAM transaction
        # pays these stats; binding them once skips the StatGroup dict
        # lookup (and f-string key build for the per-source ones) per
        # transaction.  The decoder is specialized to this geometry.
        self._decode = mapping.compiled(
            decode_channels, config.ranks, config.banks, rows, self.columns)
        self._ctr_requests = self.stats.counter("requests")
        self._hist_queue_depth = self.stats.histogram("queue_depth")
        self._rate_row_hit = self.stats.rate("row_hit")
        self._ctr_activations = self.stats.counter("activations")
        self._hist_bytes_per_act = self.stats.histogram("bytes_per_activation")
        self._timing = config.timing
        self._peak_bytes = int(config.peak_bytes_per_ctrl_cycle)
        self._ctr_bytes: dict[str, object] = {}
        self._hist_latency: dict[str, object] = {}
        self._ts_bandwidth: dict[str, object] = {}

    # -- public -------------------------------------------------------------

    def _recv(self, request: MemRequest) -> bool:
        self.submit(request)
        return True

    def submit(self, request: MemRequest) -> None:
        coord = self._decode(request.address)
        self.pending.append(QueuedRequest(request, coord, self.events._now,
                                          self.bank_of(coord), coord.row))
        self._ctr_requests.add()
        self._hist_queue_depth.record(len(self.pending))
        tracer = self.events.tracer
        if tracer is not None:
            tracer.counter(self._owner, "queue_depth", len(self.pending))
        self._ticker.kick()

    @property
    def queue_length(self) -> int:
        return len(self.pending)

    def oldest_pending_age(self, now: int) -> int:
        """Age in ticks of the longest-queued entry (0 when empty);
        the sanitizer's dram-queue leak scan reads this."""
        if not self.pending:
            return 0
        return now - min(entry.enqueue_time for entry in self.pending)

    def bank_of(self, coord: DramCoord) -> _Bank:
        return self.banks[coord.rank * self.config.banks + coord.bank]

    def is_row_hit(self, coord: DramCoord) -> bool:
        return self.bank_of(coord).open_row == coord.row

    # -- internals ------------------------------------------------------------

    def _wake(self) -> bool:
        now = self.events.now
        committed = 0
        # Bounded run-ahead: commit only while the data bus is within a few
        # bursts of "now".  Committing the whole queue eagerly would freeze
        # the service order and make scheduler priorities meaningless for
        # anything arriving during a burst.
        max_ahead = now + self._run_ahead_ticks
        while (self.pending and committed < ISSUE_WINDOW
               and self.bus_free <= max_ahead):
            index = self.scheduler.choose(self.pending, self, now)
            entry = self.pending.pop(index)
            self._commit(entry, now)
            committed += 1
        if not self.pending:
            return False     # go idle; submit() re-kicks
        # Wake again when the bus frees up.
        delay = max(self.bus_free - max_ahead, self.cycle_ticks)
        self._ticker.stop()
        self.events.schedule(delay, self._rekick, owner=self._owner)
        return False

    def _rekick(self) -> None:
        self._ticker.kick()

    def _commit(self, entry: QueuedRequest, now: int) -> None:
        timing = self._timing
        bank = entry.bank
        request = entry.request
        hit = bank.open_row == entry.row
        if hit:
            prep_cycles = timing.t_cas
        elif bank.open_row is None:
            prep_cycles = timing.t_rcd + timing.t_cas
        else:
            prep_cycles = timing.t_rp + timing.t_rcd + timing.t_cas
        burst_cycles = max(1, request.size // self._peak_bytes)
        cycle_ticks = self.cycle_ticks
        prep_done = max(now, bank.ready) + prep_cycles * cycle_ticks
        data_start = max(prep_done, self.bus_free)
        done = data_start + burst_cycles * cycle_ticks
        extra = timing.t_wr * cycle_ticks if request.write else 0
        bank.ready = done + extra
        self.bus_free = done

        # Row-buffer bookkeeping.
        self._rate_row_hit.record(hit)
        if not hit:
            if bank.bytes_since_activate:
                self._hist_bytes_per_act.record(bank.bytes_since_activate)
            bank.bytes_since_activate = 0
            bank.open_row = entry.row
            self._ctr_activations.add()
        bank.bytes_since_activate += request.size

        source = request.source.value
        ctr = self._ctr_bytes.get(source)
        if ctr is None:
            ctr = self._ctr_bytes[source] = self.stats.counter(
                f"bytes.{source}")
        ctr.add(request.size)
        tracer = self.events.tracer
        if tracer is not None:
            # The data bus serializes bursts, so these X spans never
            # overlap on the channel's track.
            tracer.complete(self._owner, source, data_start, done,
                            cat="dram",
                            args={"address": entry.request.address,
                                  "row_hit": hit})
        self.events.schedule_at(done, self._complete, entry,
                                owner=self._owner)
        self.scheduler.note_served(entry, now)

    def _complete(self, entry: QueuedRequest) -> None:
        request = entry.request
        now = self.events._now
        request.complete_time = now
        source = request.source.value
        hist = self._hist_latency.get(source)
        if hist is None:
            hist = self._hist_latency[source] = self.stats.histogram(
                f"latency.{source}")
            self._ts_bandwidth[source] = self.stats.time_series(
                f"bandwidth.{source}", window=1000)
        hist.record(now - request.issue_time)
        self._ts_bandwidth[source].add(now, request.size)
        # Unwind the port route (health taps, links, the issuer's port) and
        # fire the completion callback — all synchronous, zero extra events.
        respond(request)

    def drain_flush_stats(self) -> None:
        """Flush per-bank open-row byte counts into the histogram."""
        for bank in self.banks:
            if bank.bytes_since_activate:
                self.stats.histogram("bytes_per_activation").record(
                    bank.bytes_since_activate)
                bank.bytes_since_activate = 0
