"""Retention caps: result-cache LRU GC and triage-bundle sweeps."""

import json
import os
import time

from repro.__main__ import main
from repro.fleet import JobSpec, ResultCache, sweep_triage_bundles
from repro.fleet.manifest import (MANIFEST_NAME, build_manifest, cache_key,
                                  result_payload)


def store_entry(cache, seed, *, age=None):
    """Publish one deterministic entry; optionally back-date its mtime."""
    spec = JobSpec(name=f"gc-s{seed}", seed=seed)
    key = cache_key(spec)
    cache.store(key, build_manifest(spec, key, outcome="ok"),
                result_payload(spec, 0x1000 + seed))
    if age is not None:
        stamp = time.time() - age
        os.utime(cache.entry_dir(key), (stamp, stamp))
    return spec, key


class TestCacheGC:
    def test_entry_cap_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        keys = {}
        for seed in (1, 2, 3, 4):
            _, keys[seed] = store_entry(cache, seed, age=100 - seed * 10)
        report = cache.gc(max_entries=2)
        assert report.entries == 2 and report.evicted_entries == 2
        # Oldest (largest age) go first: seeds 1 and 2.
        assert cache.lookup(keys[1]) is None
        assert cache.lookup(keys[2]) is None
        assert cache.lookup(keys[3]) is not None
        assert cache.lookup(keys[4]) is not None

    def test_byte_cap_holds(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for seed in (1, 2, 3):
            store_entry(cache, seed, age=50 - seed * 10)
        full = cache.gc()
        per_entry = full.bytes // 3
        report = cache.gc(max_bytes=per_entry * 2)
        assert report.entries == 2
        assert report.bytes <= per_entry * 2 + 2   # rounding slack

    def test_lookup_refreshes_recency(self, tmp_path):
        """An entry the server keeps serving must survive the LRU pass."""
        cache = ResultCache(str(tmp_path))
        _, hot = store_entry(cache, 1, age=1000)    # oldest by mtime...
        _, cold = store_entry(cache, 2, age=500)
        assert cache.lookup(hot) is not None        # ...but just served
        report = cache.gc(max_entries=1)
        assert report.evicted_entries == 1
        assert cache.lookup(hot) is not None
        assert cache.lookup(cold) is None

    def test_quarantined_and_stale_staging_swept_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        _, key = store_entry(cache, 1)
        # Corrupt a second entry so lookup quarantines it.
        _, victim = store_entry(cache, 2)
        manifest = os.path.join(cache.entry_dir(victim), MANIFEST_NAME)
        with open(manifest, "w") as handle:
            handle.write("{broken")
        assert cache.lookup(victim) is None
        # And fake an abandoned staging dir from a killed publisher.
        fanout = os.path.dirname(cache.entry_dir(key))
        stale = os.path.join(fanout, "deadbeef.staging-666")
        os.makedirs(stale)
        old = time.time() - 7200
        os.utime(stale, (old, old))
        report = cache.gc()
        assert report.quarantined_removed == 1
        assert report.staging_removed == 1
        assert report.entries == 1
        assert cache.lookup(key) is not None       # survivor still serves

    def test_fresh_staging_is_left_alone(self, tmp_path):
        """A publisher mid-flight must not have its staging swept."""
        cache = ResultCache(str(tmp_path))
        _, key = store_entry(cache, 1)
        fanout = os.path.dirname(cache.entry_dir(key))
        fresh = os.path.join(fanout, "cafef00d.staging-1")
        os.makedirs(fresh)
        report = cache.gc()
        assert report.staging_removed == 0
        assert os.path.isdir(fresh)


class TestTriageBundleSweep:
    def _bundle(self, workdir, job, name, age):
        path = os.path.join(workdir, "jobs", job, "triage", name)
        os.makedirs(path)
        with open(os.path.join(path, "report.json"), "w") as handle:
            handle.write("{}")
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def test_oldest_bundles_beyond_cap_removed(self, tmp_path):
        workdir = str(tmp_path)
        old = self._bundle(workdir, "job-a", "attempt-1", age=300)
        mid = self._bundle(workdir, "job-a", "attempt-2", age=200)
        new = self._bundle(workdir, "job-b", "attempt-1", age=100)
        swept = sweep_triage_bundles(workdir, max_bundles=2)
        assert swept["kept"] == 2 and swept["removed"] == 1
        assert swept["removed_paths"] == [old]
        assert not os.path.isdir(old)
        assert os.path.isdir(mid) and os.path.isdir(new)

    def test_no_cap_counts_only(self, tmp_path):
        workdir = str(tmp_path)
        self._bundle(workdir, "job-a", "attempt-1", age=10)
        swept = sweep_triage_bundles(workdir, max_bundles=None)
        assert swept == {"kept": 1, "removed": 0, "removed_paths": []}


class TestFleetGcCli:
    def test_gc_subcommand_caps_cache_and_bundles(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        survivors = []
        for seed in (1, 2, 3):
            spec, key = store_entry(cache, seed, age=40 - seed * 10)
            if seed != 1:
                survivors.append((spec, key))
        workdir = str(tmp_path / "work")
        bundle = os.path.join(workdir, "jobs", "j", "triage", "b1")
        os.makedirs(bundle)
        summary = str(tmp_path / "gc.json")

        code = main(["fleet", "gc", "--cache", cache_dir,
                     "--max-entries", "2", "--workdir", workdir,
                     "--max-bundles", "0", "--summary", summary])
        assert code == 0
        out = capsys.readouterr().out
        assert "evicted 1" in out
        with open(summary) as handle:
            doc = json.load(handle)
        assert doc["cache"]["entries"] == 2
        assert doc["bundles"]["removed"] == 1
        assert not os.path.isdir(bundle)
        # Satellite contract: the capped cache still serves what it kept
        # (the fleet's --expect-cached path depends on these lookups).
        fresh = ResultCache(cache_dir)
        for _spec, key in survivors:
            assert fresh.lookup(key) is not None

    def test_gc_without_targets_is_exit_2(self, tmp_path, capsys):
        assert main(["fleet", "gc"]) == 2
        assert "nothing to do" in capsys.readouterr().out
