"""A configurable in-memory ExecEnv test double for shader tests."""

import numpy as np

from repro.shader.interpreter import MemAccess
from repro.shader.isa import MemSpace


class FakeEnv:
    """Minimal environment: dict-backed slots, flat global memory."""

    def __init__(self, warp_size=8, attributes=None, varyings=None,
                 constants=None, textures=None, depth=None, color=None):
        self.warp_size = warp_size
        self.attributes = attributes or {}
        self.varyings = varyings or {}
        self.constants = constants or {}
        self.textures = textures or {}
        self.depth = (np.full(warp_size, 1.0) if depth is None
                      else np.asarray(depth, dtype=np.float64))
        self.color = (np.zeros((warp_size, 4)) if color is None
                      else np.asarray(color, dtype=np.float64))
        self.stencil = np.zeros(warp_size, dtype=np.int64)
        self.outputs = {}
        self.global_memory = {}

    def attribute(self, slot, mask):
        values = np.asarray(self.attributes[slot], dtype=np.float64)
        accesses = [MemAccess(MemSpace.VERTEX, 0x100 + 4 * lane, 4)
                    for lane in np.flatnonzero(mask)]
        return values, accesses

    def varying(self, slot, mask):
        return np.asarray(self.varyings[slot], dtype=np.float64)

    def constant(self, slot, mask):
        return float(self.constants[slot]), [
            MemAccess(MemSpace.CONST, 0x2000 + 4 * slot, 4)]

    def tex(self, unit, u, v, mask):
        fn = self.textures[unit]
        rgba = np.stack([np.asarray(fn(uu, vv), dtype=np.float64)
                         for uu, vv in zip(u, v)])
        accesses = [MemAccess(MemSpace.TEXTURE, 0x3000 + lane * 4, 4)
                    for lane in np.flatnonzero(mask)]
        return rgba, accesses

    def zread(self, mask):
        return self.depth.copy(), [
            MemAccess(MemSpace.DEPTH, 0x4000 + 4 * lane, 4)
            for lane in np.flatnonzero(mask)]

    def zwrite(self, values, mask):
        self.depth[mask] = values[mask]
        return [MemAccess(MemSpace.DEPTH, 0x4000 + 4 * lane, 4, write=True)
                for lane in np.flatnonzero(mask)]

    def sread(self, mask):
        return self.stencil.astype(float), [
            MemAccess(MemSpace.DEPTH, 0x4800 + lane, 1)
            for lane in np.flatnonzero(mask)]

    def swrite(self, values, mask):
        self.stencil[mask] = values[mask].astype(int)
        return [MemAccess(MemSpace.DEPTH, 0x4800 + lane, 1, write=True)
                for lane in np.flatnonzero(mask)]

    def fb_read(self, mask):
        return self.color.copy(), [
            MemAccess(MemSpace.COLOR, 0x5000 + 4 * lane, 4)
            for lane in np.flatnonzero(mask)]

    def fb_write(self, rgba, mask):
        self.color[mask] = rgba[mask]
        return [MemAccess(MemSpace.COLOR, 0x5000 + 4 * lane, 4, write=True)
                for lane in np.flatnonzero(mask)]

    def ld_global(self, addresses, mask):
        values = np.zeros(self.warp_size)
        accesses = []
        for lane in np.flatnonzero(mask):
            addr = int(addresses[lane])
            values[lane] = self.global_memory.get(addr, 0.0)
            accesses.append(MemAccess(MemSpace.GLOBAL, addr, 4))
        return values, accesses

    def st_global(self, addresses, values, mask):
        accesses = []
        for lane in np.flatnonzero(mask):
            addr = int(addresses[lane])
            self.global_memory[addr] = float(values[lane])
            accesses.append(MemAccess(MemSpace.GLOBAL, addr, 4, write=True))
        return accesses

    def store_output(self, slot, values, mask):
        if slot not in self.outputs:
            self.outputs[slot] = np.zeros(self.warp_size)
        self.outputs[slot][mask] = values[mask]
