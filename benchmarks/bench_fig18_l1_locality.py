"""Fig. 18: W1 execution time and L1 misses vs WT size.

Paper shape: L1 (texture/depth/color) misses fall as WT grows — larger
work tiles improve locality — and execution time correlates with L1
misses (78-82% in the paper), while L2/DRAM traffic stays roughly flat.
"""

import os

import pytest

from benchmarks.conftest import FULL, cs2_config, run_once
from repro.common.stats import pearson
from repro.harness.case_study2 import wt_sweep
from repro.harness.report import format_table

# The paper uses W1 (Sibenik); quick mode uses W2 to keep runtime sane.
WORKLOAD = "W1" if FULL else "W2"
WT_RANGE = range(1, 11)


def test_fig18_l1_locality(benchmark):
    config = cs2_config()
    results = run_once(
        benchmark,
        lambda: wt_sweep(WORKLOAD, wt_sizes=WT_RANGE, config=config))

    rows = []
    times, l1_misses, l2_misses = {}, {}, {}
    for wt, result in results.items():
        stats = result.stats
        l1 = stats.l1_misses
        total_l1 = l1["l1t"] + l1["l1z"] + l1["l1d"]
        times[wt] = result.time
        l1_misses[wt] = total_l1
        l2_misses[wt] = stats.l2_misses
        rows.append([wt, result.time, l1["l1t"], l1["l1z"], l1["l1d"],
                     total_l1, stats.l2_misses])
    print()
    print(format_table(
        ["WT", "exec_time", "L1T_miss", "L1Z_miss", "L1D_miss",
         "L1_total", "L2_miss"],
        rows, title=f"Fig. 18 — {WORKLOAD} execution time and cache misses "
                    "vs WT size"))

    wts = list(WT_RANGE)
    time_l1_corr = pearson([times[w] for w in wts],
                           [l1_misses[w] for w in wts])
    print(f"corr(exec time, L1 misses) = {time_l1_corr:.2f}")

    # Shape checks: locality improves with WT; L2 traffic compares flat.
    assert l1_misses[10] < l1_misses[1], \
        "larger work tiles should reduce total L1 misses"
    l2_spread = (max(l2_misses.values())
                 / max(1, min(l2_misses.values())))
    l1_spread = (max(l1_misses.values())
                 / max(1, min(l1_misses.values())))
    print(f"L1 miss spread {l1_spread:.2f}x vs L2 miss spread "
          f"{l2_spread:.2f}x")
    assert l1_spread > l2_spread, \
        "WT size should move L1 locality much more than L2/DRAM traffic"
