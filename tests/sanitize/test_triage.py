"""Triage bundle contents and layout."""

import json
import os

from repro.common.stats import StatGroup
from repro.sanitize import LostRetryViolation
from repro.sanitize.triage import write_bundle


def make_violation():
    return LostRetryViolation("p blocked forever", tick=123, owner="noc",
                              details={"port": "p", "age": 500})


class TestWriteBundle:
    def test_full_bundle_contents(self, tmp_path):
        stats = StatGroup("sanitizer")
        stats.counter("violations").add()
        violation = make_violation()
        path = write_bundle(
            str(tmp_path), seed=7, error=violation,
            command="python -m repro selftest --sanitize",
            config={"seed": 7, "memory_config": "BAS"},
            stat_groups=[stats])

        assert os.path.basename(path) == "seed-7"
        assert violation.bundle_path == path

        manifest = json.load(open(os.path.join(path, "MANIFEST.json")))
        assert manifest["seed"] == 7
        assert manifest["error"]["kind"] == "lost-retry-wake"
        assert manifest["contents"] == sorted(manifest["contents"])
        for name in ("MANIFEST.json", "violation.json", "config.json",
                     "stats.json", "repro.sh"):
            assert name in manifest["contents"]
            assert os.path.exists(os.path.join(path, name))

        recorded = json.load(open(os.path.join(path, "violation.json")))
        assert recorded["kind"] == "lost-retry-wake"
        assert recorded["tick"] == 123
        assert recorded["owner"] == "noc"
        assert recorded["details"]["port"] == "p"

        assert (json.load(open(os.path.join(path, "stats.json")))
                ["sanitizer"]["violations"] == 1)

        script = os.path.join(path, "repro.sh")
        assert os.access(script, os.X_OK)
        assert "python -m repro selftest --sanitize" in open(script).read()

    def test_repeat_failures_get_suffixed_directories(self, tmp_path):
        first = write_bundle(str(tmp_path), seed=3, error=make_violation())
        second = write_bundle(str(tmp_path), seed=3, error=make_violation())
        third = write_bundle(str(tmp_path), seed=3, error=make_violation())
        assert os.path.basename(first) == "seed-3"
        assert os.path.basename(second) == "seed-3-2"
        assert os.path.basename(third) == "seed-3-3"

    def test_minimal_bundle_is_just_the_manifest(self, tmp_path):
        path = write_bundle(str(tmp_path), seed=1)
        assert sorted(os.listdir(path)) == ["MANIFEST.json"]
        manifest = json.load(open(os.path.join(path, "MANIFEST.json")))
        assert manifest["error"] is None

    def test_wrapped_generic_error_is_serializable(self, tmp_path):
        from repro.common.events import SimulationError

        error = SimulationError("watchdog: stuck", tick=9, owner="noc")
        path = write_bundle(str(tmp_path), seed=2, error=error)
        recorded = json.load(open(os.path.join(path, "violation.json")))
        assert recorded["kind"] == "SimulationError"
        assert recorded["tick"] == 9

    def test_trace_tail_keeps_only_the_last_events(self, tmp_path):
        class FakeTracer:
            def to_dict(self):
                return {"traceEvents": [{"ts": i} for i in range(40)],
                        "otherData": {"events_fired": {"noc": 40}}}

        path = write_bundle(str(tmp_path), seed=4, tracer=FakeTracer(),
                            trace_tail=10)
        tail = json.load(open(os.path.join(path, "trace_tail.json")))
        assert tail["dropped_events"] == 30
        assert len(tail["traceEvents"]) == 10
        assert tail["traceEvents"][0]["ts"] == 30
        assert tail["otherData"]["events_fired"]["noc"] == 40
