"""Timing-port fabric: typed request/response ports with flow control.

This is the gem5-shaped port protocol (Lowe-Power et al.) adapted to this
simulator's single-callback completion style.  Components exchange
:class:`~repro.memory.request.MemRequest` packets through paired ports:

* a **RequestPort** is the sending side.  ``try_send(request)`` either
  hands the packet to the connected :class:`ResponsePort` (returns True)
  or reports the receiver *busy* (returns False).  After a busy result the
  sender must hold the packet and wait for its ``on_retry`` hook — sending
  again before the retry arrives is a protocol error on real hardware and
  simply fails again here.
* a **ResponsePort** is the receiving side; its handler accepts or
  refuses each packet.  When capacity frees up the receiver calls
  :meth:`ResponsePort.send_retry`, which wakes exactly one blocked sender
  (FIFO order), mirroring gem5's ``sendRetryReq``.

**Response path.**  Every RequestPort a packet traverses is pushed onto
the packet's ``route`` stack by ``try_send``.  When the terminal component
completes the request it calls :func:`respond`, which unwinds the stack
LIFO — synchronously, in the same event — giving every hop's owner a
chance to observe or consume the response (see ``on_response``), and
finally invokes ``request.callback``.  Because the unwind adds no events,
a port-connected path schedules exactly the same events as the bare
callback chain it replaced: the default (unbounded) fabric reproduces the
seed's event schedule bit-identically.

**Links.**  :class:`Link` is a buffered conduit between two components.
Unbounded (the default) it is a pure latency hop — one scheduled event per
packet.  With ``capacity`` and/or ``bytes_per_cycle`` set it becomes a
finite queue with a serializing output line, so sustained overload
produces genuine queueing delay and backpressure (MGSim-style buffered
links), with queue-occupancy and stall-cycle statistics per link.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.common.stats import StatGroup


class PortProtocolError(RuntimeError):
    """A component violated the try_send/busy/retry handshake.

    Carries enough context to be actionable without a debugger: the
    owning component of the offending port, the simulation tick (when the
    raising site knows it), and the depth of the receiver's blocked-sender
    queue at the moment of the violation.
    """

    def __init__(self, message: str, *, owner: Optional[str] = None,
                 tick: Optional[int] = None,
                 blocked_depth: Optional[int] = None) -> None:
        context = []
        if owner is not None:
            context.append(f"owner={owner}")
        if tick is not None:
            context.append(f"tick={tick}")
        if blocked_depth is not None:
            context.append(f"blocked_queue_depth={blocked_depth}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.owner = owner
        self.tick = tick
        self.blocked_depth = blocked_depth


# Module-level sanitizer hook (repro.sanitize installs itself here).  A
# single None check per protocol action when disarmed; the armed hooks
# observe only — they schedule no events and draw no randomness — so an
# armed-but-quiet run stays bit-identical to a bare one.
_SANITIZER = None


def set_sanitizer(sanitizer) -> None:
    """Install (or, with None, remove) the fabric-wide sanitizer hook."""
    global _SANITIZER
    _SANITIZER = sanitizer


def get_sanitizer():
    """The currently installed sanitizer hook, or None."""
    return _SANITIZER


def respond(request) -> None:
    """Unwind a completed request's response path.

    Pops the route stack LIFO; each hop's ``on_response`` hook may consume
    the response (return False) to stop the unwind — used by the health
    taps for fault-injected drops, delayed replies and retry
    deduplication.  When the stack is empty the issuer's ``callback``
    fires with the completed request.
    """
    route = request.route
    while route:
        port = route.pop()
        if not port._recv_response(request):
            return
    if request.callback is not None:
        if _SANITIZER is not None:
            _SANITIZER.request_completed(request)
        request.callback(request)


class ResponsePort:
    """Receiving side of a port pair; wraps a ``handler(request) -> bool``."""

    def __init__(self, name: str, handler: Callable[[Any], bool],
                 owner: Optional[object] = None) -> None:
        self.name = name
        self.handler = handler
        self.owner = owner
        self._blocked: deque = deque()      # RequestPorts awaiting retry

    def _recv(self, request) -> bool:
        return self.handler(request)

    def send_retry(self) -> None:
        """Wake the oldest blocked sender (one slot freed up)."""
        if self._blocked:
            self._blocked.popleft()._recv_retry()

    def __repr__(self) -> str:
        return f"ResponsePort({self.name})"


class RequestPort:
    """Sending side of a port pair."""

    def __init__(self, name: str, owner: Optional[object] = None,
                 on_response: Optional[Callable[[Any], bool]] = None,
                 on_retry: Optional[Callable[[], None]] = None) -> None:
        self.name = name
        self.owner = owner
        self.on_response = on_response
        self.on_retry = on_retry
        self.peer: Optional[ResponsePort] = None
        self.waiting = False                # blocked, awaiting a retry
        # Multiplexing egresses (PortTap) relay several logical senders'
        # flows through one port, so offering a *different* packet while
        # blocked is expected there; on a leaf sender port it is a
        # protocol violation the sanitizer flags.
        self.multiplexed = False

    def connect(self, target) -> "RequestPort":
        """Bind to a ResponsePort (or anything adaptable into one)."""
        self.peer = as_response_port(target)
        return self

    def try_send(self, request) -> bool:
        """Offer a packet; False means busy — hold it and await retry."""
        if self.peer is None:
            raise PortProtocolError(f"{self.name} is not connected",
                                    owner=self._owner_name())
        if self.waiting and _SANITIZER is not None:
            _SANITIZER.port_resend_while_blocked(self, request)
        request.route.append(self)
        if self.peer._recv(request):
            if _SANITIZER is not None:
                _SANITIZER.port_delivered(self, request)
            return True
        request.route.pop()
        if not self.waiting:
            self.waiting = True
            self.peer._blocked.append(self)
            if _SANITIZER is not None:
                _SANITIZER.port_blocked(self, request)
        return False

    def send(self, request, tick: Optional[int] = None) -> None:
        """try_send that treats busy as a protocol error.

        For entry points that predate flow control (``SystemNoC.submit``);
        only safe against unbounded receivers.  ``tick`` (when the caller
        knows the current simulation time) enriches the error report.
        """
        if not self.try_send(request):
            raise PortProtocolError(
                f"{self.name}: receiver busy — use try_send and honor "
                f"the retry handshake",
                owner=self._owner_name(), tick=tick,
                blocked_depth=len(self.peer._blocked))

    def await_retry(self) -> None:
        """Register for a retry wake without offering a packet.

        Interposition stages relay retries one-for-one; a stage whose own
        senders are still blocked uses this to stay subscribed to the
        next freed slot even though its last forward succeeded."""
        if self.peer is None:
            raise PortProtocolError(f"{self.name} is not connected",
                                    owner=self._owner_name())
        if not self.waiting:
            self.waiting = True
            self.peer._blocked.append(self)
            if _SANITIZER is not None:
                _SANITIZER.port_blocked(self, None)

    def _owner_name(self) -> str:
        if self.owner is None:
            return self.name
        name = getattr(self.owner, "name", None)
        return name if isinstance(name, str) else type(self.owner).__name__

    def _recv_retry(self) -> None:
        was_waiting = self.waiting
        self.waiting = False
        if _SANITIZER is not None:
            _SANITIZER.port_retry(self, was_waiting)
        if self.on_retry is not None:
            self.on_retry()

    def _recv_response(self, request) -> bool:
        if self.on_response is not None:
            return self.on_response(request)
        return True

    def __repr__(self) -> str:
        peer = self.peer.name if self.peer is not None else None
        return f"RequestPort({self.name} -> {peer})"


class AccessAdapter:
    """Wraps a legacy ``access(address, size, write, callback)`` level
    (PerfectMemory, LatencyPort, ad-hoc test doubles) as a ResponsePort."""

    def __init__(self, level) -> None:
        self.level = level
        name = getattr(level, "name", type(level).__name__)
        self.ingress = ResponsePort(f"{name}.in", self._recv, owner=self)

    def _recv(self, request) -> bool:
        callback = None
        if request.callback is not None or request.route:
            callback = lambda completed=request: respond(completed)  # noqa: E731
        self.level.access(request.address, request.size, request.write,
                          callback)
        return True


def as_response_port(target) -> ResponsePort:
    """Coerce a connection target into a ResponsePort.

    Accepts, in order of preference: a ResponsePort; anything exposing an
    ``ingress`` ResponsePort (caches, links, the NoC, the memory system);
    a legacy ``access(...)`` level; or a bare ``submit(request)`` callable.
    """
    if isinstance(target, ResponsePort):
        return target
    ingress = getattr(target, "ingress", None)
    if isinstance(ingress, ResponsePort):
        return ingress
    if callable(getattr(target, "access", None)):
        return AccessAdapter(target).ingress
    if callable(target):
        def handler(request, _sink=target):
            _sink(request)
            return True
        name = getattr(target, "__qualname__", getattr(target, "__name__",
                                                       "sink"))
        return ResponsePort(f"fn:{name}", handler, owner=target)
    raise TypeError(f"cannot connect a port to {target!r}")


class PortTap:
    """A synchronous interposition stage on a request path.

    Forwards packets unchanged (propagating backpressure both ways) and
    exposes two hooks: ``on_request`` fires after a packet is accepted
    downstream, ``on_response`` observes the unwind and may consume it
    (return False).  A tap adds no events, so interposing one on an
    unbounded path leaves the event schedule untouched — this is how the
    health subsystem's watchdog/fault/retry hooks attach without
    re-wrapping callbacks.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.ingress = ResponsePort(f"{name}.in", self._recv_request,
                                    owner=self)
        self.egress = RequestPort(f"{name}.out", owner=self,
                                  on_response=self._recv_response,
                                  on_retry=self._recv_retry)
        self.egress.multiplexed = True      # relays several senders' flows

    def connect(self, target) -> "PortTap":
        self.egress.connect(target)
        return self

    def _recv_request(self, request) -> bool:
        if not self.egress.try_send(request):
            return False
        self.on_request(request)
        return True

    def _recv_retry(self) -> None:
        # Downstream freed a slot: wake one of our own blocked senders
        # (one-for-one, mirroring send_retry's slot accounting).
        self.ingress.send_retry()
        # The woken sender's re-send only re-registers our egress if it
        # was itself rejected; with more senders still queued behind this
        # tap we must stay subscribed, or the next freed slot's retry is
        # lost and those senders stall forever.
        if self.ingress._blocked:
            self.egress.await_retry()

    def _recv_response(self, request) -> bool:
        return self.on_response(request)

    # -- hooks -------------------------------------------------------------------

    def on_request(self, request) -> None:
        """Called once per packet accepted downstream."""

    def on_response(self, request) -> bool:
        """Observe a response; return False to consume (stop the unwind)."""
        return True


class Link:
    """A conduit between two components: latency, then (optionally) a
    bounded queue draining through a serializing output line.

    Unbounded (``capacity=None, bytes_per_cycle=None``): a pure latency
    hop.  Each accepted packet schedules exactly one delivery event at
    ``latency`` (plus the per-packet ``extra_latency`` hook, used for
    fault-injected spikes) — the same event the seed's fixed-latency
    adapters scheduled, keeping default runs bit-identical.

    Bounded: ``capacity`` limits packets buffered in the link (try_send
    fails when full, engaging the retry handshake) and ``bytes_per_cycle``
    serializes the output (a packet occupies the line for
    ``ceil(size / bytes_per_cycle)`` ticks), so sustained overload builds
    genuine queueing delay.  Per-link stats: ``packets``, ``rejected``,
    ``stall_ticks`` (sender-blocked time), ``queue_occupancy`` and
    ``traversal`` histograms, and a ``bytes`` delivery time series.
    """

    def __init__(self, events, name: str, latency: int = 0,
                 capacity: Optional[int] = None,
                 bytes_per_cycle: Optional[float] = None,
                 extra_latency: Optional[Callable[[Any], int]] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.events = events
        self.name = name
        self.latency = latency
        self.capacity = capacity
        self.bytes_per_cycle = bytes_per_cycle
        self.extra_latency = extra_latency
        self.stats = stats or StatGroup(name)
        # Hot-path handles: the per-packet stats are bound once here so
        # _recv/_deliver_direct skip the StatGroup dict lookup per packet,
        # and the unbounded/int-latency facts are precomputed so the
        # common case is a straight-line schedule.
        self._unbounded = capacity is None and bytes_per_cycle is None
        self._int_latency = int(latency)
        self._ctr_packets = self.stats.counter("packets")
        self._hist_traversal = self.stats.histogram("traversal")
        self._ts_bytes = self.stats.time_series("bytes")
        self.ingress = ResponsePort(f"{name}.in", self._recv, owner=self)
        self.egress = RequestPort(f"{name}.out", owner=self,
                                  on_retry=self._drain_ready)
        self._queue: deque = deque()        # (request, arrival) in transit
        self._ready: deque = deque()        # arrived, refused downstream
        self._line_free = 0                 # when the output line frees
        self._stall_since: dict[int, int] = {}

    @property
    def bounded(self) -> bool:
        return self.capacity is not None or self.bytes_per_cycle is not None

    @property
    def occupancy(self) -> int:
        return len(self._queue) + len(self._ready)

    def connect(self, target) -> "Link":
        self.egress.connect(target)
        return self

    # -- receive side ------------------------------------------------------------

    def _recv(self, request) -> bool:
        if self._unbounded:
            self._ctr_packets.add()
            if self.extra_latency is None:
                # The common case, flat-out: same event (time, callback,
                # owner) as schedule() would create, minus the delay
                # validation the int latency makes redundant.
                self._hist_traversal.record(self.latency)
                events = self.events
                events._push(events._now + self._int_latency,
                             self._deliver_direct, (request,), self.name)
            else:
                extra = self.extra_latency(request)
                self._hist_traversal.record(self.latency + extra)
                self.events.schedule(self.latency + extra,
                                     self._deliver_direct, request,
                                     owner=self.name)
            return True
        now = self.events.now
        if self.capacity is not None and self.occupancy >= self.capacity:
            self.stats.counter("rejected").add()
            self._stall_since.setdefault(id(request), now)
            return False
        stalled = self._stall_since.pop(id(request), None)
        if stalled is not None:
            self.stats.counter("stall_ticks").add(now - stalled)
            self.stats.histogram("stall_cycles").record(now - stalled)
        extra = (self.extra_latency(request)
                 if self.extra_latency is not None else 0)
        serialize = 0
        if self.bytes_per_cycle:
            serialize = -(-request.size // self.bytes_per_cycle)
        start = max(now + self.latency + extra, self._line_free)
        delivery = int(start + serialize)
        self._line_free = delivery
        self._queue.append((request, now))
        self.stats.histogram("queue_occupancy").record(self.occupancy)
        self.events.schedule_at(delivery, self._dequeue, owner=self.name)
        return True

    # -- delivery side -----------------------------------------------------------

    def _deliver_direct(self, request) -> None:
        now = self.events._now
        self._ts_bytes.add(now, request.size)
        self.egress.send(request, tick=now)

    def _dequeue(self) -> None:
        self._ready.append(self._queue.popleft())
        self._drain_ready()

    def _drain_ready(self) -> None:
        while self._ready:
            request, arrival = self._ready[0]
            if not self.egress.try_send(request):
                return                      # downstream busy; its retry
                                            # re-enters here
            self._ready.popleft()
            now = self.events.now
            self._ctr_packets.add()
            self._hist_traversal.record(now - arrival)
            self._ts_bytes.add(now, request.size)
            self.ingress.send_retry()       # one buffer slot freed
