"""Functional-only execution: architectural state with zero timing events.

The fast-forward idiom (gem5 atomic warm-up, ODIN replay-driven
emulation) needs a mode that advances *architectural* state — the GL
command stream, buffer contents, the framebuffer — without paying for the
timing model.  :class:`FunctionalSim` is that mode: it pulls frames from
the same deterministic frame source a detailed run uses, records them
into the same draw-call trace, and emits the same
:class:`~repro.soc.checkpoint.GraphicsCheckpoint` a detailed run's
:class:`~repro.health.recovery.CheckpointManager` would emit at the same
frame boundary.  **No event queue exists here at all** — the class never
constructs one, schedules nothing, and models no SIMT/DRAM/NoC/display
behavior; per-frame cost is frame generation (plus optional reference
rendering), which is what buys the sampled-mode speedup.

Checkpoint ticks are *nominal*: frame ``k``'s boundary is stamped at
``k * gpu_frame_period_ticks`` — where an on-pace detailed run would be.
This is sound because checkpoint resume is exactly tick-shift invariant
(the whole post-resume event schedule is built relative to the start
tick; pinned by tests/sampling/test_equivalence.py), so the detailed
phase after a switch is bit-identical regardless of the tick origin.

The switch contract ("architecturally equivalent", DESIGN.md §13) pins
GL-level state only; microarchitectural warmth (caches, row buffers,
in-flight requests) is reset at every switch — exactly the semantics
crash-recovery resume has always had.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.gl.context import Frame
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.renderer import ReferenceRenderer
from repro.soc.checkpoint import (CheckpointTopologyError, GraphicsCheckpoint,
                                  capture)

# What the functional engine renders: "none" advances GL state only (the
# cheapest fast-forward), "boundary" renders the last frame before each
# checkpoint (gives a framebuffer CRC to cross-check against the detailed
# engine), "all" renders every frame (full functional framebuffer
# history, the slowest).
RENDER_POLICIES = ("none", "boundary", "all")


class FunctionalSimError(ValueError):
    """Misuse of the functional engine (bad policy, empty checkpoint...)."""


class FunctionalSim:
    """Zero-event functional execution over a deterministic frame source.

    Mirrors the architectural half of a detailed run: frames are pulled
    in index order from ``frame_source`` (mutating the source's GL
    context exactly as the render loop would), accumulated into the
    checkpoint trace, and optionally rendered through the
    :class:`~repro.pipeline.renderer.ReferenceRenderer` — the functional
    model the timing GPU is pinned pixel-exact against.
    """

    def __init__(self, run_config, frame_source: Callable[[int], Frame],
                 render: str = "boundary") -> None:
        if render not in RENDER_POLICIES:
            raise FunctionalSimError(
                f"render policy must be one of {RENDER_POLICIES}, "
                f"got {render!r}")
        self.config = run_config
        self.topology = run_config.resolve_topology()
        self.frame_source = frame_source
        self.render = render
        gpu = self.topology.gpu
        self._renderer = ReferenceRenderer(
            run_config.width, run_config.height,
            warp_size=gpu.core.warp_size,
            raster_tile_px=gpu.raster.raster_tile_px)
        self.frames: list[Frame] = []
        self.next_frame = 0
        self.fb: Optional[Framebuffer] = None
        self.frames_rendered = 0

    @classmethod
    def from_checkpoint(cls, checkpoint: GraphicsCheckpoint, run_config,
                        frame_source: Callable[[int], Frame],
                        render: str = "boundary") -> "FunctionalSim":
        """Continue functionally from a snapshot either engine wrote.

        Same topology guard as detailed resume
        (:func:`repro.health.recovery.resume_run`): a snapshot stamped
        with a different topology hash is refused before any state is
        rebuilt.
        """
        if checkpoint.topology is not None:
            config_hash = run_config.resolve_topology().topology_hash()
            if checkpoint.topology != config_hash:
                raise CheckpointTopologyError(
                    snapshot_hash=checkpoint.topology,
                    config_hash=config_hash)
        sim = cls(run_config, frame_source, render=render)
        sim.frames = checkpoint.restore_frames()
        sim.next_frame = checkpoint.frame_index
        return sim

    def nominal_tick(self, frame_index: Optional[int] = None) -> int:
        """Where an on-pace detailed run's clock sits at a frame boundary."""
        index = self.next_frame if frame_index is None else frame_index
        return index * self.config.gpu_frame_period_ticks

    def run(self, until_frame: int) -> "FunctionalSim":
        """Execute frames ``[next_frame, until_frame)`` functionally."""
        if until_frame < self.next_frame:
            raise FunctionalSimError(
                f"cannot run backwards: at frame {self.next_frame}, "
                f"asked for {until_frame}")
        if until_frame > self.config.num_frames:
            raise FunctionalSimError(
                f"until_frame {until_frame} exceeds the run's "
                f"num_frames {self.config.num_frames}")
        for index in range(self.next_frame, until_frame):
            frame = self.frame_source(index)
            self.frames.append(frame)
            if self.render == "all" or (self.render == "boundary"
                                        and index == until_frame - 1):
                self.fb, _ = self._renderer.render(frame)
                self.frames_rendered += 1
        self.next_frame = until_frame
        return self

    def fb_crc(self) -> int:
        """CRC32 of the last rendered framebuffer's color plane."""
        if self.fb is None:
            raise FunctionalSimError(
                "no framebuffer rendered yet (render policy "
                f"{self.render!r}, {self.next_frame} frames executed)")
        return zlib.crc32(self.fb.color.tobytes())

    def checkpoint(self, job: Optional[str] = None) -> GraphicsCheckpoint:
        """Snapshot the current frame boundary, nominal-tick stamped."""
        if self.next_frame == 0:
            raise FunctionalSimError(
                "nothing executed yet — a checkpoint at frame 0 would "
                "restore an empty run")
        return capture(list(self.frames), tick=self.nominal_tick(),
                       frame_index=self.next_frame, job=job,
                       topology=self.topology.topology_hash(),
                       mode="functional")
