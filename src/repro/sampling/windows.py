"""Periodic sampling schedules (gem5-SimPoint style).

A :class:`WindowSchedule` partitions a run's frame range into alternating
*functional* windows (replayed with zero timing events) and *detailed*
windows (full timing model): every ``period`` frames, ``detail`` of them
run detailed, starting at frame ``offset``.  The first ``warmup`` frames
of each detailed window are executed in detail but excluded from the
samples — a switch into detailed mode starts from the documented
cold-reset microarchitectural state (DESIGN.md §13), so the first
frame(s) of a window carry cold-cache transients the extrapolation
should not average in.

Schedules are validated at construction with typed
:class:`WindowScheduleError`\\ s; :func:`parse_sample_spec` turns the CLI's
``DETAIL:PERIOD[:WARMUP]`` string into a schedule.
"""

from __future__ import annotations

from dataclasses import dataclass


class WindowScheduleError(ValueError):
    """A sampling schedule (or its CLI spec) failed validation."""


@dataclass(frozen=True)
class Window:
    """One contiguous frame range executed in a single mode.

    ``start`` is inclusive, ``end`` exclusive.  For detailed windows,
    ``measure_from`` is the first frame whose stats enter the samples
    (frames in ``[start, measure_from)`` are per-window warmup);
    functional windows measure nothing.
    """

    start: int
    end: int
    kind: str                 # "functional" | "detailed"
    measure_from: int = 0

    @property
    def frames(self) -> int:
        return self.end - self.start

    @property
    def measured_frames(self) -> int:
        if self.kind != "detailed":
            return 0
        return max(0, self.end - self.measure_from)


@dataclass(frozen=True)
class WindowSchedule:
    """Alternating functional/detailed frame windows over one run.

    Every ``period`` frames, the ``detail`` frames starting at
    ``offset + k * period`` run in full timing; everything else runs
    functional-only.  ``warmup`` leading frames of each detailed window
    are executed but unmeasured.
    """

    total_frames: int
    period: int
    detail: int
    warmup: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise WindowScheduleError(
                f"total_frames must be positive, got {self.total_frames}")
        if self.period <= 0:
            raise WindowScheduleError(
                f"period must be positive, got {self.period}")
        if not 0 < self.detail <= self.period:
            raise WindowScheduleError(
                f"detail must be in [1, period={self.period}], "
                f"got {self.detail}")
        if not 0 <= self.warmup < self.detail:
            raise WindowScheduleError(
                f"warmup must be in [0, detail={self.detail}), "
                f"got {self.warmup} — every detailed window needs at "
                f"least one measured frame")
        if not 0 <= self.offset < self.period:
            raise WindowScheduleError(
                f"offset must be in [0, period={self.period}), "
                f"got {self.offset}")

    def windows(self) -> tuple[Window, ...]:
        """The run partitioned into an ordered, gap-free window sequence.

        Invariants (pinned by tests/sampling/test_windows.py): windows
        tile ``[0, total_frames)`` exactly — sorted, non-overlapping, no
        gaps — and modes alternate (no two adjacent windows share a
        kind).  A detailed window truncated by the end of the run keeps
        its warmup prefix, so a truncation below ``warmup`` frames
        yields a window with zero measured frames.
        """
        out: list[Window] = []
        position = 0
        cycle = 0
        while position < self.total_frames:
            detail_start = self.offset + cycle * self.period
            if position < detail_start:
                out.append(Window(
                    start=position,
                    end=min(detail_start, self.total_frames),
                    kind="functional"))
                position = out[-1].end
                if position >= self.total_frames:
                    break
            detail_end = min(detail_start + self.detail, self.total_frames)
            if detail_end > position:
                out.append(Window(
                    start=position, end=detail_end, kind="detailed",
                    measure_from=min(position + self.warmup, detail_end)))
                position = detail_end
            cycle += 1
        return tuple(out)

    # -- derived counts ------------------------------------------------------

    def detailed_frames(self) -> int:
        return sum(w.frames for w in self.windows() if w.kind == "detailed")

    def functional_frames(self) -> int:
        return sum(w.frames for w in self.windows() if w.kind == "functional")

    def measured_windows(self) -> int:
        """Detailed windows contributing at least one sample."""
        return sum(1 for w in self.windows() if w.measured_frames > 0)

    @property
    def coverage(self) -> float:
        """Fraction of the run executed in detail (the cost driver)."""
        return self.detailed_frames() / self.total_frames

    def spec(self) -> str:
        """The ``DETAIL:PERIOD:WARMUP`` string this schedule round-trips to."""
        return f"{self.detail}:{self.period}:{self.warmup}"


def parse_sample_spec(spec: str, total_frames: int,
                      offset: int = 0) -> WindowSchedule:
    """Parse the CLI's ``DETAIL:PERIOD[:WARMUP]`` sampling spec.

    ``"2:8"`` = 2 detailed frames out of every 8; warmup defaults to 1
    when the detailed window is longer than one frame (so at least one
    measured frame survives), 0 otherwise.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise WindowScheduleError(
            f"sample spec must be DETAIL:PERIOD[:WARMUP], got {spec!r}")
    try:
        numbers = [int(part) for part in parts]
    except ValueError:
        raise WindowScheduleError(
            f"sample spec fields must be integers, got {spec!r}") from None
    detail, period = numbers[0], numbers[1]
    warmup = numbers[2] if len(numbers) == 3 else (1 if detail > 1 else 0)
    return WindowSchedule(total_frames=total_frames, period=period,
                          detail=detail, warmup=warmup, offset=offset)
