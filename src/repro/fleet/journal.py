"""The fleet server's write-ahead job journal.

Every scheduling transition the server makes — submit, claim, attempt
end, terminal outcome, cancel, drain, shutdown — is appended to an
on-disk journal *before* the server acts on it, so a SIGKILL'd server
reconstructs its entire job table by replay.  The journal, not the
process, is the durable unit (the gem5 reproducibility stance: the
simulation *service* must be restartable, not just the simulation).

Format
======

Append-only JSONL in segments::

    <root>/segment-000001.jsonl      # sealed (immutable, atomically renamed)
    <root>/segment-000002.jsonl
    <root>/wal.active                # the open segment being appended

One record per line::

    {"seq": 17, "type": "claim", "t": 1754650000.1, "data": {...}, "crc": N}

* ``seq`` increases by exactly 1 across the whole journal (all segments,
  all server incarnations) — a gap means lost records;
* ``crc`` is CRC32 over the canonical JSON of the record minus ``crc``;
* ``t`` is wall-clock provenance for humans (never used in recovery
  logic — clock jumps must not corrupt replay).

Rotation seals the active segment by **atomic rename** to the next
``segment-NNNNNN.jsonl`` name and opens a fresh ``wal.active``; a reader
therefore only ever sees complete sealed segments plus one active tail.
On open, a previous incarnation's ``wal.active`` is sealed the same way
(rewritten without its torn tail first, write-then-rename, if a SIGKILL
interrupted the final append).

Replay strictness
=================

A **torn tail** — the *last* line of the active segment failing to parse
or CRC-check — is the expected signature of a kill mid-append and is
dropped silently.  Damage anywhere else (bad CRC mid-stream, a sequence
gap, an impossible job-state transition such as a ``claim`` after
``done``) raises a typed
:class:`~repro.sanitize.violations.JournalConsistencyViolation`: the
journal is the server's source of truth, so an untrustworthy journal is
a loud failure, never silently "repaired".
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.sanitize.violations import JournalConsistencyViolation

JOURNAL_SCHEMA = "repro-fleet-journal/1"

ACTIVE_NAME = "wal.active"
_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.jsonl$")

#: Record types a journal may contain.  ``data`` schemas are documented
#: in DESIGN.md §14.
RECORD_TYPES = frozenset({
    "server-start",      # an incarnation opened the journal
    "submit",            # a job entered the table (spec, key, policy)
    "shed",              # a submission was refused (FleetSaturated)
    "quarantine",        # a malformed spool spec was set aside
    "claim",             # an attempt was claimed for a worker slot
    "attempt-end",       # what that attempt did (ok/crashed/hung/...)
    "done",              # terminal job outcome (+ cache accounting)
    "cancel",            # policy cancellation (deadline, drain)
    "drain",             # the server began draining
    "clean-shutdown",    # the server exited gracefully
})

#: Job-scoped record types, in the order the state machine allows them.
_TERMINAL = ("done", "cancel")


def _record_crc(record: dict) -> int:
    body = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode())


def _parse_line(line: str) -> Optional[dict]:
    """A validated record, or None (torn / damaged line)."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.get("crc")
    if not isinstance(crc, int) or isinstance(crc, bool):
        return None
    if _record_crc(record) != crc:
        return None
    if record.get("type") not in RECORD_TYPES:
        return None
    if not isinstance(record.get("seq"), int):
        return None
    return record


@dataclass
class ReplayedJob:
    """One job's state as reconstructed from the journal."""

    name: str
    spec: dict
    key: str
    priority: int = 0
    owner: str = "anonymous"
    deadline: Optional[float] = None
    outcome: Optional[str] = None        # None = in flight at the crash
    cache_hit: bool = False
    claims: int = 0                      # worker attempts actually claimed
    last_claim: Optional[str] = None     # claim token of the newest claim
    failures: int = 0                    # retryable attempt-ends seen
    detail: str = ""

    @property
    def terminal(self) -> bool:
        return self.outcome is not None


@dataclass
class JournalReplay:
    """Everything a journal held, validated and folded into a job table."""

    records: list = field(default_factory=list)
    jobs: dict = field(default_factory=dict)     # name -> ReplayedJob
    last_seq: int = 0
    torn_tail: bool = False
    clean_shutdown: bool = False
    incarnations: int = 0

    @property
    def pending(self) -> list:
        """Jobs the crashed server still owed an outcome, journal order."""
        return [job for job in self.jobs.values() if not job.terminal]

    def cache_hits(self) -> int:
        return sum(1 for job in self.jobs.values() if job.cache_hit)

    def executed_claims(self) -> int:
        return sum(job.claims for job in self.jobs.values())

    def summary(self) -> dict:
        outcomes: dict = {}
        for job in self.jobs.values():
            outcomes[job.outcome or "pending"] = \
                outcomes.get(job.outcome or "pending", 0) + 1
        return {
            "schema": JOURNAL_SCHEMA,
            "records": len(self.records),
            "last_seq": self.last_seq,
            "jobs": len(self.jobs),
            "outcomes": outcomes,
            "cache_hits": self.cache_hits(),
            "executed_claims": self.executed_claims(),
            "incarnations": self.incarnations,
            "clean_shutdown": self.clean_shutdown,
            "torn_tail": self.torn_tail,
        }


def _violation(check: str, message: str, *, path: str,
               line: int) -> JournalConsistencyViolation:
    return JournalConsistencyViolation(
        f"{message} ({path}:{line})",
        details={"check": check, "segment": path, "line": line})


def _fold(replay: JournalReplay, record: dict, *, path: str,
          line: int) -> None:
    """Apply one record to the job table, enforcing legal transitions."""
    kind = record["type"]
    data = record.get("data") or {}
    replay.records.append(record)
    replay.clean_shutdown = kind == "clean-shutdown"
    if kind == "server-start":
        replay.incarnations += 1
        return
    if kind in ("drain", "clean-shutdown", "quarantine"):
        return
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise _violation("transition", f"{kind} record without a job name",
                         path=path, line=line)
    job = replay.jobs.get(name)
    if kind == "submit":
        if job is not None and job.outcome != "shed":
            # A shed submission was refused outright; resubmitting the
            # same name once the queue frees is legitimate and replaces
            # the shed entry.  Anything else is a double submit.
            raise _violation(
                "transition", f"duplicate submit for job {name!r}",
                path=path, line=line)
        replay.jobs[name] = ReplayedJob(
            name=name, spec=data.get("spec") or {}, key=data.get("key", ""),
            priority=data.get("priority", 0),
            owner=data.get("owner", "anonymous"),
            deadline=data.get("deadline"))
        return
    if kind == "shed":
        if job is not None and job.outcome != "shed":
            raise _violation(
                "transition", f"shed for already-submitted job {name!r}",
                path=path, line=line)
        shed = ReplayedJob(name=name, spec=data.get("spec") or {},
                           key=data.get("key", ""))
        shed.outcome = "shed"
        shed.detail = data.get("detail", "")
        replay.jobs[name] = shed
        return
    if job is None:
        raise _violation(
            "transition", f"{kind} for never-submitted job {name!r}",
            path=path, line=line)
    if job.terminal and kind in ("claim", "attempt-end") + tuple(_TERMINAL):
        # The acceptance criterion's teeth: completed work must never be
        # claimed (re-executed) again.
        raise _violation(
            "transition",
            f"{kind} for job {name!r} already terminal ({job.outcome})",
            path=path, line=line)
    if kind == "claim":
        job.claims += 1
        job.last_claim = data.get("claim")
        return
    if kind == "attempt-end":
        job.detail = data.get("detail", "")
        if data.get("outcome") in ("crashed", "hung"):
            job.failures += 1            # retry budget spans incarnations
        return
    if kind == "done":
        job.outcome = data.get("outcome", "ok")
        job.cache_hit = bool(data.get("cache_hit"))
        job.detail = data.get("detail", "")
        return
    if kind == "cancel":
        job.outcome = "cancelled"
        job.detail = data.get("reason", "")
        return
    raise _violation("transition", f"unhandled record type {kind!r}",
                     path=path, line=line)     # pragma: no cover


def _segment_paths(root: str) -> list:
    try:
        names = os.listdir(root)
    except OSError:
        return []
    sealed = sorted(name for name in names if _SEGMENT_RE.match(name))
    return [os.path.join(root, name) for name in sealed]


def replay_journal(root: str) -> JournalReplay:
    """Read and validate the whole journal; returns the folded state.

    Raises :class:`JournalConsistencyViolation` on any damage other than
    a torn final line of the active segment.
    """
    replay = JournalReplay()
    paths = _segment_paths(root)
    active = os.path.join(root, ACTIVE_NAME)
    has_active = os.path.exists(active)
    if has_active:
        paths.append(active)
    expected_seq = 1
    for path in paths:
        is_active = path == active
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is None:
                if is_active and index == len(lines) - 1:
                    replay.torn_tail = True
                    break
                raise _violation(
                    "crc", "damaged journal record", path=path,
                    line=index + 1)
            if record["seq"] != expected_seq:
                raise _violation(
                    "seq",
                    f"sequence gap: expected {expected_seq}, "
                    f"found {record['seq']}", path=path, line=index + 1)
            _fold(replay, record, path=path, line=index + 1)
            expected_seq += 1
    replay.last_seq = expected_seq - 1
    return replay


class JobJournal:
    """Appender for one server incarnation.

    Use :meth:`open` — it replays (validating) whatever a previous
    incarnation left, seals its active segment, and returns both the
    appender and the replayed state to recover from.
    """

    def __init__(self, root: str, *, next_seq: int,
                 next_segment: int, segment_records: int = 256) -> None:
        if segment_records <= 0:
            raise ValueError(
                f"segment_records must be positive, got {segment_records}")
        self.root = root
        self.segment_records = segment_records
        self._seq = next_seq
        self._segment = next_segment
        self._active_records = 0
        self._handle = open(os.path.join(root, ACTIVE_NAME), "a",
                            encoding="utf-8")

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(cls, root: str, *, segment_records: int = 256,
             now: Optional[float] = None):
        """(journal, replay): recover prior state, then start appending.

        The previous incarnation's active segment (if any) is sealed —
        minus a torn tail — so the new incarnation always starts with a
        fresh, empty ``wal.active``.
        """
        os.makedirs(root, exist_ok=True)
        replay = replay_journal(root)
        segments = _segment_paths(root)
        next_segment = 1
        if segments:
            next_segment = int(
                _SEGMENT_RE.match(os.path.basename(segments[-1])).group(1)
            ) + 1
        active = os.path.join(root, ACTIVE_NAME)
        if os.path.exists(active):
            sealed = os.path.join(
                root, f"segment-{next_segment:06d}.jsonl")
            if replay.torn_tail:
                # Rewrite the valid prefix, then atomically rename: the
                # sealed segment must replay clean forever after.
                tmp = active + ".seal"
                with open(active, encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
                kept = [line for line in lines if _parse_line(line)]
                with open(tmp, "w", encoding="utf-8") as handle:
                    for line in kept:
                        handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, sealed)
                os.remove(active)
            else:
                os.replace(active, sealed)
            next_segment += 1
        journal = cls(root, next_seq=replay.last_seq + 1,
                      next_segment=next_segment,
                      segment_records=segment_records)
        return journal, replay

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- appends ------------------------------------------------------------

    def append(self, kind: str, **data) -> dict:
        """Durably append one record; returns it (with seq and crc)."""
        if kind not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {kind!r}")
        import time
        record = {"seq": self._seq, "type": kind, "t": time.time(),
                  "data": data}
        record["crc"] = _record_crc(record)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        self._active_records += 1
        if self._active_records >= self.segment_records:
            self._rotate()
        return record

    def _rotate(self) -> None:
        """Seal the active segment (atomic rename), open a fresh one."""
        self._handle.close()
        sealed = os.path.join(self.root,
                              f"segment-{self._segment:06d}.jsonl")
        os.replace(os.path.join(self.root, ACTIVE_NAME), sealed)
        self._segment += 1
        self._active_records = 0
        self._handle = open(os.path.join(self.root, ACTIVE_NAME), "a",
                            encoding="utf-8")
