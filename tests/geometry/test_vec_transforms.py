"""Tests for vector math and transform matrices."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    from_homogeneous,
    normalize,
    to_homogeneous,
    vec3,
    vec4,
)
from repro.geometry.transforms import (
    identity,
    look_at,
    normal_matrix,
    orthographic,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    translate,
    viewport_transform,
)


class TestVec:
    def test_normalize_unit_length(self):
        v = normalize(vec3(3.0, 4.0, 0.0))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_normalize_zero_vector_unchanged(self):
        v = normalize(vec3(0.0, 0.0, 0.0))
        assert np.all(v == 0.0)

    def test_homogeneous_roundtrip(self):
        v = vec3(1.0, 2.0, 3.0)
        h = to_homogeneous(v)
        assert h[3] == 1.0
        assert np.allclose(from_homogeneous(h), v)

    def test_perspective_divide(self):
        assert np.allclose(from_homogeneous(vec4(2.0, 4.0, 6.0, 2.0)),
                           vec3(1.0, 2.0, 3.0))

    def test_divide_by_zero_w(self):
        with pytest.raises(ZeroDivisionError):
            from_homogeneous(vec4(1.0, 1.0, 1.0, 0.0))

    def test_to_homogeneous_shape_check(self):
        with pytest.raises(ValueError):
            to_homogeneous(np.zeros(4))


class TestBasicTransforms:
    def test_translate_moves_point(self):
        p = translate(1.0, 2.0, 3.0) @ vec4(0.0, 0.0, 0.0, 1.0)
        assert np.allclose(p[:3], [1.0, 2.0, 3.0])

    def test_translate_ignores_direction(self):
        d = translate(1.0, 2.0, 3.0) @ vec4(1.0, 0.0, 0.0, 0.0)
        assert np.allclose(d[:3], [1.0, 0.0, 0.0])

    def test_scale(self):
        p = scale(2.0, 3.0, 4.0) @ vec4(1.0, 1.0, 1.0, 1.0)
        assert np.allclose(p[:3], [2.0, 3.0, 4.0])

    def test_rotate_z_quarter_turn(self):
        p = rotate_z(math.pi / 2) @ vec4(1.0, 0.0, 0.0, 1.0)
        assert np.allclose(p[:3], [0.0, 1.0, 0.0], atol=1e-12)

    def test_rotate_x_quarter_turn(self):
        p = rotate_x(math.pi / 2) @ vec4(0.0, 1.0, 0.0, 1.0)
        assert np.allclose(p[:3], [0.0, 0.0, 1.0], atol=1e-12)

    def test_rotate_y_quarter_turn(self):
        p = rotate_y(math.pi / 2) @ vec4(0.0, 0.0, 1.0, 1.0)
        assert np.allclose(p[:3], [1.0, 0.0, 0.0], atol=1e-12)

    @given(st.floats(-math.pi, math.pi))
    def test_rotations_preserve_length(self, angle):
        p = vec4(1.0, 2.0, 3.0, 1.0)
        for rot in (rotate_x, rotate_y, rotate_z):
            q = rot(angle) @ p
            assert np.linalg.norm(q[:3]) == pytest.approx(np.linalg.norm(p[:3]))

    @given(st.floats(-math.pi, math.pi))
    def test_rotation_inverse_is_negative_angle(self, angle):
        m = rotate_y(angle) @ rotate_y(-angle)
        assert np.allclose(m, identity(), atol=1e-12)


class TestProjection:
    def test_perspective_point_on_near_plane_maps_to_minus_one(self):
        proj = perspective(math.radians(90), 1.0, 1.0, 100.0)
        p = proj @ vec4(0.0, 0.0, -1.0, 1.0)
        ndc = from_homogeneous(p)
        assert ndc[2] == pytest.approx(-1.0)

    def test_perspective_point_on_far_plane_maps_to_plus_one(self):
        proj = perspective(math.radians(90), 1.0, 1.0, 100.0)
        ndc = from_homogeneous(proj @ vec4(0.0, 0.0, -100.0, 1.0))
        assert ndc[2] == pytest.approx(1.0)

    def test_perspective_fov_edge(self):
        # With 90-degree fov and aspect 1, x == -z maps to NDC x = 1.
        proj = perspective(math.radians(90), 1.0, 0.1, 100.0)
        ndc = from_homogeneous(proj @ vec4(5.0, 0.0, -5.0, 1.0))
        assert ndc[0] == pytest.approx(1.0)

    def test_perspective_validation(self):
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, -1.0, 10.0)
        with pytest.raises(ValueError):
            perspective(1.0, 0.0, 0.1, 10.0)
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 10.0, 1.0)

    def test_orthographic_center_maps_to_origin(self):
        proj = orthographic(-2, 2, -1, 1, 0.1, 10)
        ndc = from_homogeneous(proj @ vec4(0.0, 0.0, -5.0, 1.0))
        assert np.allclose(ndc[:2], [0.0, 0.0])

    def test_orthographic_degenerate(self):
        with pytest.raises(ValueError):
            orthographic(1, 1, 0, 1, 0, 1)


class TestLookAt:
    def test_eye_maps_to_origin(self):
        view = look_at(vec3(3.0, 4.0, 5.0), vec3(0.0, 0.0, 0.0),
                       vec3(0.0, 1.0, 0.0))
        p = view @ vec4(3.0, 4.0, 5.0, 1.0)
        assert np.allclose(p[:3], [0.0, 0.0, 0.0], atol=1e-12)

    def test_target_is_down_negative_z(self):
        view = look_at(vec3(0.0, 0.0, 5.0), vec3(0.0, 0.0, 0.0),
                       vec3(0.0, 1.0, 0.0))
        p = view @ vec4(0.0, 0.0, 0.0, 1.0)
        assert p[2] == pytest.approx(-5.0)
        assert np.allclose(p[:2], [0.0, 0.0], atol=1e-12)


class TestViewport:
    def test_center(self):
        assert viewport_transform(0.0, 0.0, 100, 50) == (50.0, 25.0)

    def test_top_left(self):
        # NDC (-1, +1) is the top-left pixel corner.
        assert viewport_transform(-1.0, 1.0, 100, 50) == (0.0, 0.0)

    def test_bottom_right(self):
        assert viewport_transform(1.0, -1.0, 100, 50) == (100.0, 50.0)


class TestNormalMatrix:
    def test_identity_for_rotation(self):
        m = rotate_y(0.7)
        assert np.allclose(normal_matrix(m), m[:3, :3])

    def test_nonuniform_scale_corrects_normal(self):
        m = scale(2.0, 1.0, 1.0)
        n = normal_matrix(m) @ vec3(1.0, 0.0, 0.0)
        assert n[0] == pytest.approx(0.5)
