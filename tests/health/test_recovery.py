"""Checkpoint cadence and the crash-recovery acceptance scenario."""

import numpy as np
import pytest

from repro.common.events import SimulationError
from repro.harness.scenes import SceneSession
from repro.health import (CheckpointManager, HealthConfig, load_checkpoint,
                          resume_run)
from repro.soc.checkpoint import GraphicsCheckpoint
from tests.health.full_system import HEIGHT, WIDTH, build_soc, tiny_config


class TestCheckpointManager:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointManager(every=0)

    def test_cadence(self):
        manager = CheckpointManager(every=2)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        for index in range(4):
            source(index)
            manager.on_frame_done(index, tick=1_000 * (index + 1))
        assert manager.checkpoints_taken == 2       # after frames 1 and 3
        assert manager.last.frame_index == 4
        assert manager.last.tick == 4_000

    def test_path_receives_loadable_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        manager = CheckpointManager(every=1, path=str(path))
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=777)
        restored = load_checkpoint(str(path))
        assert isinstance(restored, GraphicsCheckpoint)
        assert restored.frame_index == 1
        assert restored.tick == 777
        assert len(restored.restore_frames()) == 1


class TestCheckpointRNGCapture:
    def test_checkpoints_carry_injector_streams(self):
        from repro.health.faults import FaultConfig, FaultInjector

        injector = FaultInjector(FaultConfig(seed=9, dram_drop=0.5))
        manager = CheckpointManager(every=1, injector=injector)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=500)
        assert manager.last.rng is not None
        assert sorted(manager.last.rng) == ["delay", "display", "drop",
                                            "spike"]
        # And the state survives the on-disk JSON format.
        restored = GraphicsCheckpoint.from_json(manager.last.to_json())
        assert restored.rng == manager.last.rng

    def test_injector_free_checkpoints_omit_rng(self):
        manager = CheckpointManager(every=1)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=500)
        assert manager.last.rng is None
        assert "rng" not in manager.last.to_json()


class TestCheckpointOwnership:
    """Snapshots carry their owning job's identity token (the fleet's
    cache key) so a reused directory can't leak one job's state into
    another's resume."""

    def _snapshot(self, job=None):
        manager = CheckpointManager(every=1, job=job)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=500)
        return manager.last

    def test_job_token_survives_the_on_disk_format(self):
        snapshot = self._snapshot(job="cafe0123")
        assert snapshot.job == "cafe0123"
        restored = GraphicsCheckpoint.from_json(snapshot.to_json())
        assert restored.job == "cafe0123"

    def test_unowned_snapshots_omit_the_field(self):
        snapshot = self._snapshot()
        assert snapshot.job is None
        assert "job" not in snapshot.to_json()
        assert GraphicsCheckpoint.from_json(snapshot.to_json()).job is None

    def test_non_string_job_rejected(self):
        import json

        from repro.soc.checkpoint import CheckpointError, _payload_crc
        doc = json.loads(self._snapshot(job="x").to_json())
        doc["job"] = 7
        doc["crc"] = _payload_crc(doc)       # keep the CRC consistent
        with pytest.raises(CheckpointError, match="job"):
            GraphicsCheckpoint.from_json(json.dumps(doc))

    def test_resume_run_restores_injector_streams(self, monkeypatch):
        """resume_run must hand the snapshot's RNG state to the new SoC's
        injector before any event runs."""
        from repro.health.faults import FaultConfig, FaultInjector

        donor = FaultInjector(FaultConfig(seed=4, display_underrun=0.5))
        for _ in range(25):                     # mid-stream state
            donor.display_underrun_now()
        state = donor.rng_state()

        applied = []
        original = FaultInjector.restore_rng
        monkeypatch.setattr(
            FaultInjector, "restore_rng",
            lambda self, rng: applied.append(rng) or original(self, rng))

        source = SceneSession("cube", WIDTH, HEIGHT)
        manager = CheckpointManager(every=1)
        wrapped = manager.wrap_source(source.frame)
        wrapped(0)
        manager.on_frame_done(0, tick=500)
        checkpoint = manager.last
        checkpoint.rng = state

        health = HealthConfig(checkpoint_every=1,
                              faults=FaultConfig(seed=4, dram_delay=0.05))
        resume_run(checkpoint, tiny_config(num_frames=1, health=health),
                   source.frame, source.framebuffer_address)
        assert applied == [state]


class TestAtomicSnapshotWrites:
    """A process killed between serialize and rename must never leave a
    torn snapshot at ``path`` — the previous complete one survives."""

    def _manager_with_one_snapshot(self, path):
        manager = CheckpointManager(every=1, path=str(path))
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=1_000)
        return manager, source

    def test_death_before_rename_keeps_previous_snapshot(self, tmp_path,
                                                         monkeypatch):
        import os as os_module

        path = tmp_path / "snap.json"
        manager, source = self._manager_with_one_snapshot(path)

        # SIGKILL lands after the serialize, before the rename: model it
        # by making the rename itself die.  The destination must still
        # hold the frame-1 snapshot, intact.
        def killed(src, dst):
            raise KeyboardInterrupt("SIGKILL between write and rename")
        monkeypatch.setattr("repro.health.recovery.os.replace", killed)
        source(1)
        with pytest.raises(KeyboardInterrupt):
            manager.on_frame_done(1, tick=2_000)
        monkeypatch.setattr("repro.health.recovery.os.replace",
                            os_module.replace)

        survivor = load_checkpoint(str(path))
        assert survivor.frame_index == 1       # the pre-crash snapshot
        assert survivor.tick == 1_000
        assert len(survivor.restore_frames()) == 1

    def test_torn_tmp_never_shadows_the_snapshot(self, tmp_path):
        """Resume reads ``path``; a stale ``.tmp`` from a killed writer is
        invisible to it."""
        path = tmp_path / "snap.json"
        self._manager_with_one_snapshot(path)
        (tmp_path / "snap.json.tmp").write_text('{"version": 1, "tick"')
        assert load_checkpoint(str(path)).frame_index == 1


class TestPreemption:
    def test_preempt_check_consulted_after_snapshot_lands(self, tmp_path):
        """The order is the contract: by the time PreemptionRequested
        propagates, the resume point is already on disk."""
        from repro.health import PreemptionRequested

        path = tmp_path / "snap.json"
        manager = CheckpointManager(every=1, path=str(path),
                                    preempt_check=lambda done: done >= 1)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        with pytest.raises(PreemptionRequested) as excinfo:
            manager.on_frame_done(0, tick=900)
        assert excinfo.value.frame_index == 1
        assert load_checkpoint(str(path)).frame_index == 1

    def test_preemption_is_a_simulation_error(self):
        """The event loop's wrap policy re-raises SimulationError
        subclasses unchanged, so preemption crosses the loop intact."""
        from repro.health import PreemptionRequested

        assert issubclass(PreemptionRequested, SimulationError)

    def test_no_preempt_check_means_no_preemption(self, tmp_path):
        manager = CheckpointManager(every=1, path=str(tmp_path / "s.json"))
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=100)     # no raise
        assert manager.checkpoints_taken == 1


@pytest.mark.full_system
class TestCrashRecovery:
    def test_killed_run_resumes_to_same_final_frame(self):
        """A run killed mid-frame resumes from its last periodic checkpoint
        and produces the same final framebuffer as an uninterrupted run."""
        frames = 3
        health = HealthConfig(checkpoint_every=1)

        # Reference: the uninterrupted run.
        soc_full = build_soc(num_frames=frames, health=health)
        full_results = soc_full.run()
        full_fb = soc_full.gpu.fb.color.copy()
        total_events = soc_full.events.events_fired
        assert full_results.checkpoints_taken == frames

        # The same run, killed partway through (the event budget stands in
        # for a crashed process).
        soc_killed = build_soc(num_frames=frames, health=health)
        with pytest.raises(SimulationError):
            soc_killed.run(max_events=int(total_events * 0.8))
        checkpoint = soc_killed.checkpoints.last
        assert checkpoint is not None
        assert 0 < checkpoint.frame_index < frames      # died mid-run

        # Resume from the snapshot and finish the remaining frames.
        session = SceneSession("cube", WIDTH, HEIGHT)
        soc_resumed, resumed_results = resume_run(
            checkpoint, tiny_config(num_frames=frames, health=health),
            session.frame, session.framebuffer_address)
        assert soc_resumed.loop.finished
        assert len(resumed_results.frames) == frames - checkpoint.frame_index
        assert resumed_results.frames[0].index == checkpoint.frame_index
        # Simulated time re-entered at the snapshot tick, not at zero.
        assert resumed_results.end_tick > checkpoint.tick
        assert np.array_equal(soc_resumed.gpu.fb.color, full_fb)

    def test_killed_faulted_run_resumes_to_same_final_frame(self):
        """Crash recovery still holds with fault injection armed: the
        snapshot carries the injector's RNG streams, so the resumed run
        faces the checkpointed fault pattern rather than a fresh one."""
        from repro.health.faults import FaultConfig

        frames = 3
        health = HealthConfig(
            checkpoint_every=1,
            faults=FaultConfig(seed=5, dram_delay=0.05, noc_spike=0.05))

        soc_full = build_soc(num_frames=frames, health=health)
        soc_full.run()
        full_fb = soc_full.gpu.fb.color.copy()
        total_events = soc_full.events.events_fired
        # The faults actually fired, and every snapshot carries RNG state.
        assert (soc_full.injector.stats.counter("replies_delayed").value
                + soc_full.injector.stats.counter("noc_spikes").value) > 0
        assert soc_full.checkpoints.last.rng is not None

        soc_killed = build_soc(num_frames=frames, health=health)
        with pytest.raises(SimulationError):
            soc_killed.run(max_events=int(total_events * 0.8))
        checkpoint = soc_killed.checkpoints.last
        assert 0 < checkpoint.frame_index < frames
        assert checkpoint.rng is not None

        session = SceneSession("cube", WIDTH, HEIGHT)
        soc_resumed, resumed_results = resume_run(
            checkpoint, tiny_config(num_frames=frames, health=health),
            session.frame, session.framebuffer_address)
        assert soc_resumed.loop.finished
        assert np.array_equal(soc_resumed.gpu.fb.color, full_fb)

    def test_resumed_run_checkpoints_cover_whole_trace(self):
        """Snapshots taken after a resume include the replayed prefix, so a
        second crash can still recover the full run."""
        frames = 2
        health = HealthConfig(checkpoint_every=1)
        # A one-frame run stands in for a run that crashed after frame 0.
        soc_partial = build_soc(num_frames=1, health=health)
        soc_partial.run()
        checkpoint_one = soc_partial.checkpoints.last
        assert checkpoint_one.frame_index == 1

        session = SceneSession("cube", WIDTH, HEIGHT)
        soc_resumed, _ = resume_run(
            checkpoint_one, tiny_config(num_frames=frames, health=health),
            session.frame, session.framebuffer_address)
        final = soc_resumed.checkpoints.last
        assert final.frame_index == frames
        # The final snapshot's trace replays *all* frames, including the
        # ones rendered before the crash.
        assert len(final.restore_frames()) == frames


class TestCheckpointClaimProvenance:
    """Snapshots carry the fleet server's claim token (incarnation +
    attempt) as pure provenance: it round-trips through the on-disk
    format, but ownership decisions still key on ``job`` alone — a new
    incarnation resuming an old claim's snapshot is the crash-recovery
    contract, not a conflict."""

    def _snapshot(self, claim=None, job=None):
        manager = CheckpointManager(every=1, job=job, claim=claim)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        source(0)
        manager.on_frame_done(0, tick=500)
        return manager.last

    def test_claim_token_survives_the_on_disk_format(self):
        snapshot = self._snapshot(claim="srv-1a2b-i3#7", job="cafe0123")
        assert snapshot.claim == "srv-1a2b-i3#7"
        restored = GraphicsCheckpoint.from_json(snapshot.to_json())
        assert restored.claim == "srv-1a2b-i3#7"
        assert restored.job == "cafe0123"

    def test_unclaimed_snapshots_omit_the_field(self):
        snapshot = self._snapshot()
        assert snapshot.claim is None
        assert "claim" not in snapshot.to_json()

    def test_non_string_claim_rejected(self):
        import json

        from repro.soc.checkpoint import CheckpointError, _payload_crc
        doc = json.loads(self._snapshot(claim="srv-1#1").to_json())
        doc["claim"] = 11
        doc["crc"] = _payload_crc(doc)
        with pytest.raises(CheckpointError, match="claim"):
            GraphicsCheckpoint.from_json(json.dumps(doc))

    def test_resume_accepts_a_foreign_claims_snapshot(self):
        """Same job, different claim: exactly what a restarted server
        produces. The resume path must not treat it as foreign state."""
        from repro.health import resume_run

        source = SceneSession("cube", WIDTH, HEIGHT)
        manager = CheckpointManager(every=1, job="cafe0123",
                                    claim="srv-dead-i1#4")
        wrapped = manager.wrap_source(source.frame)
        wrapped(0)
        manager.on_frame_done(0, tick=500)
        health = HealthConfig(checkpoint_every=1,
                              checkpoint_job="cafe0123",
                              checkpoint_claim="srv-rebirth-i2#1")
        soc, results = resume_run(manager.last,
                                  tiny_config(num_frames=2, health=health),
                                  source.frame,
                                  source.framebuffer_address)
        assert soc.loop.finished
        assert len(results.frames) == 1          # resumed past frame 0
        # And the snapshots the resumed run writes carry the *new*
        # incarnation's claim.
        assert soc.checkpoints.last.claim == "srv-rebirth-i2#1"


class TestCheckpointRewind:
    """Rewinding a final-frame snapshot so a resume re-renders pixels."""

    def _snapshot(self, frames=3, tick=9_000, job="jk"):
        manager = CheckpointManager(every=frames, job=job)
        source = manager.wrap_source(
            SceneSession("cube", WIDTH, HEIGHT).frame)
        for index in range(frames):
            source(index)
        manager.on_frame_done(frames - 1, tick=tick)
        return manager.last

    def test_rewind_drops_trace_frames_and_backs_up_the_index(self):
        snapshot = self._snapshot(frames=3)
        rewound = snapshot.rewind(1)
        assert rewound.frame_index == 2
        assert len(rewound.restore_frames()) == 2
        # Everything else is preserved — tick monotonicity, ownership.
        assert rewound.tick == snapshot.tick
        assert rewound.job == snapshot.job
        # The original is untouched (rewind returns a copy).
        assert snapshot.frame_index == 3
        assert len(snapshot.restore_frames()) == 3

    def test_rewound_snapshot_survives_the_json_roundtrip(self):
        rewound = self._snapshot(frames=2).rewind(1)
        restored = GraphicsCheckpoint.from_json(rewound.to_json())
        assert restored.frame_index == 1
        assert len(restored.restore_frames()) == 1

    def test_rewind_count_must_be_positive(self):
        snapshot = self._snapshot(frames=2)
        for count in (0, -1):
            with pytest.raises(ValueError, match="must be positive"):
                snapshot.rewind(count)

    def test_rewind_past_the_recorded_trace_is_refused(self):
        snapshot = self._snapshot(frames=2)
        with pytest.raises(ValueError, match="cannot rewind 3"):
            snapshot.rewind(3)
