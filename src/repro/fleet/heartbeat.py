"""Worker liveness: file-based heartbeats + the supervisor-side monitor.

Workers beat by atomically rewriting a small JSON file at every frame
boundary (the same cadence as checkpoints).  The supervisor polls the
file and applies the watchdog's deadline idiom (``repro.health.watchdog``)
in wall-clock time: a worker whose process is alive but whose heartbeat
has not changed within the timeout is *hung* — killed and requeued — while
a dead process with no result is *crashed*.  Files survive SIGKILL, so a
violently killed worker leaves its last observed progress behind for the
triage bundle.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional


def write_heartbeat(path: str, *, frame: int, tick: int, beats: int) -> None:
    """Atomically publish one heartbeat (write-then-rename)."""
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump({"frame": frame, "tick": tick, "beats": beats,
                   "pid": os.getpid()}, handle)
    os.replace(tmp, path)


def read_heartbeat(path: str) -> Optional[dict]:
    """The last complete heartbeat, or None (absent / torn write)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


class HeartbeatMonitor:
    """Tracks one worker's heartbeat file; answers "is it stale?".

    ``timeout`` is wall-clock seconds without an observed change before
    the worker counts as hung.  The clock starts at construction (process
    launch), so a worker that never beats at all also times out.
    """

    def __init__(self, path: str, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.path = path
        self.timeout = timeout
        self._last_seen: Optional[dict] = None
        self._changed_at = time.monotonic()

    def poll(self) -> Optional[dict]:
        """Re-read the file; returns the latest heartbeat (or None)."""
        doc = read_heartbeat(self.path)
        if doc is not None and doc != self._last_seen:
            self._last_seen = doc
            self._changed_at = time.monotonic()
        return self._last_seen

    @property
    def last(self) -> Optional[dict]:
        return self._last_seen

    def age(self) -> float:
        """Seconds since the heartbeat last changed (or since launch)."""
        return time.monotonic() - self._changed_at

    def stale(self) -> bool:
        return self.age() > self.timeout
