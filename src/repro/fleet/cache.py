"""Content-addressed deterministic result cache.

Layout (two-level fan-out, gem5-artifact style)::

    <root>/ab/abcdef.../MANIFEST.json     # provenance + validation
    <root>/ab/abcdef.../result.json       # canonical deterministic payload

Determinism (pinned since PR 2) makes hits exact: the same (config hash,
seed, code version) address always maps to bit-identical ``result.json``
bytes, so serving from cache *is* re-running the job.

Robustness contract:

* **Atomic publish** — an entry is staged in a scratch directory and
  renamed into place; readers never observe a half-written entry.  Two
  workers racing to publish the same key both succeed; the loser *checks*
  that the winner's bytes equal its own (determinism makes them equal by
  construction), and a divergence quarantines the winner with both
  digests logged instead of silently trusting either side.
* **Corrupt entries are misses** — a damaged manifest or unreadable
  payload quarantines the entry (renamed to ``*.corrupt-N``) and reports
  a miss, so one bad disk block costs a re-run, not a crash or a wrong
  answer.
* **Bounded growth** — :meth:`ResultCache.gc` applies size/count caps
  with LRU eviction (hits refresh recency); quarantined entries and
  orphaned staging directories are swept first.  ``python -m repro fleet
  gc`` drives it from the CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.manifest import (MANIFEST_NAME, RESULT_NAME, ManifestError,
                                  payload_bytes, validate_manifest)

#: Orphaned ``*.staging-<pid>`` directories older than this many seconds
#: (a publisher SIGKILL'd mid-store) are reclaimed by :meth:`gc`.
STALE_STAGING_AGE = 3600.0


@dataclass
class CachedResult:
    """One validated cache entry."""

    key: str
    manifest: dict
    payload: dict
    result_bytes: bytes
    path: str


@dataclass
class CacheGCReport:
    """What one retention sweep found and removed."""

    entries: int = 0                 # valid entries surviving the sweep
    bytes: int = 0                   # bytes surviving the sweep
    evicted_entries: int = 0
    evicted_bytes: int = 0
    quarantined_removed: int = 0
    staging_removed: int = 0
    evicted: list = field(default_factory=list)   # entry basenames, oldest first

    def to_dict(self) -> dict:
        return {
            "entries": self.entries, "bytes": self.bytes,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "quarantined_removed": self.quarantined_removed,
            "staging_removed": self.staging_removed,
            "evicted": list(self.evicted),
        }


def _tree_size(path: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:
                pass
    return total


def _sha256(raw: Optional[bytes]) -> str:
    if raw is None:
        return "<unreadable>"
    return hashlib.sha256(raw).hexdigest()[:16]


class ResultCache:
    """The on-disk store; safe for concurrent writers on one filesystem."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.race_divergences = 0

    def entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def lookup(self, key: str) -> Optional[CachedResult]:
        """Return the validated entry for ``key``, or None (a miss).

        Anything wrong with the entry — missing files, truncated JSON, a
        manifest that disagrees with its address — quarantines it and
        counts as a miss.  A hit refreshes the entry's mtime so the GC's
        LRU order tracks actual use, not publish time.
        """
        path = self.entry_dir(key)
        if not os.path.isdir(path):
            self.misses += 1
            return None
        try:
            with open(os.path.join(path, MANIFEST_NAME)) as handle:
                manifest = validate_manifest(json.load(handle), key=key)
            with open(os.path.join(path, RESULT_NAME), "rb") as handle:
                raw = handle.read()
            payload = json.loads(raw)
            if payload_bytes(payload) != raw:
                raise ManifestError("result payload is not canonical")
        except (OSError, ValueError) as exc:   # ManifestError is a ValueError
            self._quarantine(path, reason=str(exc))
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)                     # LRU recency for gc()
        except OSError:
            pass
        return CachedResult(key=key, manifest=manifest, payload=payload,
                            result_bytes=raw, path=path)

    def store(self, key: str, manifest: dict, payload: dict) -> str:
        """Publish an entry atomically; returns its final path.

        Losing a concurrent-publish race is success *only if* the
        winner's payload bytes equal ours — determinism guarantees they
        do, so a divergence means a real defect (code-version aliasing,
        bit rot mid-flight) and the winner is quarantined with both
        digests logged before we retry our own publish.
        """
        final = self.entry_dir(key)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        staging = f"{final}.staging-{os.getpid()}"
        os.makedirs(staging, exist_ok=True)
        raw = payload_bytes(payload)
        try:
            with open(os.path.join(staging, RESULT_NAME), "wb") as handle:
                handle.write(raw)
            with open(os.path.join(staging, MANIFEST_NAME), "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            # Two tries: losing the race once is expected; after
            # quarantining a divergent winner our own rename must land.
            for _ in range(2):
                try:
                    os.rename(staging, final)
                    return final
                except OSError:
                    if not os.path.isdir(final):
                        # Not the publish race — a genuine failure
                        # (permissions, a file squatting at the entry
                        # path).  Swallowing it would silently never
                        # cache.
                        raise
                    winner = self._published_bytes(final)
                    if winner == raw:
                        # A concurrent worker published identical bytes
                        # first; discard our staging copy.
                        shutil.rmtree(staging, ignore_errors=True)
                        return final
                    # Divergence (or an unreadable winner): quarantine
                    # the occupant, recording both sides' digests so the
                    # loser — us — is identifiable from the quarantine
                    # record alone.
                    self.race_divergences += 1
                    self._quarantine(final, reason=(
                        "concurrent publish divergence: winner sha256 "
                        f"{_sha256(winner)} != loser sha256 {_sha256(raw)} "
                        f"(loser pid {os.getpid()}, key {key})"))
            # Both tries lost to divergent winners: give up loudly-ish —
            # the entry on disk will be re-validated (and quarantined if
            # bad) at lookup time.
            shutil.rmtree(staging, ignore_errors=True)
            return final
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise

    @staticmethod
    def _published_bytes(final: str) -> Optional[bytes]:
        try:
            with open(os.path.join(final, RESULT_NAME), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def _quarantine(self, path: str, reason: str) -> None:
        target, suffix = f"{path}.corrupt", 1
        while os.path.exists(target):
            suffix += 1
            target = f"{path}.corrupt-{suffix}"
        try:
            os.rename(path, target)
            with open(os.path.join(target, "QUARANTINE"), "w") as handle:
                handle.write(reason + "\n")
        except OSError:
            pass                               # best effort; still a miss
        self.quarantined += 1

    # -- retention ----------------------------------------------------------

    def _scan(self):
        """(valid, quarantined, staging) directory listings under root."""
        valid, quarantined, staging = [], [], []
        try:
            fanouts = sorted(os.listdir(self.root))
        except OSError:
            return valid, quarantined, staging
        for fanout in fanouts:
            fan_dir = os.path.join(self.root, fanout)
            if not os.path.isdir(fan_dir):
                continue
            for name in sorted(os.listdir(fan_dir)):
                path = os.path.join(fan_dir, name)
                if not os.path.isdir(path):
                    continue
                if ".staging-" in name:
                    staging.append(path)
                elif ".corrupt" in name:
                    quarantined.append(path)
                else:
                    valid.append(path)
        return valid, quarantined, staging

    def gc(self, max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None,
           stale_staging_age: float = STALE_STAGING_AGE) -> CacheGCReport:
        """Apply retention caps; returns what was swept.

        Quarantined entries and orphaned staging directories go first
        (they serve no lookup), then valid entries are evicted oldest-
        mtime-first until both caps hold.  ``None`` disables a cap.
        """
        report = CacheGCReport()
        valid, quarantined, staging = self._scan()
        now = time.time()
        for path in staging:
            try:
                if now - os.path.getmtime(path) < stale_staging_age:
                    continue
            except OSError:
                pass
            shutil.rmtree(path, ignore_errors=True)
            report.staging_removed += 1
        for path in quarantined:
            shutil.rmtree(path, ignore_errors=True)
            report.quarantined_removed += 1

        def mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0

        survivors = sorted(valid, key=mtime)         # oldest first
        sizes = {path: _tree_size(path) for path in survivors}
        total = sum(sizes.values())
        while survivors and (
                (max_entries is not None and len(survivors) > max_entries)
                or (max_bytes is not None and total > max_bytes)):
            victim = survivors.pop(0)
            shutil.rmtree(victim, ignore_errors=True)
            total -= sizes[victim]
            report.evicted_entries += 1
            report.evicted_bytes += sizes[victim]
            report.evicted.append(os.path.basename(victim))
        report.entries = len(survivors)
        report.bytes = total
        return report

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined,
                "race_divergences": self.race_divergences}


def sweep_triage_bundles(workdir: str,
                         max_bundles: Optional[int] = None) -> dict:
    """Cap the triage-bundle population under a fleet workdir.

    Bundles live at ``<workdir>/jobs/<job>/triage/<bundle>``; the oldest
    (by mtime) beyond ``max_bundles`` are removed.  Returns a summary
    dict (``kept`` / ``removed`` counts and the removed paths).
    """
    bundles = []
    jobs_root = os.path.join(workdir, "jobs")
    if os.path.isdir(jobs_root):
        for job in sorted(os.listdir(jobs_root)):
            triage = os.path.join(jobs_root, job, "triage")
            if not os.path.isdir(triage):
                continue
            for name in sorted(os.listdir(triage)):
                path = os.path.join(triage, name)
                if os.path.isdir(path):
                    bundles.append(path)

    def mtime(path: str) -> float:
        try:
            return os.path.getmtime(path)
        except OSError:
            return 0.0

    bundles.sort(key=mtime)
    removed = []
    if max_bundles is not None and len(bundles) > max_bundles:
        for victim in bundles[:len(bundles) - max_bundles]:
            shutil.rmtree(victim, ignore_errors=True)
            removed.append(victim)
        bundles = bundles[len(removed):]
    return {"kept": len(bundles), "removed": len(removed),
            "removed_paths": removed}
