"""Tests for the fixed-function stage queue plumbing."""

import pytest

from repro.common.events import EventQueue
from repro.gpu.stages import StageQueue


class TestStageQueue:
    def test_serves_in_order(self):
        events = EventQueue()
        served = []
        stage = StageQueue(events, "s", served.append)
        for i in range(5):
            stage.submit(i)
        events.run()
        assert served == [0, 1, 2, 3, 4]

    def test_unit_cost_throughput(self):
        """One item per cycle: the Nth item is processed at tick N-1... +1."""
        events = EventQueue()
        times = []
        stage = StageQueue(events, "s", lambda item: times.append(events.now))
        for i in range(4):
            stage.submit(i)
        events.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == [1, 1, 1]

    def test_variable_cost(self):
        events = EventQueue()
        times = []
        stage = StageQueue(events, "s", lambda item: times.append(events.now),
                           cost_fn=lambda item: item)
        stage.submit(3)
        stage.submit(1)
        events.run()
        # Second item waits for the first's 3-cycle occupancy.
        assert times[1] - times[0] == 3

    def test_cost_clamped_to_one(self):
        events = EventQueue()
        times = []
        stage = StageQueue(events, "s", lambda item: times.append(events.now),
                           cost_fn=lambda item: 0)
        stage.submit("a")
        stage.submit("b")
        events.run()
        assert times[1] - times[0] == 1

    def test_idle_and_depth(self):
        events = EventQueue()
        stage = StageQueue(events, "s", lambda item: None)
        assert stage.idle
        stage.submit(1)
        stage.submit(2)
        assert stage.depth >= 1
        assert not stage.idle
        events.run()
        assert stage.idle
        assert stage.depth == 0

    def test_submit_during_processing(self):
        events = EventQueue()
        served = []

        def process(item):
            served.append(item)
            if item == 0:
                stage.submit(99)

        stage = StageQueue(events, "s", process)
        stage.submit(0)
        stage.submit(1)
        events.run()
        assert served == [0, 1, 99]

    def test_stats_counters(self):
        events = EventQueue()
        stage = StageQueue(events, "s", lambda item: None,
                           cost_fn=lambda item: 2)
        stage.submit(1)
        stage.submit(2)
        events.run()
        assert stage.stats.counter("items").value == 2
        assert stage.stats.counter("busy_cycles").value == 4
