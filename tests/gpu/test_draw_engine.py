"""Focused tests for vertex batching, Hi-Z and the draw engine."""

import numpy as np
import pytest

from repro.geometry.mesh import PrimitiveMode
from repro.gl.state import DepthFunc, GLState
from repro.gpu.draw_engine import build_vertex_batches
from repro.gpu.hiz import HiZBuffer
from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.raster import FragmentBlock
from repro.shader.compiler import compile_shader


class TestVertexBatches:
    def test_triangles_mode_batches(self):
        indices = np.arange(60)           # 20 triangles
        batches = build_vertex_batches(indices, PrimitiveMode.TRIANGLES,
                                       warp_size=32)
        # 10 prims (30 indices) per batch.
        assert len(batches) == 2
        assert all(len(b.prims) == 10 for b in batches)
        prim_ids = [p for b in batches for p, _ in b.prims]
        assert prim_ids == list(range(20))

    def test_triangles_local_indices_resolve_correctly(self):
        indices = np.arange(100, 160)
        batches = build_vertex_batches(indices, PrimitiveMode.TRIANGLES,
                                       warp_size=32)
        for batch in batches:
            for prim_id, local in batch.prims:
                expected = indices[prim_id * 3:prim_id * 3 + 3]
                assert batch.vertex_ids[list(local)].tolist() == \
                    expected.tolist()

    def test_strip_batches_overlap(self):
        indices = np.arange(62)           # 60 strip triangles
        batches = build_vertex_batches(indices, PrimitiveMode.TRIANGLE_STRIP,
                                       warp_size=32)
        assert len(batches) == 2
        # Consecutive batches share two vertices (the overlap).
        first, second = batches
        assert first.vertex_ids[-2:].tolist() == \
            second.vertex_ids[:2].tolist()
        prim_ids = [p for b in batches for p, _ in b.prims]
        assert prim_ids == list(range(60))

    def test_strip_winding_alternates(self):
        indices = np.arange(6)
        (batch,) = build_vertex_batches(indices, PrimitiveMode.TRIANGLE_STRIP,
                                        warp_size=32)
        # Global prim 1 is odd: winding flipped.
        assert batch.prims[0][1] == (0, 1, 2)
        assert batch.prims[1][1] == (2, 1, 3)

    def test_fan_center_in_every_batch(self):
        indices = np.arange(70)           # 68 fan triangles
        batches = build_vertex_batches(indices, PrimitiveMode.TRIANGLE_FAN,
                                       warp_size=32)
        assert len(batches) >= 2
        for batch in batches:
            assert batch.vertex_ids[0] == indices[0]
            for _, local in batch.prims:
                assert local[0] == 0       # all prims reference the center
        prim_ids = [p for b in batches for p, _ in b.prims]
        assert prim_ids == list(range(68))

    def test_every_prim_vertices_within_batch(self):
        for mode in PrimitiveMode:
            indices = np.arange(40 if mode is PrimitiveMode.TRIANGLES else 41)
            batches = build_vertex_batches(indices, mode, warp_size=32)
            for batch in batches:
                for _, local in batch.prims:
                    assert max(local) < len(batch.vertex_ids)

    def test_empty_indices(self):
        assert build_vertex_batches(np.array([], dtype=np.int64),
                                    PrimitiveMode.TRIANGLES) == []


def block_with_z(z_values, tile_x=0, tile_y=0):
    z = np.asarray(z_values, dtype=np.float64)
    n = len(z)
    return FragmentBlock(prim_id=0, tile_x=tile_x, tile_y=tile_y,
                         xs=np.arange(n), ys=np.zeros(n, dtype=np.int64),
                         z=z, inv_w=np.ones(n),
                         varyings=np.zeros((n, 1)))


class TestHiZ:
    def test_applicability(self):
        hiz = HiZBuffer(32, 32)
        simple = compile_shader(
            "void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }",
            "fragment", name="hiz_simple")
        assert hiz.applicable(GLState(), simple)
        assert not hiz.applicable(GLState(depth_test=False), simple)
        assert not hiz.applicable(GLState(depth_func=DepthFunc.GREATER),
                                  simple)

    def test_discard_shader_not_applicable(self):
        hiz = HiZBuffer(32, 32)
        discard = compile_shader(
            "in float v_a;\nvoid main() { if (v_a < 0.5) { discard; } "
            "gl_FragColor = vec4(1.0, 1.0, 1.0, 1.0); }",
            "fragment", name="hiz_discard")
        assert not hiz.applicable(GLState(), discard)

    def test_block_culled_when_behind(self):
        hiz = HiZBuffer(32, 32)
        hiz.max_depth[0, 0] = 0.4
        assert not hiz.test_block(block_with_z([0.6, 0.7]))
        assert hiz.test_block(block_with_z([0.3, 0.9]))   # min passes

    def test_update_from_framebuffer(self):
        hiz = HiZBuffer(8, 8, raster_tile_px=4)
        fb = Framebuffer(8, 8)
        fb.depth[:4, :4] = 0.25
        hiz.update_from_framebuffer(fb, {(0, 0)})
        assert hiz.max_depth[0, 0] == 0.25
        assert hiz.max_depth[0, 1] == 1.0   # untouched tile

    def test_clear(self):
        hiz = HiZBuffer(8, 8)
        hiz.max_depth[:] = 0.1
        hiz.clear()
        assert np.all(hiz.max_depth == 1.0)
