"""Full-system assembly (Fig. 1): CPUs + GPU + display + DRAM + NoC.

:class:`EmeraldSoC` wires the case-study-I system together for one of the
Table 6 memory configurations (BAS / DCB / DTB / HMC) and runs the
Android-like render loop for a number of frames, returning every
measurement the paper's Figs. 9-14 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.config import (CPUClusterTopology, DRAMConfig, GPUConfig,
                                 NoCLinkBudget, NoCTopology, SoCTopology)
from repro.common.events import EventQueue, SimulationError, StopReason
from repro.gl.context import Frame
from repro.gpu.gpu import EmeraldGPU
from repro.health import CheckpointManager, FaultInjector, HealthConfig
from repro.health.watchdog import Watchdog
from repro.memory.builders import build_memory, memory_topology_by_name
from repro.memory.request import SourceType
from repro.memory.system import MemoryFabric
from repro.sanitize import SanitizeConfig, Sanitizer
from repro.sanitize.roundtrip import verify_roundtrip
from repro.sanitize.violations import CheckpointMismatchViolation
from repro.soc.android import FrameRecord, RenderLoop
from repro.soc.cpu import CPUCluster
from repro.soc.display import DisplayController
from repro.soc.noc import SystemNoC
from repro.trace import CycleAttribution, TraceConfig, Tracer, summarize


@dataclass
class SoCRunConfig:
    """Knobs for one full-system run.

    The paper simulates at 1024x768 against wall-clock deadlines; a scaled
    resolution needs proportionally scaled deadlines to preserve the
    load-to-deadline ratios, hence explicit tick periods here (see
    EXPERIMENTS.md).
    """

    width: int = 192
    height: int = 144
    num_frames: int = 5
    memory_config: str = "BAS"               # BAS | DCB | DTB | HMC
    dram: DRAMConfig = field(default_factory=lambda: DRAMConfig(channels=2))
    gpu: GPUConfig = field(default_factory=GPUConfig)
    gpu_frame_period_ticks: int = 400_000     # app target (30 FPS analog)
    display_period_ticks: int = 200_000       # vsync (60 FPS analog)
    cpu_work_per_frame: int = 150
    cpu_fixed_ticks: int = 0
    num_cpu_cores: int = 4
    noc_latency: int = 12
    # Bounded-bandwidth NoC (None = unbounded, bit-identical to the seed):
    # ``noc_capacity`` caps the link queue depth; ``noc_bytes_per_cycle``
    # serializes packets so sustained overload queues (Fig. 12 regime).
    noc_capacity: Optional[int] = None
    noc_bytes_per_cycle: Optional[float] = None
    seed: int = 7
    # DASH epoch scaling: Table 3's quantum (1M cycles) assumes wall-clock-
    # scale workloads; scaled runs need the classifier to re-cluster within
    # a frame.
    dash_quantum_ticks: int = 50_000
    dash_switching_ticks: int = 500
    # Health subsystem (watchdog / fault injection / checkpointing); None
    # keeps the run bit-identical to a health-free build.
    health: Optional[HealthConfig] = None
    # Cycle-attribution tracing (repro.trace); None disables every hook.
    # Even when enabled the tracer only records — it schedules no events
    # and draws no randomness, so the run stays bit-identical either way.
    trace: Optional[TraceConfig] = None
    # Runtime invariant checking (repro.sanitize); None disables every
    # hook.  Like the tracer, an armed-but-quiet sanitizer schedules no
    # events and draws no randomness — bit-identical to a bare run.
    sanitize: Optional[SanitizeConfig] = None
    # Observation hook called as ``frame_hook(frame_index, tick)`` after
    # every completed frame, before checkpointing.  The fleet worker uses
    # it for heartbeats; it must not schedule events or draw randomness.
    frame_hook: Optional[Callable[[int, int], None]] = None
    # Declarative assembly: an explicit :class:`SoCTopology` descriptor
    # overrides the knob-derived system shape (memory_config / dram /
    # num_cpu_cores / noc_*).  None derives an equivalent descriptor from
    # those knobs — see :meth:`resolve_topology` — so every run, legacy or
    # declarative, has a canonical topology (and hash).
    topology: Optional[SoCTopology] = None

    def resolve_topology(self) -> SoCTopology:
        """The :class:`SoCTopology` this run assembles.

        The explicit descriptor when one is set; otherwise one derived
        from the legacy knobs.  A default config and its hand-written
        descriptor equivalent resolve to equal descriptors — and thus the
        same topology hash — which is what lets checkpoint/cache
        identities survive the declarative migration.
        """
        if self.topology is not None:
            return self.topology
        links = None
        if self.noc_capacity is not None or self.noc_bytes_per_cycle is not None:
            links = (NoCLinkBudget(capacity=self.noc_capacity,
                                   bytes_per_cycle=self.noc_bytes_per_cycle),)
        return SoCTopology(
            name=self.memory_config,
            gpu=self.gpu,
            cpu=CPUClusterTopology(num_cores=self.num_cpu_cores),
            memory=(memory_topology_by_name(self.memory_config, self.dram),),
            noc=NoCTopology(latency=self.noc_latency, links=links))


@dataclass
class SoCResults:
    """Everything measured in one run."""

    config_name: str
    frames: list[FrameRecord]
    mean_gpu_time: float
    mean_total_time: float
    fps_fraction: float
    display_requests: int
    display_completed: int
    display_aborted: int
    row_hit_rate: float
    bytes_per_activation: float
    dram_bytes: dict[str, int]
    mean_latency: dict[str, float]
    bandwidth: dict[str, list[tuple[int, float]]]
    end_tick: int = 0
    # Health telemetry (all zero on a health-free run).
    quarantined_errors: int = 0
    watchdog_reports: int = 0
    noc_retries: int = 0
    checkpoints_taken: int = 0
    # Per-link port statistics (queue occupancy, stalls) keyed by link name.
    link_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    # Cycle-attribution report (set when SoCRunConfig.trace.profile is on).
    profile: Optional[CycleAttribution] = None
    # Sanitizer telemetry (zero on an unsanitized run).
    sanitizer_checks: int = 0
    sanitizer_violations: int = 0


class EmeraldSoC:
    """The assembled system; create, then :meth:`run`.

    Assembly is a staged builder pipeline over the run's resolved
    :class:`~repro.common.config.SoCTopology` — events/health, memory
    endpoints, NoC, IPs, render loop, sanitizer, in that order (each
    stage consumes what the previous ones built).  A run assembled from
    the legacy name-string knobs and one assembled from the equivalent
    explicit descriptor build object-for-object identical systems.
    """

    def __init__(self, run_config: SoCRunConfig,
                 frame_source: Callable[[int], Frame],
                 framebuffer_address: int,
                 start_frame: int = 0, start_tick: int = 0) -> None:
        self.config = run_config
        self.topology = run_config.resolve_topology()
        frame_source = self._build_events_and_health(run_config, frame_source)
        self._build_memory(run_config)
        self._build_noc(run_config)
        self._build_ips(run_config, framebuffer_address)
        self._build_loop(run_config, frame_source, start_frame, start_tick)
        self._build_sanitizer(run_config)

    # -- assembly stages -----------------------------------------------------

    def _build_events_and_health(self, run_config: SoCRunConfig,
                                 frame_source: Callable[[int], Frame]
                                 ) -> Callable[[int], Frame]:
        """Event queue, tracer, and the health subsystem.

        Returns the (possibly checkpoint-observing) frame source the
        render loop should pull from.
        """
        health = run_config.health
        self.events = EventQueue(
            error_policy=health.error_policy if health is not None
            else "propagate")
        self.tracer: Optional[Tracer] = None
        if run_config.trace is not None:
            self.tracer = Tracer(
                self.events,
                categories=run_config.trace.categories,
                kernel_events=run_config.trace.kernel_events)
        self.watchdog: Optional[Watchdog] = None
        self.injector: Optional[FaultInjector] = None
        self.checkpoints: Optional[CheckpointManager] = None
        self._retry = None
        if health is not None:
            if health.watchdog:
                timeout = health.watchdog_timeout
                if health.retry is not None:
                    # The watchdog must outlast the full retry ladder, or
                    # it reports requests the NoC is still recovering.
                    timeout = max(timeout,
                                  health.retry.ladder_ticks()
                                  + health.watchdog_check_period * 2)
                self.watchdog = Watchdog(
                    self.events,
                    request_timeout=timeout,
                    check_period=health.watchdog_check_period,
                    stall_window=health.stall_window)
            if health.faults is not None and health.faults.active():
                self.injector = FaultInjector(health.faults)
            self._retry = health.retry
            if health.checkpoint_every:
                self.checkpoints = CheckpointManager(
                    health.checkpoint_every, path=health.checkpoint_path,
                    injector=self.injector,
                    preempt_check=health.preempt_check,
                    job=health.checkpoint_job,
                    topology=self.topology.topology_hash(),
                    claim=health.checkpoint_claim)
                frame_source = self.checkpoints.wrap_source(frame_source)
        return frame_source

    def _build_memory(self, run_config: SoCRunConfig) -> None:
        """One :class:`MemorySystem` per topology memory endpoint.

        ``self.memory`` is the read-side facade every consumer (GPU
        telemetry, results, stats dump) sees: the bare system for one
        endpoint, a :class:`MemoryFabric` aggregate for several.
        """
        from repro.memory.dash import DashConfig
        self.memory_endpoints = []
        self.dash_state = None
        for index, endpoint in enumerate(self.topology.memory):
            dash_config = DashConfig(
                quantum=run_config.dash_quantum_ticks,
                switching_unit=run_config.dash_switching_ticks)
            system, state = build_memory(
                self.events, endpoint,
                gpu_clock_ghz=self.topology.gpu.clock_ghz,
                dash_config=dash_config)
            if state is not None:
                self.dash_state = state
            self.memory_endpoints.append(system)
        if len(self.memory_endpoints) == 1:
            self.memory = self.memory_endpoints[0]
        else:
            # Disambiguate per-channel stat groups across endpoints
            # ("dram.ch0" would otherwise collide in the stats dump).
            for index, system in enumerate(self.memory_endpoints):
                for channel in system.channels:
                    channel.stats.name = (
                        f"dram{index}.ch{channel.channel_id}")
            self.memory = MemoryFabric(self.memory_endpoints)

    def _build_noc(self, run_config: SoCRunConfig) -> None:
        noc_topo = self.topology.noc
        memory = (self.memory_endpoints[0]
                  if len(self.memory_endpoints) == 1
                  else self.memory_endpoints)
        self.noc = SystemNoC(self.events, memory,
                             latency=noc_topo.latency,
                             watchdog=self.watchdog,
                             injector=self.injector, retry=self._retry,
                             capacity=run_config.noc_capacity,
                             bytes_per_cycle=run_config.noc_bytes_per_cycle,
                             tracer=self.tracer,
                             link_budgets=noc_topo.links,
                             interleave_bytes=noc_topo.interleave_bytes)

    def _build_ips(self, run_config: SoCRunConfig,
                   framebuffer_address: int) -> None:
        self.gpu = EmeraldGPU(self.events, self.topology.gpu,
                              run_config.width, run_config.height,
                              memory=self.memory, memory_port=self.noc)
        self.cpus = CPUCluster(self.events, self.noc,
                               num_cores=self.topology.cpu.num_cores,
                               seed=run_config.seed,
                               core_types=self.topology.cpu.core_types)
        frame_bytes = run_config.width * run_config.height * 4
        self.display = DisplayController(
            self.events, self.noc,
            framebuffer_address=framebuffer_address,
            frame_bytes=frame_bytes,
            period_ticks=run_config.display_period_ticks,
            dash_state=self.dash_state,
            injector=self.injector)
        if self.dash_state is not None:
            self.dash_state.register_ip(
                SourceType.GPU, run_config.gpu_frame_period_ticks)
            self.dash_state.register_ip(
                SourceType.DISPLAY, run_config.display_period_ticks)

    def _build_loop(self, run_config: SoCRunConfig,
                    frame_source: Callable[[int], Frame],
                    start_frame: int, start_tick: int) -> None:
        self.loop = RenderLoop(
            self.events, self.gpu, self.cpus.app_core, frame_source,
            num_frames=run_config.num_frames,
            frame_period_ticks=run_config.gpu_frame_period_ticks,
            cpu_work_per_frame=run_config.cpu_work_per_frame,
            cpu_fixed_ticks=run_config.cpu_fixed_ticks,
            on_phase=self.cpus.set_phase,
            dash_state=self.dash_state,
            on_frame_done=self._frame_done,
            on_finished=self.events.request_stop,
            start_frame=start_frame)
        self._start_tick = start_tick

    def _build_sanitizer(self, run_config: SoCRunConfig) -> None:
        # Last: the sanitizer registers every component built above.
        self.sanitizer: Optional[Sanitizer] = None
        self._verified_checkpoints = 0
        if run_config.sanitize is not None:
            self.sanitizer = Sanitizer(self.events, run_config.sanitize)
            self.sanitizer.register_soc(self)

    def _frame_done(self, record: FrameRecord) -> None:
        if self.config.frame_hook is not None:
            self.config.frame_hook(record.index, self.events.now)
        if self.tracer is not None:
            # Frame-boundary counter samples of every component's counters.
            self.tracer.snapshot_stats(self.stat_groups())
        if self.checkpoints is not None:
            self.checkpoints.on_frame_done(record.index, self.events.now)
            self._verify_new_checkpoint()

    def _verify_new_checkpoint(self) -> None:
        """Round-trip every snapshot the moment it is taken (sanitizer)."""
        if (self.sanitizer is None
                or not self.sanitizer.config.verify_checkpoints
                or self.checkpoints.checkpoints_taken
                <= self._verified_checkpoints):
            return
        self._verified_checkpoints = self.checkpoints.checkpoints_taken
        try:
            verify_roundtrip(self.checkpoints.last, tick=self.events.now)
        except CheckpointMismatchViolation as violation:
            self.sanitizer.report(violation)    # re-raises in "raise" mode

    def run(self, max_events: int = 500_000_000) -> SoCResults:
        from repro.health.recovery import PreemptionRequested
        if self.sanitizer is not None:
            self.sanitizer.install()
        try:
            return self._run(max_events)
        except PreemptionRequested:
            # Cooperative stop at a checkpoint boundary — a resume point,
            # not a failure; no triage bundle.
            raise
        except SimulationError as error:
            # Typed violations and wrapped hangs alike leave a triage
            # bundle behind when the sanitizer is configured with one.
            self._write_triage(error)
            raise
        finally:
            if self.sanitizer is not None:
                self.sanitizer.uninstall()

    def _run(self, max_events: int) -> SoCResults:
        if self._start_tick:
            # Crash recovery: re-enter simulated time at the snapshot tick.
            self.events.advance_to(self._start_tick)
        self.cpus.start_background()
        self.display.start()
        self.loop.start()
        executed = 0
        while not self.loop.finished:
            # The kernel's fused drain loop does the per-event work; the
            # loop's completion callback calls events.request_stop(), which
            # returns control here after the finishing event — the same
            # stop point as the old one-step()-per-iteration loop.
            result = self.events.run(max_events=max_events - executed)
            executed += result.executed
            if result.reason is StopReason.STOPPED:
                continue                # finished flag re-checked above
            if result.drained:
                raise SimulationError(
                    "event queue drained before loop finished"
                    + self._hang_context(), tick=self.events.now)
            if not self.loop.finished:
                raise SimulationError(
                    f"event limit ({max_events}) exceeded — hung simulation?"
                    + self._hang_context(), tick=self.events.now)
        self.cpus.stop_background()
        self.display.stop()
        results = self._results()
        trace = self.config.trace
        if trace is not None and self.tracer is not None:
            if trace.path:
                self.tracer.write(trace.path)
            if trace.profile:
                results.profile = summarize(self.tracer)
        if self.sanitizer is not None and self.sanitizer.violations:
            # Record-mode runs complete; still leave the evidence behind.
            self._write_triage(self.sanitizer.violations[0])
        return results

    def _write_triage(self, error: BaseException) -> None:
        sanitize = self.config.sanitize
        if sanitize is None or not sanitize.bundle_dir:
            return
        from dataclasses import asdict

        from repro.sanitize.triage import write_bundle

        config = {"sanitize": asdict(sanitize),
                  "seed": self.config.seed,
                  "memory_config": self.config.memory_config,
                  "num_frames": self.config.num_frames}
        health = self.config.health
        if health is not None and health.faults is not None:
            config["faults"] = asdict(health.faults)
        write_bundle(
            sanitize.bundle_dir, seed=self.config.seed, error=error,
            command=sanitize.command, config=config, tracer=self.tracer,
            checkpoint=(self.checkpoints.last
                        if self.checkpoints is not None else None),
            stat_groups=self.stat_groups())

    def _hang_context(self) -> str:
        """What the watchdog knows about a stuck run (for error messages)."""
        if self.watchdog is None or not self.watchdog.in_flight:
            return ""
        oldest = self.watchdog.oldest()
        return (f" ({self.watchdog.in_flight} requests in flight; oldest "
                f"from {oldest.owner} addr=0x{oldest.address:x})")

    def stat_groups(self) -> list:
        """Every component's :class:`StatGroup`, in a stable order — the
        ``--dump-stats`` walk."""
        from repro.harness.report import gpu_stat_groups
        groups = [self.noc.stats]
        groups.extend(link.stats for link in self.noc.links)
        groups.extend(gpu_stat_groups(self.gpu))
        groups.append(self.loop.stats)
        groups.append(self.display.stats)
        groups.extend(core.stats for core in self.cpus.cores)
        groups.extend(channel.stats for channel in self.memory.channels)
        if self.watchdog is not None:
            groups.append(self.watchdog.stats)
        if self.injector is not None:
            groups.append(self.injector.stats)
        if self.sanitizer is not None:
            groups.append(self.sanitizer.stats)
        return groups

    def _link_stats(self) -> dict[str, dict[str, float]]:
        return {group.name: group.dump()
                for group in self.stat_groups()
                if group.name.endswith(".link")}

    def _results(self) -> SoCResults:
        memory = self.memory
        return SoCResults(
            config_name=(self.topology.name
                         if self.config.topology is not None
                         else self.config.memory_config),
            frames=list(self.loop.records),
            mean_gpu_time=self.loop.mean_gpu_time(),
            mean_total_time=self.loop.mean_total_time(),
            fps_fraction=self.loop.achieved_fps_fraction(),
            display_requests=self.display.requests_serviced,
            display_completed=self.display.frames_completed,
            display_aborted=self.display.frames_aborted,
            row_hit_rate=memory.row_hit_rate(),
            bytes_per_activation=memory.bytes_per_activation(),
            dram_bytes={src.value: memory.total_bytes(src)
                        for src in SourceType},
            mean_latency={src.value: memory.mean_latency(src)
                          for src in SourceType},
            bandwidth={src.value: memory.bandwidth_series(src, window=10_000)
                       for src in SourceType},
            end_tick=self.events.now,
            quarantined_errors=len(self.events.errors),
            watchdog_reports=(len(self.watchdog.reports)
                              if self.watchdog is not None else 0),
            noc_retries=self.noc.stats.counter("retries").value,
            checkpoints_taken=(self.checkpoints.checkpoints_taken
                               if self.checkpoints is not None else 0),
            link_stats=self._link_stats(),
            sanitizer_checks=(self.sanitizer.checks_run
                              if self.sanitizer is not None else 0),
            sanitizer_violations=(len(self.sanitizer.violations)
                                  if self.sanitizer is not None else 0),
        )
