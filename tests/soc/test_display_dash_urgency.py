"""Display + DASH urgency interplay under starvation."""

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.memory.builders import build_dash_memory
from repro.memory.request import MemRequest, SourceType
from repro.soc.display import DisplayController


def starved_display(period=20_000, competing_gpu_requests=600):
    events = EventQueue()
    memory, state = build_dash_memory(
        events, DRAMConfig(channels=1, data_rate_mbps=400))
    state.register_ip(SourceType.DISPLAY, period)
    state.register_ip(SourceType.GPU, period * 2)
    display = DisplayController(events, memory.submit,
                                framebuffer_address=0x1000_0000,
                                frame_bytes=96 * 96 * 4,
                                period_ticks=period, dash_state=state)
    # GPU floods the channel, paced over the run so the queue stays mixed.
    state.start_ip_period(SourceType.GPU, 0)
    state.report_ip_progress(SourceType.GPU, 1.0, 0)    # GPU never urgent
    for i in range(competing_gpu_requests):
        events.schedule(i * 50, memory.submit, MemRequest(
            address=0x4000_0000 + i * 128, size=128, write=False,
            source=SourceType.GPU))
    return events, display, state


class TestDisplayUrgency:
    def test_display_becomes_urgent_when_behind(self):
        events, display, state = starved_display()
        display.start()
        urgency_seen = []
        ip = state.ip_state(SourceType.DISPLAY)
        original = state.report_ip_progress

        def spy(source, fraction, now):
            original(source, fraction, now)
            if source is SourceType.DISPLAY:
                urgency_seen.append(ip.urgent)

        state.report_ip_progress = spy
        events.run_until(4 * 20_000)
        display.stop()
        events.run()
        assert any(urgency_seen), \
            "a starved display must eventually be classified urgent"

    def test_fresh_display_frame_not_urgent(self):
        """Fig. 14-6's observation: a frame that just started is
        non-urgent even if the previous one was aborted."""
        events, display, state = starved_display()
        display.start()
        events.run_until(100)      # just after the first vsync
        ip = state.ip_state(SourceType.DISPLAY)
        assert not ip.urgent

    def test_display_progress_monotone_within_frame(self):
        events, display, state = starved_display(competing_gpu_requests=0)
        display.start()
        fractions = []
        original = state.report_ip_progress

        def spy(source, fraction, now):
            original(source, fraction, now)
            if source is SourceType.DISPLAY:
                fractions.append(fraction)

        state.report_ip_progress = spy
        events.run_until(15_000)
        display.stop()
        events.run()
        assert fractions == sorted(fractions)
