"""Tier-1 coverage for the fastpath measurement discipline (repro.bench).

The micro scale keeps these fast enough for every test run; the heavier
operating points live in ``benchmarks/`` and CI's bench smoke job.
"""

import json

import pytest

from repro import bench


@pytest.fixture(scope="module")
def micro_pipeline():
    return bench.run_pipeline("micro")


@pytest.fixture(scope="module")
def micro_fig14():
    return bench.run_fig14("micro")


class TestMicroRuns:
    def test_pipeline_identity(self, micro_pipeline):
        report = micro_pipeline
        assert report["identical"], report["identity"]
        for key in ("cycles", "fragments", "events_fired", "fb_crc",
                    "dram_bytes"):
            assert report["fastpath_on"][key] == report["fastpath_off"][key]
        assert report["fastpath_on"]["fragments"] > 0
        assert report["speedup_vs_seed"] is None  # only at default scale

    def test_fig14_identity(self, micro_fig14):
        report = micro_fig14
        assert report["identical"], report["identity"]
        for key in ("end_tick", "events_fired", "fb_crc", "row_hit_rate",
                    "mean_gpu_time"):
            assert report["fastpath_on"][key] == report["fastpath_off"][key]
        assert report["fastpath_on"]["events_fired"] > 0

    def test_report_shape(self, micro_pipeline):
        report = micro_pipeline
        for key in ("benchmark", "scale", "workload", "fastpath_on",
                    "fastpath_off", "identical", "identity",
                    "speedup_on_vs_off", "host"):
            assert key in report
        # The artifact must round-trip through JSON (CI uploads it).
        assert json.loads(json.dumps(report)) == report

    def test_write_report(self, micro_pipeline, tmp_path):
        path = bench.write_report(micro_pipeline, tmp_path / "artifacts")
        assert path.name == "BENCH_pipeline.json"
        assert json.loads(path.read_text())["benchmark"] == "pipeline"

    def test_format_summary(self, micro_pipeline):
        text = bench.format_summary(micro_pipeline)
        assert "pipeline (micro)" in text
        assert "fastpath on" in text and "fastpath off" in text

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            bench.run_pipeline("huge")
        with pytest.raises(ValueError):
            bench.run_fig14("huge")


def _fake_report(**overrides):
    report = {
        "benchmark": "pipeline",
        "scale": "default",
        "fastpath_on": {"wall_s": 1.0, "cycles": 100, "fragments": 10,
                        "events_fired": 50, "fb_crc": 123, "dram_bytes": 640},
        "fastpath_off": {"wall_s": 1.5, "cycles": 100, "fragments": 10,
                         "events_fired": 50, "fb_crc": 123,
                         "dram_bytes": 640},
        "identical": True,
        "identity": {"cycles": 100, "fragments": 10, "events_fired": 50,
                     "fb_crc": 123, "dram_bytes": 640},
        "speedup_on_vs_off": 1.5,
        "seed_baseline": None,
    }
    report.update(overrides)
    return report


class TestGate:
    def test_passes_clean_report(self):
        assert bench.gate(_fake_report()) == []

    def test_fails_on_identity_mismatch(self):
        report = _fake_report(identical=False)
        report["fastpath_on"] = dict(report["fastpath_on"], fb_crc=999)
        failures = bench.gate(report)
        assert len(failures) == 1
        assert "fb_crc" in failures[0]

    def test_fails_when_fastpath_slower(self):
        report = _fake_report(speedup_on_vs_off=0.7)
        report["fastpath_on"] = dict(report["fastpath_on"], wall_s=2.0)
        failures = bench.gate(report)
        assert len(failures) == 1
        assert "slower" in failures[0]

    def test_noise_allowance(self):
        # Mild regressions within the noise band don't fail CI.
        assert bench.gate(_fake_report(speedup_on_vs_off=0.95)) == []
        assert bench.gate(_fake_report(speedup_on_vs_off=0.95),
                          min_on_off=0.99) != []

    def test_detects_seed_schedule_drift(self):
        report = _fake_report(
            seed_baseline={"wall_s": 2.0, "cycles": 100, "events_fired": 51,
                           "fb_crc": 123, "commit": "abc1234"})
        failures = bench.gate(report)
        assert len(failures) == 1
        assert "drifted" in failures[0]
        assert "events_fired" in failures[0]

    def test_seed_match_passes(self):
        report = _fake_report(
            seed_baseline={"wall_s": 2.0, "cycles": 100, "events_fired": 50,
                           "fb_crc": 123, "commit": "abc1234"})
        assert bench.gate(report) == []


class TestSeedBaseline:
    def test_records_identity_pins(self):
        # The recorded seed fingerprints must match the committed goldens;
        # if either workload's schedule legitimately changes, re-measure
        # the seed baseline, don't just edit these numbers.
        assert bench.SEED_BASELINE["fig14"]["end_tick"] == 1_357_432
        assert bench.SEED_BASELINE["fig14"]["events_fired"] == 274_152
        assert bench.SEED_BASELINE["pipeline"]["cycles"] == 35_612
        assert bench.SEED_BASELINE["pipeline"]["events_fired"] == 125_678
