"""Regression tests: scheduler priority must matter under saturation.

An earlier implementation eagerly committed the whole queue to the DRAM
timing pipeline, freezing the service order — DASH's priorities then had
no effect on anything arriving during a burst.  These tests pin the fixed
behavior: a prioritized request entering a saturated queue overtakes the
backlog.
"""

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.memory.builders import build_baseline_memory, build_dash_memory
from repro.memory.request import MemRequest, SourceType


def flood(system, count, source=SourceType.GPU, start=0):
    done = {}
    for i in range(count):
        system.submit(MemRequest(
            address=start + i * 128, size=128, write=False, source=source,
            callback=lambda r, i=i: done.__setitem__(i, r.complete_time)))
    return done


class TestPriorityUnderLoad:
    def test_dash_cpu_overtakes_gpu_backlog(self):
        """A CPU request arriving into 64 queued GPU requests completes
        far earlier under DASH than its arrival order implies."""
        events = EventQueue()
        system, state = build_dash_memory(events, DRAMConfig(channels=1))
        state.register_ip(SourceType.GPU, period_ticks=1_000_000)
        state.start_ip_period(SourceType.GPU, 0)
        state.report_ip_progress(SourceType.GPU, 1.0, 0)   # never urgent
        gpu_done = flood(system, 64, SourceType.GPU)
        cpu_done = []
        system.submit(MemRequest(address=0x800_0000, size=128, write=False,
                                 source=SourceType.CPU,
                                 callback=lambda r: cpu_done.append(
                                     r.complete_time)))
        events.run()
        finished_before_cpu = sum(1 for t in gpu_done.values()
                                  if t < cpu_done[0])
        assert finished_before_cpu < 16, \
            "the prioritized CPU request should jump most of the GPU backlog"

    def test_frfcfs_keeps_arrival_order_for_misses(self):
        """Under FR-FCFS the same CPU request waits behind the backlog."""
        events = EventQueue()
        system = build_baseline_memory(events, DRAMConfig(channels=1))
        # All to distinct rows of one bank: no row hits to reorder.
        gpu_done = flood(system, 32, SourceType.GPU)
        row_stride = 16 * 8 * 128
        cpu_done = []
        system.submit(MemRequest(address=50 * row_stride, size=128,
                                 write=False, source=SourceType.CPU,
                                 callback=lambda r: cpu_done.append(
                                     r.complete_time)))
        events.run()
        finished_before_cpu = sum(1 for t in gpu_done.values()
                                  if t < cpu_done[0])
        # Sequential GPU stream = row hits; FR-FCFS serves them first.
        assert finished_before_cpu > 24

    def test_bounded_runahead_limits_committed_backlog(self):
        """New arrivals wait O(bursts), not O(queue), for a decision."""
        events = EventQueue()
        system = build_baseline_memory(events, DRAMConfig(channels=1))
        flood(system, 64, SourceType.GPU)
        events.run_until(5)      # let the first wake commit its window
        channel = system.channels[0]
        # Pending queue must still hold most of the flood (not committed).
        assert channel.queue_length > 48
