"""Health hooks as port interpositions.

PR 1 attached the watchdog, fault injector and retry ladder by hand-
wrapping ``MemRequest.callback`` inside the NoC (the ``_Flight`` closure
plumbing).  With the timing-port fabric those hooks become *taps* —
:class:`~repro.common.ports.PortTap` stages interposed on the NoC's
request path — which observe the same two points (request accepted
downstream, response unwinding back) without touching the packet's
callback:

* :class:`WatchdogTap` registers every accepted request with the health
  watchdog and retires it when its response unwinds past — so the
  watchdog's view of "in flight" includes time spent queued in a bounded
  link (sustained backpressure is visible as request age).
* :class:`ResilienceTap` owns the fault/retry machinery: it draws the
  injector's request-path latency spike (carried to the link via
  ``metadata``), consults the reply fate on the unwind (drop / delay /
  deliver), arms a per-attempt retry timer, re-injects clones below
  itself, and deduplicates late originals racing their retries so the
  issuer hears exactly once.

Both taps are synchronous: interposing them on an unbounded path adds no
events, preserving PR 1's health-off/watchdog-only bit-identity
guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.events import EventQueue
from repro.common.ports import PortTap, respond
from repro.common.stats import StatGroup
from repro.memory.request import MemRequest

FLIGHT_KEY = "noc_flight"
EXTRA_KEY = "noc_extra"


class WatchdogTap(PortTap):
    """Track/retire every request crossing this tap with the watchdog."""

    def __init__(self, watchdog, name: str = "noc.watchdog") -> None:
        super().__init__(name)
        self.watchdog = watchdog

    def on_request(self, request: MemRequest) -> None:
        if request.complete_time is None:       # guard: already answered
            self.watchdog.track(request)

    def on_response(self, request: MemRequest) -> bool:
        self.watchdog.retire(request)
        return True


@dataclass
class _Flight:
    """Delivery state of one logical request across retry attempts.

    Lives in the request's shared ``metadata`` (original and clones see
    the same dict), so it is garbage-collected with the request — no
    registry to leak or clean up.
    """

    request: MemRequest                 # the original the issuer holds
    delivered: bool = False
    attempts: int = 1
    timer: Optional[object] = None      # the armed timeout Event


class ResilienceTap(PortTap):
    """Fault-injected reply fates + timeout-driven retries, exactly once.

    ``base_latency`` is the downstream link's nominal latency; retry
    timers arm at ``base_latency + spike + deadline_for(attempt)``,
    matching the PR 1 closure implementation tick for tick.
    """

    def __init__(self, events: EventQueue, injector=None, retry=None,
                 base_latency: int = 0, stats: Optional[StatGroup] = None,
                 name: str = "noc.resilience") -> None:
        super().__init__(name)
        self.events = events
        self.injector = injector
        self.retry = retry
        self.base_latency = base_latency
        self.stats = stats or StatGroup(name)

    # -- request path ------------------------------------------------------------

    def _recv_request(self, request: MemRequest) -> bool:
        ok, extra = self._send_attempt(request)
        if not ok:
            return False
        if self.retry is not None:
            flight = _Flight(request=request)
            request.metadata[FLIGHT_KEY] = flight
            self._arm(flight, extra, request.attempt)
        return True

    def _send_attempt(self, request: MemRequest) -> tuple[bool, int]:
        """Offer one attempt downstream; returns (accepted, spike_ticks).

        The injector's latency spike is drawn once per attempt and parked
        in ``metadata`` so (a) a backpressure re-send reuses the same draw
        (RNG streams stay aligned with the accept/reject pattern) and
        (b) the downstream link can consume it during its own receive.
        """
        extra = 0
        if self.injector is not None:
            if EXTRA_KEY not in request.metadata:
                request.metadata[EXTRA_KEY] = \
                    self.injector.noc_extra_latency(request)
            extra = request.metadata[EXTRA_KEY]
        return self.egress.try_send(request), extra

    def _arm(self, flight: _Flight, extra: int, attempt: int) -> None:
        wait = (self.base_latency + extra
                + self.retry.deadline_for(attempt))
        flight.timer = self.events.schedule(wait, self._timeout, flight,
                                            owner="noc.retry")

    # -- response path -----------------------------------------------------------

    def on_response(self, request: MemRequest) -> bool:
        if self.injector is not None:
            fate, delay = self.injector.reply_fate(request)
            if fate == "drop":
                return False        # reply lost; the timeout (if armed)
                                    # re-injects, else the watchdog reports
            if fate == "delay":
                self.events.schedule(delay, self._deliver_late, request,
                                     owner="noc")
                return False
        return self._deliver(request)

    def _deliver_late(self, request: MemRequest) -> None:
        # The unwind was halted when the delay was injected; continue it
        # from this tap's position now (the route above us is intact).
        if self._deliver(request):
            respond(request)

    def _deliver(self, request: MemRequest) -> bool:
        """Resolve one arriving reply; True = let the unwind continue."""
        flight = request.metadata.get(FLIGHT_KEY)
        if flight is None:
            return True                         # no retry armed: pass through
        if flight.delivered:
            self.stats.counter("duplicate_replies").add()
            return False
        flight.delivered = True
        if flight.timer is not None:
            flight.timer.cancel()
            flight.timer = None
        original = flight.request
        if request is not original:
            # A retry clone carried the data back: surface completion on
            # the original and continue up ITS route (the clone's route
            # ends here; the original's still holds the hops above us).
            original.complete_time = request.complete_time
            original.issue_time = request.issue_time
            original.attempt = request.attempt
            respond(original)
            return False
        return True

    def _timeout(self, flight: _Flight) -> None:
        flight.timer = None
        if flight.delivered:
            return
        if flight.attempts > self.retry.max_retries:
            # Out of retries: leave the request in flight for the watchdog
            # to report with its full age and attempt count.
            self.stats.counter("retries_exhausted").add()
            return
        clone = flight.request.clone_for_retry()
        clone.metadata.pop(EXTRA_KEY, None)     # fresh spike per attempt
        ok, extra = self._send_attempt(clone)
        if not ok:
            # Bounded link saturated: repeat this ladder rung once the
            # same deadline passes again instead of burning the attempt.
            self.stats.counter("retries_blocked").add()
            flight.timer = self.events.schedule(
                self.retry.deadline_for(clone.attempt), self._timeout,
                flight, owner="noc.retry")
            return
        flight.attempts += 1
        flight.request.attempt = clone.attempt
        self.stats.counter("retries").add()
        self._arm(flight, extra, clone.attempt)
