"""Watchdog unit tests: lifecycle tracking, deadlines, hang detection."""

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.health.watchdog import Watchdog, WatchdogReport, WatchdogTimeout
from repro.memory.builders import build_baseline_memory
from repro.memory.request import MemRequest, SourceType


def _request(address=0x1000, source=SourceType.CPU, source_id=1,
             callback=None, deadline=None):
    return MemRequest(address=address, size=128, write=False, source=source,
                      source_id=source_id, callback=callback,
                      deadline=deadline)


class TestLifecycle:
    def test_track_and_retire(self):
        events = EventQueue()
        wd = Watchdog(events, request_timeout=1000, check_period=100)
        request = _request()
        wd.track(request)
        assert wd.in_flight == 1
        wd.retire(request)
        assert wd.in_flight == 0
        assert wd.stats.counter("retired").value == 1

    def test_idle_watchdog_lets_queue_drain(self):
        """The check ticker only runs while requests are in flight —
        an armed watchdog must not keep an idle simulation alive."""
        events = EventQueue()
        wd = Watchdog(events, request_timeout=1000, check_period=100)
        request = _request()
        wd.track(request)
        events.schedule(50, wd.retire, request)
        result = events.run(max_events=100)
        assert result.drained
        assert wd.in_flight == 0

    def test_retire_unknown_request_is_noop(self):
        events = EventQueue()
        wd = Watchdog(events, request_timeout=1000, check_period=100)
        wd.retire(_request())
        assert wd.stats.counter("retired").value == 0


class TestTimeouts:
    def test_stuck_request_detected_within_bounded_ticks(self):
        """A request whose reply never arrives is reported — with owner
        and age — no later than timeout + one check period."""
        events = EventQueue()
        wd = Watchdog(events, request_timeout=1000, check_period=100)
        request = _request(address=0xBEEF, source=SourceType.CPU,
                           source_id=2)
        wd.track(request)
        # Keep the clock moving (the hang scenario: unrelated events fire).
        for t in range(0, 3000, 50):
            events.schedule(t, lambda: None)
        with pytest.raises(WatchdogTimeout) as excinfo:
            events.run()
        report = excinfo.value.report
        assert report.kind == "request-timeout"
        assert report.owner == "cpu2"
        assert report.address == 0xBEEF
        assert report.age >= 1000
        assert events.now <= 1000 + 100     # bounded detection latency
        assert "cpu2" in str(excinfo.value)

    def test_per_request_deadline_overrides_default(self):
        events = EventQueue()
        wd = Watchdog(events, request_timeout=100_000, check_period=50)
        wd.track(_request(deadline=200))
        for t in range(0, 1000, 10):
            events.schedule(t, lambda: None)
        with pytest.raises(WatchdogTimeout):
            events.run()
        assert events.now <= 300

    def test_on_timeout_collects_instead_of_raising(self):
        events = EventQueue()
        reports: list[WatchdogReport] = []
        wd = Watchdog(events, request_timeout=500, check_period=100,
                      on_timeout=reports.append)
        wd.track(_request())
        for t in range(0, 2000, 50):
            events.schedule(t, lambda: None)
        result = events.run()
        assert result.drained
        assert len(reports) == 1            # reported once, not per check
        assert wd.reports == reports

    def test_no_progress_stall_detected(self):
        """Livelock: requests keep entering, none retire."""
        events = EventQueue()
        wd = Watchdog(events, request_timeout=100_000, check_period=100,
                      stall_window=1000)
        wd.track(_request())

        def keep_busy(t):
            events.schedule(t, lambda: None)

        for t in range(0, 5000, 50):
            keep_busy(t)
        with pytest.raises(WatchdogTimeout) as excinfo:
            events.run()
        assert excinfo.value.report.kind == "no-progress"
        assert events.now <= 1000 + 100


class TestStandaloneAttachment:
    def test_memory_system_attach_watchdog(self):
        """Standalone (no-NoC) runs track lifecycles at the memory
        ingress; a serviced request retires normally."""
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        wd = Watchdog(events, request_timeout=100_000, check_period=1000)
        memory.attach_watchdog(wd)
        done = []
        memory.submit(_request(callback=done.append))
        result = events.run()
        assert result.drained
        assert done and done[0].complete_time is not None
        assert wd.in_flight == 0
        assert wd.stats.counter("tracked").value == 1
