"""Figure/table reproduction benchmarks (see EXPERIMENTS.md)."""
