"""Execution-driven vs trace-driven evaluation of the same design change.

The paper's central methodological claim (§1, §5.2.3, Table 1): static
traces "limit the ability to capture intricate system interactions".  This
benchmark quantifies it inside the reproduction, GemDroid-style:

1. record a memory trace from an execution-driven BAS run;
2. *trace-driven*: replay that fixed trace against DTB (DASH) and HMC and
   report what a trace study would report — the change in per-source DRAM
   latency;
3. *execution-driven*: actually run the system under DTB and HMC and
   report what really matters — the change in GPU frame time, app frame
   time and display service, none of which a replay can even measure.

Shape to hold: the trace-driven latency deltas do not predict the
execution-driven outcomes (missing CPU->GPU dependency, display
abort/retry feedback and load-dependent traffic timing).
"""

import pytest

from benchmarks.conftest import run_once
from repro.common.events import EventQueue
from repro.common.config import DRAMConfig
from repro.harness.case_study1 import CS1Config, run_cs1, _cs1_gpu
from repro.harness.report import format_table
from repro.harness.scenes import SceneSession
from repro.memory.builders import build_memory_by_name
from repro.memory.request import SourceType
from repro.soc.soc import EmeraldSoC, SoCRunConfig
from repro.soc.tracedriven import TraceReplayer, record_soc_trace

MODEL = "M2"
CONFIGS = ("DTB", "HMC")


def execution_run(config_name, cs1):
    return run_cs1(MODEL, config_name, "high", cs1)


def test_trace_vs_execution(benchmark):
    cs1 = CS1Config(num_frames=4)

    def run():
        # Execution-driven truth, including the recorded baseline.
        session = SceneSession("cube", cs1.width, cs1.height,
                               texture_size=cs1.texture_size)
        base_config = SoCRunConfig(
            width=cs1.width, height=cs1.height, num_frames=cs1.num_frames,
            memory_config="BAS",
            dram=DRAMConfig(channels=cs1.channels,
                            data_rate_mbps=cs1.high_rate_mbps),
            gpu=_cs1_gpu(),
            gpu_frame_period_ticks=cs1.gpu_frame_period_ticks,
            display_period_ticks=cs1.display_period_ticks,
            cpu_work_per_frame=cs1.cpu_work_per_frame,
            cpu_fixed_ticks=cs1.cpu_fixed_ticks)
        soc = EmeraldSoC(base_config, session.frame,
                         session.framebuffer_address)
        trace = record_soc_trace(soc)
        bas = soc.run()
        execution = {"BAS": bas}
        for name in CONFIGS:
            execution[name] = execution_run(name, cs1)

        # Trace-driven study of the same changes.
        replays = {}
        for name in ("BAS",) + CONFIGS:
            events = EventQueue()
            memory, dash_state = build_memory_by_name(
                name, events,
                DRAMConfig(channels=cs1.channels,
                           data_rate_mbps=cs1.high_rate_mbps))
            if dash_state is not None:
                dash_state.register_ip(SourceType.GPU,
                                       cs1.gpu_frame_period_ticks)
                dash_state.register_ip(SourceType.DISPLAY,
                                       cs1.display_period_ticks)
            replays[name] = TraceReplayer(trace).replay(
                events, memory, dash_state=dash_state,
                gpu_period=cs1.gpu_frame_period_ticks,
                display_period=cs1.display_period_ticks)
        return execution, replays

    execution, replays = run_once(benchmark, run)

    rows = []
    for name in ("BAS",) + CONFIGS:
        exe = execution[name]
        rep = replays[name]
        rows.append([
            name,
            rep.mean_latency["gpu"] / replays["BAS"].mean_latency["gpu"],
            exe.mean_gpu_time / execution["BAS"].mean_gpu_time,
            exe.mean_total_time / execution["BAS"].mean_total_time,
            exe.display_aborted,
            rep.mean_latency["cpu"] / replays["BAS"].mean_latency["cpu"],
        ])
    print()
    print(format_table(
        ["config", "trace:gpu_lat", "exec:gpu_time", "exec:frame_time",
         "exec:disp_aborts", "trace:cpu_lat"],
        rows,
        title=f"Trace-driven prediction vs execution-driven truth "
              f"({MODEL}, high load; ratios vs BAS)"))

    # Shape checks: the two methodologies disagree materially.
    trace_gpu = {n: replays[n].mean_latency["gpu"]
                 / replays["BAS"].mean_latency["gpu"] for n in CONFIGS}
    exec_gpu = {n: execution[n].mean_gpu_time
                / execution["BAS"].mean_gpu_time for n in CONFIGS}
    divergence = {n: abs(trace_gpu[n] - exec_gpu[n]) for n in CONFIGS}
    print(f"per-config |trace - execution| divergence: "
          f"{ {n: round(d, 2) for n, d in divergence.items()} }")
    assert max(divergence.values()) > 0.25, \
        "trace-driven latency ratios should fail to predict the " \
        "execution-driven frame-time ratios (the paper's §5.2.3 point)"
    # And the feedback-only phenomena are invisible to the replay: the
    # execution-driven runs show display aborts/retries under load.
    assert any(execution[n].display_aborted != execution["BAS"].display_aborted
               for n in CONFIGS) or execution["BAS"].display_aborted > 0
