"""Fault injection: config parsing, determinism, NoC retry recovery, and
the ISSUE acceptance scenarios (deadlock-vs-retry on a full-system run)."""

import numpy as np
import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.health import (FaultConfig, FaultInjector, HealthConfig,
                          RetryConfig)
from repro.health.watchdog import Watchdog, WatchdogTimeout
from repro.memory.builders import build_baseline_memory
from repro.memory.request import MemRequest, SourceType
from repro.soc.noc import SystemNoC
from tests.health.full_system import build_soc


class TestFaultConfigParse:
    def test_parse_full_spec(self):
        config = FaultConfig.parse(
            "dram_drop=0.01, noc_spike=0.05, noc_spike_ticks=300, seed=9")
        assert config.dram_drop == 0.01
        assert config.noc_spike == 0.05
        assert config.noc_spike_ticks == 300
        assert config.seed == 9
        assert config.active()

    def test_parse_empty_is_inactive(self):
        assert not FaultConfig.parse("").active()

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultConfig.parse("cosmic_ray=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            FaultConfig.parse("dram_drop=often")

    def test_tick_fields_are_integers(self):
        config = FaultConfig.parse("dram_delay_ticks=750")
        assert config.dram_delay_ticks == 750
        assert isinstance(config.dram_delay_ticks, int)


def _request(i=0):
    return MemRequest(address=0x100 * i, size=64, write=False,
                      source=SourceType.GPU)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        config = FaultConfig(seed=5, dram_drop=0.3, dram_delay=0.3,
                             noc_spike=0.3)
        a, b = FaultInjector(config), FaultInjector(config)
        for i in range(200):
            assert a.reply_fate(_request(i)) == b.reply_fate(_request(i))
            assert (a.noc_extra_latency(_request(i))
                    == b.noc_extra_latency(_request(i)))

    def test_fault_classes_use_independent_streams(self):
        """Enabling the spike stream must not change which replies drop."""
        drop_only = FaultInjector(FaultConfig(seed=5, dram_drop=0.3))
        drop_and_spike = FaultInjector(
            FaultConfig(seed=5, dram_drop=0.3, noc_spike=0.5))
        fates = []
        for injector in (drop_only, drop_and_spike):
            seq = []
            for i in range(200):
                injector.noc_extra_latency(_request(i))
                seq.append(injector.reply_fate(_request(i))[0])
            fates.append(seq)
        assert fates[0] == fates[1]


class TestInjectorRNGCheckpointing:
    def decisions(self, injector, start, count=50):
        out = []
        for i in range(start, start + count):
            out.append((injector.reply_fate(_request(i)),
                        injector.noc_extra_latency(_request(i)),
                        injector.display_underrun_now()))
        return out

    def test_state_roundtrip_resumes_mid_stream(self):
        """A fresh injector restored from a mid-run snapshot reproduces the
        original's *subsequent* decisions — the property a resumed run
        needs to replay the uninterrupted run's fault pattern."""
        import json

        config = FaultConfig(seed=11, dram_drop=0.3, dram_delay=0.3,
                             noc_spike=0.3, display_underrun=0.3)
        original = FaultInjector(config)
        self.decisions(original, 0)                 # advance all 4 streams
        state = original.rng_state()
        # The snapshot must survive a JSON round trip (checkpoint format).
        state = json.loads(json.dumps(state))
        resumed = FaultInjector(config)
        resumed.restore_rng(state)
        assert (self.decisions(original, 50)
                == self.decisions(resumed, 50))

    def test_unrestored_injector_diverges(self):
        """Control: without the restore, a resumed run replays the stream
        from the start and sees a different fault pattern."""
        config = FaultConfig(seed=11, dram_drop=0.3, dram_delay=0.3,
                             noc_spike=0.3, display_underrun=0.3)
        original = FaultInjector(config)
        self.decisions(original, 0)
        fresh = FaultInjector(config)
        assert (self.decisions(original, 50)
                != self.decisions(fresh, 50))

    def test_restore_tolerates_missing_streams(self):
        """Old snapshots may predate a stream; restore is best-effort per
        stream rather than all-or-nothing."""
        injector = FaultInjector(FaultConfig(seed=3, dram_drop=0.5))
        partial = {"drop": injector.rng_state()["drop"]}
        FaultInjector(FaultConfig(seed=3, dram_drop=0.5)).restore_rng(
            partial)

    def test_state_covers_every_stream(self):
        state = FaultInjector(FaultConfig()).rng_state()
        assert sorted(state) == ["delay", "display", "drop", "spike"]


class _ScriptedInjector:
    """Duck-typed injector with a predetermined reply-fate sequence."""

    def __init__(self, fates):
        self._fates = list(fates)

    def noc_extra_latency(self, request):
        return 0

    def reply_fate(self, request):
        return self._fates.pop(0) if self._fates else ("deliver", 0)

    def display_underrun_now(self):
        return False


class TestNoCRetryPath:
    def _noc(self, events, injector, retry):
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        return SystemNoC(events, memory, latency=5, injector=injector,
                         retry=retry)

    def test_dropped_reply_recovered_by_retry(self):
        events = EventQueue()
        noc = self._noc(events, _ScriptedInjector([("drop", 0)]),
                        RetryConfig(timeout=500, max_retries=2))
        done = []
        request = MemRequest(address=0x40, size=64, write=False,
                             source=SourceType.CPU, callback=done.append)
        noc.submit(request)
        result = events.run()
        assert result.drained
        assert done == [request]                  # original object delivered
        assert done[0].complete_time is not None  # clone's state copied back
        assert done[0].attempt == 1               # one retry was needed
        assert noc.stats.counter("retries").value == 1

    def test_delayed_duplicate_delivered_exactly_once(self):
        """Original reply delayed past the retry deadline: the retry's reply
        and the late original both arrive — the issuer hears once."""
        events = EventQueue()
        noc = self._noc(events, _ScriptedInjector([("delay", 5_000)]),
                        RetryConfig(timeout=500, max_retries=2))
        done = []
        noc.submit(MemRequest(address=0x40, size=64, write=False,
                              source=SourceType.CPU, callback=done.append))
        result = events.run()
        assert result.drained
        assert len(done) == 1
        assert noc.stats.counter("duplicate_replies").value == 1

    def test_exhausted_retries_left_for_watchdog(self):
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=1))
        wd = Watchdog(events, request_timeout=50_000, check_period=1_000)
        injector = _ScriptedInjector([("drop", 0)] * 10)    # every attempt
        noc = SystemNoC(events, memory, latency=5, watchdog=wd,
                        injector=injector,
                        retry=RetryConfig(timeout=500, max_retries=2,
                                          backoff=2.0))
        noc.submit(MemRequest(address=0xDEAD, size=64, write=False,
                              source=SourceType.CPU, source_id=0))
        with pytest.raises(WatchdogTimeout) as excinfo:
            events.run()
        assert noc.stats.counter("retries").value == 2
        assert noc.stats.counter("retries_exhausted").value == 1
        assert excinfo.value.report.address == 0xDEAD
        assert excinfo.value.report.attempt == 2


class TestWatchdogRetryCoherence:
    def test_ladder_ticks(self):
        retry = RetryConfig(timeout=1_000, max_retries=3, backoff=2.0)
        assert retry.ladder_ticks() == 1_000 + 2_000 + 4_000 + 8_000

    def test_soc_watchdog_outlasts_retry_ladder(self):
        """With both armed, the effective watchdog deadline must cover the
        whole retry ladder — else the watchdog reports requests the NoC is
        still recovering (seen with the CLI defaults)."""
        retry = RetryConfig()        # ladder 375k > default watchdog 150k
        health = HealthConfig(watchdog=True, retry=retry)
        soc = build_soc(num_frames=1, health=health)
        assert soc.watchdog.request_timeout >= retry.ladder_ticks()

    def test_soc_watchdog_timeout_unchanged_without_retries(self):
        health = HealthConfig(watchdog=True, watchdog_timeout=42_000)
        soc = build_soc(num_frames=1, health=health)
        assert soc.watchdog.request_timeout == 42_000


INJECTION = FaultConfig(seed=11, dram_drop=0.05)


@pytest.mark.full_system
class TestAcceptanceScenarios:
    """The ISSUE acceptance criteria, end to end on the tiny SoC."""

    def test_deadlock_detected_not_hung(self):
        """Replies suppressed, retries disabled: the watchdog turns a hang
        into a bounded-time report naming the owner and request age."""
        health = HealthConfig(watchdog=True, watchdog_timeout=30_000,
                              watchdog_check_period=1_000, faults=INJECTION)
        soc = build_soc(num_frames=1, health=health)
        with pytest.raises(WatchdogTimeout) as excinfo:
            soc.run()
        report = excinfo.value.report
        assert report.owner          # names the stuck component
        # Bounded detection: one check period past the deadline, at most.
        assert 30_000 <= report.age <= 30_000 + 2_000
        assert soc.injector.stats.counter("replies_dropped").value >= 1

    def test_same_injection_recovers_with_retries(self, clean_run):
        """Same faults + retries: the frame completes with an identical
        framebuffer and only degraded timing."""
        clean_results, clean_fb = clean_run
        health = HealthConfig(watchdog=True, faults=INJECTION,
                              retry=RetryConfig(timeout=2_000, max_retries=4))
        soc = build_soc(num_frames=1, health=health)
        results = soc.run()
        assert soc.loop.finished
        assert results.noc_retries >= 1
        assert results.watchdog_reports == 0
        assert np.array_equal(soc.gpu.fb.color, clean_fb)
        assert results.end_tick >= clean_results.end_tick   # timing only

    def test_injected_runs_are_deterministic(self):
        """Same seed + same injection config => identical stats."""
        def injected_run():
            health = HealthConfig(
                watchdog=True, faults=INJECTION,
                retry=RetryConfig(timeout=2_000, max_retries=4))
            soc = build_soc(num_frames=1, health=health)
            results = soc.run()
            return results, soc.gpu.fb.color.copy()

        first, fb_first = injected_run()
        second, fb_second = injected_run()
        assert first.end_tick == second.end_tick
        assert first.noc_retries == second.noc_retries
        assert first.mean_gpu_time == second.mean_gpu_time
        assert first.dram_bytes == second.dram_bytes
        assert np.array_equal(fb_first, fb_second)

    def test_health_off_paths_bit_identical(self, clean_run):
        """Watchdog-only runs (no injection) must not perturb the model:
        every timing stat matches the health-free baseline exactly."""
        clean_results, clean_fb = clean_run
        soc = build_soc(num_frames=1,
                        health=HealthConfig(watchdog=True))
        results = soc.run()
        assert results.end_tick == clean_results.end_tick
        assert results.mean_gpu_time == clean_results.mean_gpu_time
        assert results.dram_bytes == clean_results.dram_bytes
        assert results.row_hit_rate == clean_results.row_hit_rate
        assert np.array_equal(soc.gpu.fb.color, clean_fb)
