"""Fastpath measurement discipline: reproducible benchmark artifacts.

The fastpath layer (DESIGN.md §12) is only allowed to exist because it is
*measured*: every claimed speedup is pinned to a JSON artifact produced by
this module, and every artifact embeds the bit-identity fingerprint that
proves the optimized run computed the same simulation.  Two reference
workloads are tracked:

* ``fig14`` — the case-study-I unit behind Fig. 14 (M1 under the BAS
  memory system, high-load scenario): DRAM-scheduler-bound, the worst
  case for the event kernel and the FR-FCFS scan.
* ``pipeline`` — one :class:`~repro.gpu.gpu.EmeraldGPU` teapot frame:
  shader/raster-bound, the worst case for per-op dispatch.

Each benchmark runs the workload twice — fastpath on, fastpath off — in
that order, compares the identity fingerprint (end tick / cycles, events
fired, framebuffer CRC), and reports wall time, events/sec and (for the
GPU frame) fragments/sec plus the on-vs-off speedup.  ``scale="default"``
additionally reports the speedup against :data:`SEED_BASELINE`, the wall
time recorded for the same workload at the pre-fastpath seed commit.

Machine-independence: the on-vs-off ratio and the identity fingerprint
are meaningful on any host — CI gates on those (:func:`gate`).  The
seed-baseline speedup is only meaningful on hardware comparable to the
machine the baseline was recorded on; it is reported, never gated.

Entry points: ``python -m repro bench --summary`` (writes
``BENCH_fig14.json`` / ``BENCH_pipeline.json``), the CI smoke job
(``--scale smoke --gate``), and the ``benchmarks/`` pytest modules.
"""

from __future__ import annotations

import json
import platform
import time
import zlib
from pathlib import Path
from typing import Callable, Optional

from repro import fastpath

#: Wall times recorded for the ``scale="default"`` workloads at the seed
#: commit (the tree immediately before the fastpath layer landed), same
#: timing boundary (run only, assembly excluded), same machine as the
#: committed BENCH_*.json artifacts.  ``events_fired`` doubles as an
#: identity check: the fastpath must fire exactly as many events as the
#: seed did.
SEED_BASELINE = {
    "commit": "f9eb076",
    "fig14": {"wall_s": 2.875, "end_tick": 1_357_432,
              "events_fired": 274_152},
    "pipeline": {"wall_s": 1.914, "cycles": 35_612,
                 "events_fired": 125_678, "fb_crc": 2197508556},
}

BENCHMARKS = ("fig14", "pipeline")
SCALES = ("default", "smoke", "micro")

#: Identity keys compared between the two modes, per benchmark.
_IDENTITY = {
    "fig14": ("end_tick", "events_fired", "fb_crc", "row_hit_rate",
              "mean_gpu_time"),
    "pipeline": ("cycles", "fragments", "events_fired", "fb_crc",
                 "dram_bytes"),
}


def _timed(fn: Callable):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _host() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _fig14_config(scale: str):
    from repro.harness.case_study1 import CS1Config

    if scale == "default":
        # The benchmarks/conftest.py quick-mode operating point.
        return CS1Config(num_frames=4)
    if scale == "smoke":
        # The CI trace-smoke operating point: seconds, not minutes.
        return CS1Config(width=48, height=36, num_frames=2,
                         texture_size=64,
                         gpu_frame_period_ticks=120_000,
                         display_period_ticks=60_000,
                         cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    if scale == "micro":
        return CS1Config(width=48, height=36, num_frames=1,
                         texture_size=64,
                         gpu_frame_period_ticks=120_000,
                         display_period_ticks=60_000,
                         cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def run_fig14(scale: str = "default") -> dict:
    """Benchmark the Fig. 14 unit (M1 / BAS / high load), on vs off."""
    from repro.harness.case_study1 import make_cs1_soc

    config = _fig14_config(scale)

    def once(fast: bool) -> dict:
        with fastpath.use_fastpath(fast):
            soc = make_cs1_soc("M1", "BAS", "high", config=config)
            wall, results = _timed(soc.run)
        events = soc.events.events_fired
        return {
            "wall_s": round(wall, 4),
            "events_fired": events,
            "events_per_s": round(events / wall, 1),
            "end_tick": results.end_tick,
            "fb_crc": zlib.crc32(soc.gpu.fb.color.tobytes()),
            "row_hit_rate": results.row_hit_rate,
            "mean_gpu_time": results.mean_gpu_time,
        }

    workload = {
        "name": "cs1 M1/BAS/high",
        "width": config.width, "height": config.height,
        "num_frames": config.num_frames,
    }
    return _report("fig14", scale, workload, once)


def run_pipeline(scale: str = "default") -> dict:
    """Benchmark one EmeraldGPU teapot frame (shader/raster bound)."""
    from repro.common.config import DRAMConfig, GPUConfig
    from repro.common.events import EventQueue
    from repro.gpu.gpu import EmeraldGPU
    from repro.harness.scenes import SceneSession
    from repro.memory.builders import build_baseline_memory

    sizes = {"default": (256, 192), "smoke": (128, 96), "micro": (64, 48)}
    if scale not in sizes:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    width, height = sizes[scale]

    def once(fast: bool) -> dict:
        with fastpath.use_fastpath(fast):
            session = SceneSession("teapot", width, height)
            frame = session.frame(0)
            events = EventQueue()
            memory = build_baseline_memory(events, DRAMConfig(channels=2))
            gpu = EmeraldGPU(events, GPUConfig(num_clusters=4),
                             width, height, memory=memory)
            wall, stats = _timed(lambda: gpu.run_frame(frame))
        fired = events.events_fired
        return {
            "wall_s": round(wall, 4),
            "events_fired": fired,
            "events_per_s": round(fired / wall, 1),
            "cycles": stats.cycles,
            "fragments": stats.fragments,
            "fragments_per_s": round(stats.fragments / wall, 1),
            "dram_bytes": stats.dram_bytes,
            "fb_crc": zlib.crc32(gpu.fb.color.tobytes()),
        }

    workload = {"name": "gpu teapot frame", "width": width,
                "height": height, "clusters": 4, "channels": 2}
    return _report("pipeline", scale, workload, once)


def _report(name: str, scale: str, workload: dict, once: Callable) -> dict:
    on = once(True)
    off = once(False)
    keys = _IDENTITY[name]
    identity = {key: on[key] for key in keys}
    identical = all(on[key] == off[key] for key in keys)
    seed = SEED_BASELINE[name] if scale == "default" else None
    seed_wall = seed.get("wall_s") if seed else None
    return {
        "benchmark": name,
        "scale": scale,
        "workload": workload,
        "fastpath_on": on,
        "fastpath_off": off,
        "identical": identical,
        "identity": identity,
        "speedup_on_vs_off": round(off["wall_s"] / on["wall_s"], 3),
        "seed_baseline": dict(seed, commit=SEED_BASELINE["commit"])
        if seed else None,
        "speedup_vs_seed": round(seed_wall / on["wall_s"], 3)
        if seed_wall else None,
        "host": _host(),
        "generated_by": "python -m repro bench",
    }


def gate(report: dict, min_on_off: float = 0.9) -> list:
    """Machine-independent pass/fail checks for one report.

    Returns a list of failure strings (empty = pass).  Identity is a hard
    requirement; the speed check only fails when fastpath-on is *slower*
    than fastpath-off beyond the noise allowance (``min_on_off``), since
    absolute wall times vary across hosts.
    """
    failures = []
    name = report["benchmark"]
    if not report["identical"]:
        keys = _IDENTITY[name]
        diffs = [key for key in keys
                 if report["fastpath_on"][key] != report["fastpath_off"][key]]
        failures.append(f"{name}: fastpath on/off runs differ on "
                        f"{', '.join(diffs)} — optimization changed the model")
    if report["speedup_on_vs_off"] < min_on_off:
        failures.append(
            f"{name}: fastpath-on is slower than fastpath-off "
            f"({report['fastpath_on']['wall_s']:.3f}s vs "
            f"{report['fastpath_off']['wall_s']:.3f}s, ratio "
            f"{report['speedup_on_vs_off']:.3f} < {min_on_off})")
    seed = report.get("seed_baseline") or {}
    for key in ("end_tick", "events_fired", "cycles", "fb_crc"):
        expected = seed.get(key)
        if expected is not None and report["identity"].get(key) != expected:
            failures.append(
                f"{name}: {key} {report['identity'][key]} != seed-recorded "
                f"{expected} — the schedule drifted from the seed commit")
    return failures


def artifact_name(report: dict) -> str:
    return f"BENCH_{report['benchmark']}.json"


def write_report(report: dict, out_dir: str = ".") -> Path:
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact_name(report)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def format_summary(report: dict) -> str:
    """Human-readable one-benchmark summary for ``bench --summary``."""
    on, off = report["fastpath_on"], report["fastpath_off"]
    lines = [f"{report['benchmark']} ({report['scale']}): "
             f"{report['workload']['name']} "
             f"{report['workload']['width']}x{report['workload']['height']}"]
    lines.append(f"  {'mode':<12}  {'wall':>8}  {'events/s':>12}"
                 + (f"  {'frags/s':>10}" if "fragments_per_s" in on else ""))
    for label, row in (("fastpath on", on), ("fastpath off", off)):
        extra = (f"  {row['fragments_per_s']:>10,.0f}"
                 if "fragments_per_s" in row else "")
        lines.append(f"  {label:<12}  {row['wall_s']:>7.3f}s  "
                     f"{row['events_per_s']:>12,.0f}{extra}")
    lines.append(f"  identical: {report['identical']}   "
                 f"on vs off: {report['speedup_on_vs_off']:.2f}x"
                 + (f"   vs seed {report['seed_baseline']['commit']}: "
                    f"{report['speedup_vs_seed']:.2f}x"
                    if report["speedup_vs_seed"] else ""))
    return "\n".join(lines)


def run(names=BENCHMARKS, scale: str = "default") -> list:
    runners = {"fig14": run_fig14, "pipeline": run_pipeline}
    return [runners[name](scale) for name in names]
