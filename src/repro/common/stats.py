"""Statistics primitives used across the simulator.

Every model publishes its measurements through these containers so the
benchmark harness can pull uniform numbers out of any component: hit rates,
bandwidth-vs-time series (Figs. 10 and 14), row-buffer locality (Fig. 11),
display service counts (Fig. 13) and so on.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import defaultdict
from typing import Iterable, Optional


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RateStat:
    """A numerator/denominator pair, e.g. cache hits over accesses."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.hits: int = 0
        self.total: int = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def misses(self) -> int:
        return self.total - self.hits

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:
        return f"RateStat({self.name}: {self.hits}/{self.total})"


class TimeSeries:
    """Accumulates (time, value) samples binned into fixed windows.

    Used for bandwidth-over-time plots: callers ``add(now, bytes)`` and the
    series accumulates per-window sums which :meth:`series` returns as
    (window_start, sum) pairs.
    """

    def __init__(self, window: int, name: str = "") -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.name = name
        self.window = window
        self._bins: dict[int, float] = defaultdict(float)

    def add(self, time: int, value: float) -> None:
        self._bins[time // self.window] += value

    def series(self, until: Optional[int] = None) -> list[tuple[int, float]]:
        """Dense (window_start_time, sum) pairs from t=0 through the data."""
        if not self._bins:
            return []
        last_bin = max(self._bins)
        if until is not None:
            last_bin = max(last_bin, until // self.window)
        return [(b * self.window, self._bins.get(b, 0.0)) for b in range(last_bin + 1)]

    def total(self) -> float:
        return sum(self._bins.values())

    def reset(self) -> None:
        self._bins.clear()


class Histogram:
    """A value histogram with mean/percentile helpers.

    By default every sample is retained.  With ``reservoir`` set, at most
    that many samples are kept using reservoir sampling (Vitter's
    algorithm R) so unbounded runs stay bounded in memory: count, mean,
    minimum and maximum remain exact (tracked as running aggregates);
    percentiles are estimated from the reservoir.  The sampling RNG is
    seeded from the histogram's name, so runs stay deterministic.
    """

    def __init__(self, name: str = "",
                 reservoir: Optional[int] = None) -> None:
        if reservoir is not None and reservoir <= 0:
            raise ValueError(f"reservoir must be positive, got {reservoir}")
        self.name = name
        self.reservoir = reservoir
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng = (random.Random(zlib.crc32(name.encode()))
                     if reservoir is not None else None)

    def record(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self.reservoir is None or len(self._values) < self.reservoir:
            self._values.append(value)
            return
        slot = self._rng.randrange(self._count)
        if slot < self.reservoir:
            self._values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100].

        Exact when unbounded; a reservoir estimate when capped.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def values(self) -> list[float]:
        """Retained samples (all of them, or the reservoir when capped)."""
        return list(self._values)

    def reset(self) -> None:
        self._values.clear()
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        if self.reservoir is not None:
            self._rng = random.Random(zlib.crc32(self.name.encode()))


class StatGroup:
    """A named bag of statistics; models expose one per component.

    >>> g = StatGroup("l1d")
    >>> g.counter("accesses").add()
    >>> g.dump()["accesses"]
    1
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._rates: dict[str, RateStat] = {}
        self._series: dict[str, TimeSeries] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(f"{self.name}.{name}")
        return self._counters[name]

    def rate(self, name: str) -> RateStat:
        if name not in self._rates:
            self._rates[name] = RateStat(f"{self.name}.{name}")
        return self._rates[name]

    def time_series(self, name: str, window: int = 1000) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(window, f"{self.name}.{name}")
        return self._series[name]

    def histogram(self, name: str,
                  reservoir: Optional[int] = None) -> Histogram:
        """Get or create a histogram; ``reservoir`` applies at creation."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(f"{self.name}.{name}",
                                               reservoir=reservoir)
        return self._histograms[name]

    def dump(self) -> dict[str, float]:
        """Flatten all scalars (counters, rates, histogram means, time-series
        totals) to a dict."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, rate in self._rates.items():
            out[f"{name}.rate"] = rate.rate
            out[f"{name}.total"] = rate.total
        for name, hist in self._histograms.items():
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.count"] = hist.count
        for name, series in self._series.items():
            out[f"{name}.total"] = series.total()
        return out

    def reset(self) -> None:
        for stat in (
            list(self._counters.values())
            + list(self._rates.values())
            + list(self._series.values())
            + list(self._histograms.values())
        ):
            stat.reset()


def pearson(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Used by the Section 3.4 accuracy study to report simulator-vs-reference
    correlation, exactly as the paper does.
    """
    x = list(xs)
    y = list(ys)
    if len(x) != len(y):
        raise ValueError("sequences must have equal length")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two samples")
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    # sqrt each variance separately (their product can underflow to 0 for
    # denormal inputs) and clamp against floating-point excursions.
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return 0.0
    return max(-1.0, min(1.0, cov / denominator))


def mean_abs_relative_error(reference: Iterable[float], measured: Iterable[float]) -> float:
    """Mean of |reference - measured| / reference (the paper's error metric)."""
    ref = list(reference)
    mes = list(measured)
    if len(ref) != len(mes):
        raise ValueError("sequences must have equal length")
    if not ref:
        raise ValueError("need at least one sample")
    errors = []
    for r, m in zip(ref, mes):
        if r == 0:
            raise ValueError("reference value of zero makes relative error undefined")
        errors.append(abs(r - m) / abs(r))
    return sum(errors) / len(errors)
