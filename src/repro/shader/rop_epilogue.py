"""In-shader raster operations: depth test and blending epilogues.

Emerald performs depth testing and blending *inside* the fragment shader
program (paper §3.3.1, stages L/M/N) rather than in atomic units by the
memory controllers; the TC stage guarantees only one tile per screen
location is in flight, which makes the read-modify-write race-free.

:func:`attach_rop` clones a compiled fragment program and splices in:

* **Early-Z** (stage L) — when the shader neither discards nor writes
  depth: a prologue that reads the depth buffer, compares, and discards
  dead fragments before the expensive shading work.
* **Late-Z** (stage N) — otherwise: the same sequence after the shader
  body, using the shader's own depth output when present.
* **Blend** (stage M) — when blending is enabled: read the framebuffer,
  apply the configured source/destination factors, write back.  Without
  blending, a plain framebuffer write.

The resulting program is what the SIMT cores actually run, so depth/color
traffic shows up in the instruction and memory trace like any other access.
"""

from __future__ import annotations

import copy

from repro.gl.state import BlendFactor, DepthFunc, GLState, StencilOp
from repro.shader.isa import Imm, Instruction, Opcode, Pred, Reg
from repro.shader.program import Program

_DEPTH_SETP = {
    DepthFunc.LESS: Opcode.SETP_LT,
    DepthFunc.LEQUAL: Opcode.SETP_LE,
    DepthFunc.GREATER: Opcode.SETP_GT,
    DepthFunc.GEQUAL: Opcode.SETP_GE,
    DepthFunc.EQUAL: Opcode.SETP_EQ,
    DepthFunc.NOTEQUAL: Opcode.SETP_NE,
}


def uses_late_z(program: Program, state: GLState) -> bool:
    """Late-Z is forced when the shader discards or writes gl_FragDepth —
    or when stencil testing must precede the depth write."""
    return (program.has_discard or program.writes_depth
            or state.stencil_test)


def attach_rop(program: Program, state: GLState) -> Program:
    """Return a copy of ``program`` with the ROP epilogue spliced in.

    The input program must be a finalized fragment program whose epilogue
    ends with ``ST_OUT`` slots 0-3 (color) and optionally 4 (depth), as
    produced by :func:`repro.shader.compiler.compile_shader`.
    """
    if program.stage != "fragment":
        raise ValueError("ROP epilogues apply to fragment programs only")

    rop = copy.deepcopy(program)
    rop.name = f"{program.name}+rop"
    # Drop the trailing EXIT; we re-append one at the end.
    if rop.instructions and rop.instructions[-1].op is Opcode.EXIT:
        rop.instructions.pop()

    next_reg = rop.num_regs
    next_pred = rop.num_preds

    def fresh_reg() -> Reg:
        nonlocal next_reg
        reg = Reg(next_reg)
        next_reg += 1
        return reg

    def fresh_pred() -> Pred:
        nonlocal next_pred
        pred = Pred(next_pred)
        next_pred += 1
        return pred

    # The fragment's interpolated depth arrives via the hidden varying
    # "frag_z" (slot allocated here if the shader didn't already use it).
    if "frag_z" in rop.varyings:
        z_base, _ = rop.varyings.lookup("frag_z")
    else:
        z_base = rop.varyings.allocate("frag_z", 1)

    def depth_test_code(depth_src) -> list[Instruction]:
        """ZREAD + compare + predicated DISCARD (+ optional ZWRITE)."""
        code = []
        if state.depth_func is DepthFunc.NEVER:
            return [Instruction(Opcode.DISCARD)]
        if state.depth_func is not DepthFunc.ALWAYS:
            old = fresh_reg()
            keep = fresh_pred()
            code.append(Instruction(Opcode.ZREAD, dsts=[old]))
            code.append(Instruction(_DEPTH_SETP[state.depth_func],
                                    dsts=[keep], srcs=[depth_src, old]))
            code.append(Instruction(Opcode.DISCARD, guard=keep,
                                    guard_sense=False))
        if state.depth_write:
            code.append(Instruction(Opcode.ZWRITE, srcs=[depth_src]))
        return code

    late_z = uses_late_z(rop, state)

    if state.depth_test and not late_z:
        # Early-Z prologue: interpolated depth is ready before shading.
        # Branch targets in the body must shift by the prologue length.
        z_reg = fresh_reg()
        prologue = [Instruction(Opcode.LD_VARY, dsts=[z_reg], slot=z_base)]
        prologue.extend(depth_test_code(z_reg))
        for instr in rop.instructions:
            if instr.target is not None:
                instr.target += len(prologue)
        rop.instructions[:0] = prologue

    # Locate the color ST_OUTs the compiler emitted; their sources are the
    # final color registers.  Removing instructions shifts every later pc,
    # so branch targets are remapped through an old->new index map.
    color_src: list = [Imm(0.0)] * 4
    depth_out_src = None
    remaining = []
    index_map: dict[int, int] = {}
    for old_pc, instr in enumerate(rop.instructions):
        if instr.op is Opcode.ST_OUT and instr.slot is not None:
            if instr.slot < Program.COLOR_SLOTS:
                color_src[instr.slot] = instr.srcs[0]
                continue
            if instr.slot == Program.DEPTH_SLOT:
                depth_out_src = instr.srcs[0]
                continue
        index_map[old_pc] = len(remaining)
        remaining.append(instr)

    def remap(old_target: int) -> int:
        # A target pointing at (or past) a removed instruction maps to the
        # next surviving one; past-the-end maps to the epilogue start.
        for pc in range(old_target, len(rop.instructions)):
            if pc in index_map:
                return index_map[pc]
        return len(remaining)

    for instr in remaining:
        if instr.target is not None:
            instr.target = remap(instr.target)
    rop.instructions = remaining

    epilogue: list[Instruction] = []

    stencil_reg = None
    if state.stencil_test:
        # Stencil test precedes the depth test (pipeline stage J order):
        # compare ref against the stored value; failures are discarded
        # before any depth traffic.
        stencil_reg = fresh_reg()
        epilogue.append(Instruction(Opcode.SREAD, dsts=[stencil_reg]))
        if state.stencil_func is DepthFunc.NEVER:
            epilogue.append(Instruction(Opcode.DISCARD))
        elif state.stencil_func is not DepthFunc.ALWAYS:
            keep = fresh_pred()
            epilogue.append(Instruction(
                _DEPTH_SETP[state.stencil_func], dsts=[keep],
                srcs=[Imm(float(state.stencil_ref)), stencil_reg]))
            epilogue.append(Instruction(Opcode.DISCARD, guard=keep,
                                        guard_sense=False))

    if state.depth_test and late_z:
        if depth_out_src is None:
            z_reg = fresh_reg()
            epilogue.append(Instruction(Opcode.LD_VARY, dsts=[z_reg],
                                        slot=z_base))
            depth_src = z_reg
        else:
            depth_src = depth_out_src
        epilogue.extend(depth_test_code(depth_src))

    if state.stencil_test and state.stencil_pass_op is not StencilOp.KEEP:
        # Fragments alive here passed both tests: apply the pass op.
        op = state.stencil_pass_op
        if op is StencilOp.REPLACE:
            epilogue.append(Instruction(
                Opcode.SWRITE, srcs=[Imm(float(state.stencil_ref))]))
        elif op is StencilOp.ZERO:
            epilogue.append(Instruction(Opcode.SWRITE, srcs=[Imm(0.0)]))
        else:
            new_value = fresh_reg()
            if op is StencilOp.INCR:
                epilogue.append(Instruction(Opcode.ADD, dsts=[new_value],
                                            srcs=[stencil_reg, Imm(1.0)]))
            elif op is StencilOp.DECR:
                epilogue.append(Instruction(Opcode.SUB, dsts=[new_value],
                                            srcs=[stencil_reg, Imm(1.0)]))
            else:   # INVERT (8-bit complement)
                epilogue.append(Instruction(Opcode.SUB, dsts=[new_value],
                                            srcs=[Imm(255.0), stencil_reg]))
            epilogue.append(Instruction(Opcode.SWRITE, srcs=[new_value]))

    if state.blend:
        dst_regs = [fresh_reg() for _ in range(4)]
        epilogue.append(Instruction(Opcode.FB_READ, dsts=dst_regs))
        src_alpha = color_src[3]
        src_factor = _factor_operand(state.blend_src, src_alpha, epilogue,
                                     fresh_reg)
        dst_factor = _factor_operand(state.blend_dst, src_alpha, epilogue,
                                     fresh_reg)
        out_regs = []
        for i in range(4):
            # out = src*src_factor + dst*dst_factor
            src_term = fresh_reg()
            epilogue.append(Instruction(Opcode.MUL, dsts=[src_term],
                                        srcs=[color_src[i], src_factor]))
            out = fresh_reg()
            epilogue.append(Instruction(Opcode.MAD, dsts=[out],
                                        srcs=[dst_regs[i], dst_factor,
                                              src_term]))
            out_regs.append(out)
        epilogue.append(Instruction(Opcode.FB_WRITE, srcs=out_regs))
    else:
        epilogue.append(Instruction(Opcode.FB_WRITE, srcs=color_src))

    rop.instructions.extend(epilogue)
    rop.instructions.append(Instruction(Opcode.EXIT))
    return rop.finalize()


def _factor_operand(factor: BlendFactor, src_alpha, epilogue: list,
                    fresh_reg) -> object:
    """Materialize a blend factor as an operand (emits code if needed)."""
    if factor is BlendFactor.ZERO:
        return Imm(0.0)
    if factor is BlendFactor.ONE:
        return Imm(1.0)
    if factor is BlendFactor.SRC_ALPHA:
        return src_alpha
    one_minus = fresh_reg()
    epilogue.append(Instruction(Opcode.SUB, dsts=[one_minus],
                                srcs=[Imm(1.0), src_alpha]))
    return one_minus
