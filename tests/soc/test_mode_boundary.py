"""Functional <-> detailed checkpoint restores across topology presets.

The mode-switch contract (DESIGN.md §13) says a snapshot is pure
architectural state, restorable by either engine regardless of which one
wrote it.  This matrix pins that across the four memory-organization
presets and across the fastpath on/off boundary — a snapshot captured
with the compiled hot paths enabled must resume bit-identically with
them disabled, and vice versa (the same guarantee crash recovery needs
when a resumed host has a different fastpath setting).
"""

from dataclasses import replace

import pytest

from repro.fastpath import use_fastpath
from repro.harness.scenes import SceneSession
from repro.health import HealthConfig
from repro.health.recovery import resume_run
from repro.memory.builders import MEMORY_CONFIG_NAMES
from repro.sampling.ffwd import switch_fingerprint
from repro.sampling.functional import FunctionalSim
from repro.soc.checkpoint import GraphicsCheckpoint
from repro.soc.soc import EmeraldSoC

from tests.health.full_system import HEIGHT, WIDTH, tiny_config

BOUNDARY = 2      # switch after frame 2
TOTAL = 3         # one detailed frame after the switch


def preset_config(name, num_frames=TOTAL):
    return replace(tiny_config(num_frames=num_frames), memory_config=name)


def session():
    return SceneSession("cube", WIDTH, HEIGHT)


def functional_checkpoint(config):
    sim = FunctionalSim(config, session().frame, render="none")
    sim.run(BOUNDARY)
    return sim.checkpoint()


def detailed_checkpoint(config):
    boundary_config = replace(
        config, num_frames=BOUNDARY,
        health=HealthConfig(checkpoint_every=BOUNDARY))
    s = session()
    soc = EmeraldSoC(boundary_config, s.frame, s.framebuffer_address)
    soc.run()
    return soc.checkpoints.last


def resume_fingerprint(checkpoint, config):
    s = session()
    soc, results = resume_run(checkpoint, config, s.frame,
                              s.framebuffer_address)
    return switch_fingerprint(soc, results)


@pytest.mark.slow
@pytest.mark.full_system
@pytest.mark.parametrize("preset", MEMORY_CONFIG_NAMES)
class TestPresetMatrix:
    def test_functional_and_detailed_snapshots_resume_identically(self,
                                                                  preset):
        config = preset_config(preset)
        func_ckpt = functional_checkpoint(config)
        det_ckpt = detailed_checkpoint(config)
        # The snapshots themselves agree on the architectural payload...
        assert func_ckpt.trace_json == det_ckpt.trace_json
        assert func_ckpt.frame_index == det_ckpt.frame_index == BOUNDARY
        assert (func_ckpt.mode, det_ckpt.mode) == ("functional", "detailed")
        # ...and the detailed phases entered from either are bit-identical.
        assert resume_fingerprint(func_ckpt, config) \
            == resume_fingerprint(det_ckpt, config)

    def test_functional_engine_resumes_a_detailed_snapshot(self, preset):
        # The reverse direction: a detailed-mode snapshot continued
        # functionally reaches the same architectural state as a run that
        # was functional all along.
        config = preset_config(preset)
        det_ckpt = detailed_checkpoint(config)
        continued = FunctionalSim.from_checkpoint(
            det_ckpt, config, session().frame, render="none")
        continued.run(TOTAL)
        pure = FunctionalSim(config, session().frame, render="none")
        pure.run(TOTAL)
        assert continued.checkpoint().trace_json \
            == pure.checkpoint().trace_json


@pytest.mark.slow
@pytest.mark.full_system
class TestFastpathBoundary:
    def test_resume_crosses_the_fastpath_boundary_bit_identically(self):
        config = preset_config("BAS")
        with use_fastpath(True):
            checkpoint = functional_checkpoint(config)
            fp_fast = resume_fingerprint(checkpoint, config)
        with use_fastpath(False):
            fp_slow = resume_fingerprint(checkpoint, config)
        assert fp_fast == fp_slow

    def test_detailed_snapshot_crosses_the_boundary_too(self):
        config = preset_config("BAS")
        with use_fastpath(False):
            checkpoint = detailed_checkpoint(config)
        with use_fastpath(True):
            fp_fast = resume_fingerprint(checkpoint, config)
        with use_fastpath(False):
            fp_slow = resume_fingerprint(checkpoint, config)
        assert fp_fast == fp_slow


class TestModeField:
    def test_mode_survives_serialization(self):
        config = preset_config("BAS")
        checkpoint = functional_checkpoint(config)
        restored = GraphicsCheckpoint.from_json(checkpoint.to_json())
        assert restored.mode == "functional"
        assert restored == checkpoint

    def test_unknown_mode_rejected(self):
        from repro.soc.checkpoint import CheckpointError, capture
        with pytest.raises(CheckpointError):
            capture([], tick=0, frame_index=1, mode="hybrid")
