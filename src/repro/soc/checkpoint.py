"""Graphics checkpointing (paper §4.2).

Booting a full system is expensive; Emerald checkpoints the graphics state
by recording all draw calls and replaying them through the functional model
at restore.  Here a checkpoint bundles the recorded draw-call trace (the
same JSON format as :mod:`repro.gl.trace`), the simulated time, and the
app-side frame counter; restore rebuilds the GL-side state by replay.

Checkpoints are the crash-recovery substrate of the health subsystem
(:mod:`repro.health.recovery`), so :meth:`GraphicsCheckpoint.from_json`
validates its input strictly: a truncated or corrupted snapshot raises
:class:`CheckpointError` naming the offending field instead of resuming a
run from garbage.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.gl.context import Frame
from repro.gl.trace import TraceRecorder, replay


class CheckpointError(ValueError):
    """A checkpoint document failed validation.

    ``field`` names the offending key (dotted path) so a crashed-run
    post-mortem can say *which* part of the snapshot is damaged.
    """

    def __init__(self, message: str, field: str) -> None:
        super().__init__(f"checkpoint field {field!r}: {message}")
        self.field = field


class CheckpointTopologyError(CheckpointError):
    """The snapshot was taken on a different SoC topology.

    A checkpoint records the topology hash of the system that produced it
    (:meth:`repro.common.config.SoCTopology.topology_hash`); restoring it
    onto a system assembled from a *different* descriptor would replay
    graphics state into mismatched hardware — addresses would interleave
    across a different channel count, timing would diverge silently.
    ``snapshot_hash`` / ``config_hash`` carry both sides of the mismatch.
    """

    def __init__(self, snapshot_hash: str, config_hash: str) -> None:
        super().__init__(
            f"snapshot taken on topology {snapshot_hash}, but the resume "
            f"config assembles topology {config_hash}; refusing to restore "
            f"graphics state onto mismatched hardware", field="topology")
        self.snapshot_hash = snapshot_hash
        self.config_hash = config_hash


class CheckpointCorruptError(CheckpointError):
    """The snapshot bytes themselves are damaged (truncation, bit rot).

    Distinct from a schema problem: the file is not a well-formed snapshot
    at all — it was cut short mid-write or its embedded CRC no longer
    matches the payload.  Callers holding an alternative (an older
    snapshot, or a from-scratch rerun) should treat this as "discard and
    fall back", which is exactly what the fleet's resume path does.
    ``expected_crc`` / ``actual_crc`` carry the mismatch detail (None for
    truncation, where no CRC could be read at all).
    """

    def __init__(self, message: str, field: str,
                 expected_crc: Optional[int] = None,
                 actual_crc: Optional[int] = None) -> None:
        if expected_crc is not None and actual_crc is not None:
            message = (f"{message} (crc 0x{expected_crc:08x} recorded, "
                       f"0x{actual_crc:08x} computed)")
        super().__init__(message, field=field)
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


CHECKPOINT_VERSION = 1

# Execution engines that can stamp a snapshot (provenance, not payload —
# snapshots restore across modes; see GraphicsCheckpoint docstring).
CHECKPOINT_MODES = frozenset({"functional", "detailed"})


def _payload_crc(doc: dict) -> int:
    """CRC32 over the canonical serialization of everything but ``crc``.

    Canonical (sorted keys, no whitespace) so the digest is independent of
    the formatting the snapshot happened to be written with.
    """
    body = {key: value for key, value in doc.items() if key != "crc"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode())


@dataclass
class GraphicsCheckpoint:
    """A serializable snapshot of graphics + loop state.

    ``rng`` (optional) carries the fault injector's serialized RNG stream
    states (:meth:`repro.health.faults.FaultInjector.rng_state`) so a
    resumed run reproduces the *same* downstream fault pattern as an
    uninterrupted one.  Absent (None) on runs without injection and in
    pre-existing snapshots — the field is backward compatible both ways.

    ``job`` (optional) names the owning run — the fleet stores the job's
    cache key here — so a resume path can refuse a snapshot left behind
    by a *different* job in a reused directory instead of silently
    replaying foreign state.  Absent (None) outside the fleet and in
    pre-existing snapshots.

    ``topology`` (optional) is the producing system's topology hash
    (:meth:`repro.common.config.SoCTopology.topology_hash`); a resume onto
    a differently-assembled SoC raises :class:`CheckpointTopologyError`
    instead of replaying state into mismatched hardware.  Absent (None)
    in pre-topology snapshots, which resume unchecked.

    ``mode`` (optional) records which execution engine produced the
    snapshot: ``"detailed"`` (the full timing model) or ``"functional"``
    (the zero-event replay mode, :mod:`repro.sampling.functional`).  It is
    provenance only — the snapshot payload is the *architectural* state
    both engines agree on, so either mode restores a snapshot the other
    wrote (the fast-forward contract, DESIGN.md §13).  Absent (None) in
    pre-sampling snapshots.

    ``claim`` (optional) names the *supervisor incarnation* that owned
    the attempt which wrote the snapshot — the fleet server stamps its
    journaled claim token (server id + attempt sequence) here.  Unlike
    ``job`` it is pure provenance: ownership decisions key on ``job``
    alone (any incarnation of the same job may resume the snapshot —
    that is exactly what server crash-recovery does), but a triage
    bundle can attribute the snapshot to the exact server process and
    claim that produced it.  Absent (None) outside server-claimed jobs
    and in pre-existing snapshots.
    """

    trace_json: str
    tick: int
    frame_index: int
    rng: Optional[dict] = None
    job: Optional[str] = None
    topology: Optional[str] = None
    mode: Optional[str] = None
    claim: Optional[str] = None

    def to_json(self) -> str:
        doc = {
            "version": CHECKPOINT_VERSION,
            "tick": self.tick,
            "frame_index": self.frame_index,
            "trace": json.loads(self.trace_json),
        }
        if self.rng is not None:
            doc["rng"] = self.rng
        if self.job is not None:
            doc["job"] = self.job
        if self.topology is not None:
            doc["topology"] = self.topology
        if self.mode is not None:
            doc["mode"] = self.mode
        if self.claim is not None:
            doc["claim"] = self.claim
        doc["crc"] = _payload_crc(doc)
        return json.dumps(doc)

    @classmethod
    def from_json(cls, text: str) -> "GraphicsCheckpoint":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            # A process killed mid-write leaves a JSON prefix, not a
            # document; that is corruption, not a schema mismatch.
            raise CheckpointCorruptError(
                f"truncated or not JSON ({exc})", field="$") from exc
        if not isinstance(doc, dict):
            raise CheckpointError(
                f"expected an object, got {type(doc).__name__}", field="$")
        crc = doc.get("crc")
        if crc is not None:
            # Snapshots written by this version embed a payload CRC;
            # pre-CRC snapshots (no field) skip the check and rely on the
            # schema validation below.
            if isinstance(crc, bool) or not isinstance(crc, int):
                raise CheckpointCorruptError(
                    f"expected an integer, got {type(crc).__name__}",
                    field="crc")
            actual = _payload_crc(doc)
            if actual != crc:
                raise CheckpointCorruptError(
                    "payload does not match its recorded CRC", field="crc",
                    expected_crc=crc, actual_crc=actual)
        version = doc.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported version {version!r} "
                f"(expected {CHECKPOINT_VERSION})", field="version")
        tick = _require_int(doc, "tick")
        frame_index = _require_int(doc, "frame_index")
        if "trace" not in doc:
            raise CheckpointError("missing", field="trace")
        trace = doc["trace"]
        if not isinstance(trace, dict):
            raise CheckpointError(
                f"expected an object, got {type(trace).__name__}",
                field="trace")
        frames = trace.get("frames")
        if not isinstance(frames, list):
            raise CheckpointError(
                "missing or not a list", field="trace.frames")
        rng = doc.get("rng")
        if rng is not None and not isinstance(rng, dict):
            raise CheckpointError(
                f"expected an object, got {type(rng).__name__}", field="rng")
        job = doc.get("job")
        if job is not None and not isinstance(job, str):
            raise CheckpointError(
                f"expected a string, got {type(job).__name__}", field="job")
        topology = doc.get("topology")
        if topology is not None and not isinstance(topology, str):
            raise CheckpointError(
                f"expected a string, got {type(topology).__name__}",
                field="topology")
        mode = doc.get("mode")
        if mode is not None and mode not in CHECKPOINT_MODES:
            raise CheckpointError(
                f"expected one of {sorted(CHECKPOINT_MODES)}, got {mode!r}",
                field="mode")
        claim = doc.get("claim")
        if claim is not None and not isinstance(claim, str):
            raise CheckpointError(
                f"expected a string, got {type(claim).__name__}",
                field="claim")
        return cls(trace_json=json.dumps(trace), tick=tick,
                   frame_index=frame_index, rng=rng, job=job,
                   topology=topology, mode=mode, claim=claim)

    def restore_frames(self) -> list[Frame]:
        """Replay the recorded draw calls through a fresh GL context."""
        return replay(self.trace_json)

    def rewind(self, count: int) -> "GraphicsCheckpoint":
        """A copy with the last ``count`` frames dropped from the trace.

        A snapshot whose ``frame_index`` already covers a run's *final*
        frame cannot be resumed as-is: the render loop would have zero
        frames left, and the framebuffer pixels — which live only in the
        process that wrote the snapshot — would never be redrawn.
        Rewinding re-enters the run one (or more) frames earlier so the
        resume re-renders them; frame content is a pure function of the
        frame index, so the re-rendered framebuffer is bit-identical to
        the one the dead process held.

        The snapshot ``tick`` is kept: pixels do not depend on when a
        frame starts in simulated time, and keeping it preserves tick
        monotonicity for the resumed event clock.  Timing results of the
        re-rendered frames are therefore not comparable to the original
        run's — only the architectural state (and the payload derived
        from it) is.
        """
        if count <= 0:
            raise ValueError(f"rewind count must be positive, got {count}")
        trace = json.loads(self.trace_json)
        frames = trace.get("frames", [])
        if count > self.frame_index or count > len(frames):
            raise ValueError(
                f"cannot rewind {count} frame(s): snapshot holds "
                f"{len(frames)} recorded frame(s) at frame_index "
                f"{self.frame_index}")
        trace["frames"] = frames[:-count]
        from dataclasses import replace as _replace
        return _replace(self, trace_json=json.dumps(trace),
                        frame_index=self.frame_index - count)


def _require_int(doc: dict, key: str) -> int:
    """A present, non-negative integer (bool is not an int here)."""
    if key not in doc:
        raise CheckpointError("missing", field=key)
    value = doc[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise CheckpointError(
            f"expected an integer, got {type(value).__name__}", field=key)
    if value < 0:
        raise CheckpointError(f"must be non-negative, got {value}", field=key)
    return value


def capture(frames: list[Frame], tick: int, frame_index: int,
            rng: Optional[dict] = None,
            job: Optional[str] = None,
            topology: Optional[str] = None,
            mode: Optional[str] = None,
            claim: Optional[str] = None) -> GraphicsCheckpoint:
    """Record rendered frames into a checkpoint."""
    if mode is not None and mode not in CHECKPOINT_MODES:
        raise CheckpointError(
            f"expected one of {sorted(CHECKPOINT_MODES)}, got {mode!r}",
            field="mode")
    recorder = TraceRecorder()
    for frame in frames:
        recorder.record_frame(frame)
    return GraphicsCheckpoint(trace_json=recorder.to_json(), tick=tick,
                              frame_index=frame_index, rng=rng, job=job,
                              topology=topology, mode=mode, claim=claim)
