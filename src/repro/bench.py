"""Fastpath measurement discipline: reproducible benchmark artifacts.

The fastpath layer (DESIGN.md §12) is only allowed to exist because it is
*measured*: every claimed speedup is pinned to a JSON artifact produced by
this module, and every artifact embeds the bit-identity fingerprint that
proves the optimized run computed the same simulation.  Two reference
workloads are tracked:

* ``fig14`` — the case-study-I unit behind Fig. 14 (M1 under the BAS
  memory system, high-load scenario): DRAM-scheduler-bound, the worst
  case for the event kernel and the FR-FCFS scan.
* ``pipeline`` — one :class:`~repro.gpu.gpu.EmeraldGPU` teapot frame:
  shader/raster-bound, the worst case for per-op dispatch.
* ``ffwd`` — sampled simulation (DESIGN.md §13) against full detail on
  the Fig. 14 scene: wall-clock speedup, per-metric extrapolation error
  vs a symmetric per-frame ground truth, and the fast-forward
  framebuffer-CRC identity check.  Unlike the fastpath benchmarks this
  one compares an *approximation* to the exact run, so the gate bounds
  the error (≤5 %) rather than demanding bit identity of the estimates —
  the CRC identity of the fast-forwarded run stays exact.

Each benchmark runs the workload twice — fastpath on, fastpath off — in
that order, compares the identity fingerprint (end tick / cycles, events
fired, framebuffer CRC), and reports wall time, events/sec and (for the
GPU frame) fragments/sec plus the on-vs-off speedup.  ``scale="default"``
additionally reports the speedup against :data:`SEED_BASELINE`, the wall
time recorded for the same workload at the pre-fastpath seed commit.

Machine-independence: the on-vs-off ratio and the identity fingerprint
are meaningful on any host — CI gates on those (:func:`gate`).  The
seed-baseline speedup is only meaningful on hardware comparable to the
machine the baseline was recorded on; it is reported, never gated.

Entry points: ``python -m repro bench --summary`` (writes
``BENCH_fig14.json`` / ``BENCH_pipeline.json``), the CI smoke job
(``--scale smoke --gate``), and the ``benchmarks/`` pytest modules.
"""

from __future__ import annotations

import json
import platform
import time
import zlib
from pathlib import Path
from typing import Callable, Optional

from repro import fastpath

#: Wall times recorded for the ``scale="default"`` workloads at the seed
#: commit (the tree immediately before the fastpath layer landed), same
#: timing boundary (run only, assembly excluded), same machine as the
#: committed BENCH_*.json artifacts.  ``events_fired`` doubles as an
#: identity check: the fastpath must fire exactly as many events as the
#: seed did.
SEED_BASELINE = {
    "commit": "f9eb076",
    "fig14": {"wall_s": 2.875, "end_tick": 1_357_432,
              "events_fired": 274_152},
    "pipeline": {"wall_s": 1.914, "cycles": 35_612,
                 "events_fired": 125_678, "fb_crc": 2197508556},
}

BENCHMARKS = ("fig14", "pipeline", "ffwd")
SCALES = ("default", "smoke", "micro")

#: Identity keys compared between the two modes, per benchmark.
_IDENTITY = {
    "fig14": ("end_tick", "events_fired", "fb_crc", "row_hit_rate",
              "mean_gpu_time"),
    "pipeline": ("cycles", "fragments", "events_fired", "fb_crc",
                 "dram_bytes"),
    "ffwd": ("fb_crc",),
}

#: Largest relative extrapolation error the ffwd gate tolerates, per
#: metric, at the default (Fig. 14) operating point.  The estimates are
#: deterministic simulation quantities, so this check is
#: machine-independent.  The reduced scales carry their own looser bound
#: (see :func:`_ffwd_operating_point`): their detailed windows measure
#: only one frame each, and per-frame variance at the tiny 48x36
#: workload is ~25% of the mean, so a 5% bound would gate on sampling
#: noise rather than bias.
FFWD_ERROR_BOUND = 0.05


def _timed(fn: Callable):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _host() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _fig14_config(scale: str):
    from repro.harness.case_study1 import CS1Config

    if scale == "default":
        # The benchmarks/conftest.py quick-mode operating point.
        return CS1Config(num_frames=4)
    if scale == "smoke":
        # The CI trace-smoke operating point: seconds, not minutes.
        return CS1Config(width=48, height=36, num_frames=2,
                         texture_size=64,
                         gpu_frame_period_ticks=120_000,
                         display_period_ticks=60_000,
                         cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    if scale == "micro":
        return CS1Config(width=48, height=36, num_frames=1,
                         texture_size=64,
                         gpu_frame_period_ticks=120_000,
                         display_period_ticks=60_000,
                         cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def run_fig14(scale: str = "default") -> dict:
    """Benchmark the Fig. 14 unit (M1 / BAS / high load), on vs off."""
    from repro.harness.case_study1 import make_cs1_soc

    config = _fig14_config(scale)

    def once(fast: bool) -> dict:
        with fastpath.use_fastpath(fast):
            soc = make_cs1_soc("M1", "BAS", "high", config=config)
            wall, results = _timed(soc.run)
        events = soc.events.events_fired
        return {
            "wall_s": round(wall, 4),
            "events_fired": events,
            "events_per_s": round(events / wall, 1),
            "end_tick": results.end_tick,
            "fb_crc": zlib.crc32(soc.gpu.fb.color.tobytes()),
            "row_hit_rate": results.row_hit_rate,
            "mean_gpu_time": results.mean_gpu_time,
        }

    workload = {
        "name": "cs1 M1/BAS/high",
        "width": config.width, "height": config.height,
        "num_frames": config.num_frames,
    }
    return _report("fig14", scale, workload, once)


def run_pipeline(scale: str = "default") -> dict:
    """Benchmark one EmeraldGPU teapot frame (shader/raster bound)."""
    from repro.common.config import DRAMConfig, GPUConfig
    from repro.common.events import EventQueue
    from repro.gpu.gpu import EmeraldGPU
    from repro.harness.scenes import SceneSession
    from repro.memory.builders import build_baseline_memory

    sizes = {"default": (256, 192), "smoke": (128, 96), "micro": (64, 48)}
    if scale not in sizes:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    width, height = sizes[scale]

    def once(fast: bool) -> dict:
        with fastpath.use_fastpath(fast):
            session = SceneSession("teapot", width, height)
            frame = session.frame(0)
            events = EventQueue()
            memory = build_baseline_memory(events, DRAMConfig(channels=2))
            gpu = EmeraldGPU(events, GPUConfig(num_clusters=4),
                             width, height, memory=memory)
            wall, stats = _timed(lambda: gpu.run_frame(frame))
        fired = events.events_fired
        return {
            "wall_s": round(wall, 4),
            "events_fired": fired,
            "events_per_s": round(fired / wall, 1),
            "cycles": stats.cycles,
            "fragments": stats.fragments,
            "fragments_per_s": round(stats.fragments / wall, 1),
            "dram_bytes": stats.dram_bytes,
            "fb_crc": zlib.crc32(gpu.fb.color.tobytes()),
        }

    workload = {"name": "gpu teapot frame", "width": width,
                "height": height, "clusters": 4, "channels": 2}
    return _report("pipeline", scale, workload, once)


def _ffwd_operating_point(scale: str):
    """(CS1Config, sample spec, ffwd frames, error bound) per scale.

    The reduced scales use warmup 2: the post-switch cold transient at
    the 48x36 workload lasts ~2 frames (the first detailed frame after a
    mode switch runs ~5x steady state, the second ~2x), so a warmup-1
    schedule would measure frames still inside the transient.
    """
    from repro.harness.case_study1 import CS1Config

    if scale == "default":
        # Fig. 14 scene at its real resolution; 1/6 detailed coverage.
        return CS1Config(num_frames=36), "2:12:1", 18, FFWD_ERROR_BOUND
    small = dict(width=48, height=36, texture_size=64,
                 gpu_frame_period_ticks=120_000,
                 display_period_ticks=60_000,
                 cpu_work_per_frame=40, cpu_fixed_ticks=5_000)
    if scale == "smoke":
        return CS1Config(num_frames=24, **small), "3:8:2", 12, 0.10
    if scale == "micro":
        return CS1Config(num_frames=8, **small), "3:4:2", 4, 0.10
    raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def run_ffwd(scale: str = "default") -> dict:
    """Benchmark sampled simulation against full detail (Fig. 14 scene).

    Three runs of M1 / BAS / high load:

    1. **full detail** — the exact run, with a per-frame activity hook so
       the ground-truth per-frame metrics are computed *the same way* the
       sampler computes its window samples (deltas between frame
       boundaries, app warmup frame 0 excluded) — asymmetric definitions
       would report definition error as extrapolation error;
    2. **sampled** — functional/detailed alternation under the scale's
       schedule, extrapolated with error bars;
    3. **fast-forward** — half the frames functional, rest detailed; its
       final framebuffer must be CRC-identical to the full-detail run's
       (the mode-switch exactness check, same contract CI's
       ``repro ffwd --verify`` gates on).
    """
    from dataclasses import replace as dc_replace

    from repro.gpu.energy import frame_energy, gpu_activity_snapshot
    from repro.harness.case_study1 import make_cs1_setup
    from repro.sampling import fast_forward, parse_sample_spec, run_sampled
    from repro.sampling.stats import SAMPLE_METRICS
    from repro.soc.soc import EmeraldSoC

    config, spec, ffwd_frames, error_bound = _ffwd_operating_point(scale)
    run_config, factory = make_cs1_setup("M1", "BAS", "high", config=config)
    schedule = parse_sample_spec(spec, config.num_frames)

    # 1. Full detail with symmetric per-frame ground truth.
    per_frame: list[dict] = []
    cell: dict = {}

    def hook(frame_index: int, tick: int) -> None:
        soc = cell["soc"]
        activity = gpu_activity_snapshot(soc.gpu)
        per_frame.append({"frame": frame_index,
                          "total_bytes": soc.memory.total_bytes(),
                          "issued": activity["issued"],
                          "l1_accesses": activity["l1_accesses"]})

    session = factory()
    soc = EmeraldSoC(dc_replace(run_config, frame_hook=hook),
                     session.frame, session.framebuffer_address)
    cell["soc"] = soc
    wall_full, results = _timed(soc.run)
    full_fb_crc = zlib.crc32(soc.gpu.fb.color.tobytes())

    previous = {"total_bytes": 0, "issued": 0, "l1_accesses": 0}
    by_index = {entry["frame"]: entry for entry in per_frame}
    rows: list[tuple] = []
    for record in results.frames:
        entry = by_index[record.index]
        delta_bytes = entry["total_bytes"] - previous["total_bytes"]
        delta_issued = entry["issued"] - previous["issued"]
        delta_l1 = entry["l1_accesses"] - previous["l1_accesses"]
        previous = entry
        if record.index == 0:
            continue                      # app warmup: excluded both sides
        rows.append((record.gpu_time, record.total_time, delta_bytes,
                     frame_energy(record.gpu_stats, delta_issued,
                                  delta_l1).total_uj))
    ground_truth = {
        metric: sum(row[i] for row in rows) / len(rows)
        for i, metric in enumerate(SAMPLE_METRICS)
    }

    # 2. Sampled run + extrapolation.
    wall_sampled, sampled = _timed(
        lambda: run_sampled(run_config, factory, schedule))
    errors = {
        metric: abs(sampled.estimates[metric].mean - ground_truth[metric])
        / abs(ground_truth[metric])
        for metric in SAMPLE_METRICS
    }

    # 3. Fast-forward CRC identity.
    wall_ffwd, ffwd = _timed(
        lambda: fast_forward(run_config, factory, ffwd_frames))
    crc_identical = ffwd.final_fb_crc == full_fb_crc

    workload = {
        "name": "cs1 M1/BAS/high sampled",
        "width": config.width, "height": config.height,
        "num_frames": config.num_frames, "sample": schedule.spec(),
        "ffwd_frames": ffwd_frames,
    }
    return {
        "benchmark": "ffwd",
        "scale": scale,
        "workload": workload,
        "full_detail": {
            "wall_s": round(wall_full, 4),
            "fb_crc": full_fb_crc,
            "per_frame": {k: round(v, 4) for k, v in ground_truth.items()},
        },
        "sampled": {
            "wall_s": round(wall_sampled, 4),
            "wall_functional": round(sampled.wall_functional, 4),
            "wall_detailed": round(sampled.wall_detailed, 4),
            "coverage": schedule.coverage,
            "windows": len(sampled.samples),
            "estimates": {name: est.as_dict()
                          for name, est in sampled.estimates.items()},
            "fps": sampled.extrapolated.fps,
        },
        "ffwd": {
            "wall_s": round(wall_ffwd, 4),
            "final_fb_crc": ffwd.final_fb_crc,
            "speedup_vs_full": round(wall_full / wall_ffwd, 3),
        },
        "errors": {k: round(v, 5) for k, v in errors.items()},
        "error_bound": error_bound,
        "identical": crc_identical,
        "identity": {"fb_crc": full_fb_crc},
        "speedup_sampled_vs_full": round(wall_full / wall_sampled, 3),
        "seed_baseline": None,
        "speedup_vs_seed": None,
        "host": _host(),
        "generated_by": "python -m repro bench",
    }


def _report(name: str, scale: str, workload: dict, once: Callable) -> dict:
    on = once(True)
    off = once(False)
    keys = _IDENTITY[name]
    identity = {key: on[key] for key in keys}
    identical = all(on[key] == off[key] for key in keys)
    seed = SEED_BASELINE[name] if scale == "default" else None
    seed_wall = seed.get("wall_s") if seed else None
    return {
        "benchmark": name,
        "scale": scale,
        "workload": workload,
        "fastpath_on": on,
        "fastpath_off": off,
        "identical": identical,
        "identity": identity,
        "speedup_on_vs_off": round(off["wall_s"] / on["wall_s"], 3),
        "seed_baseline": dict(seed, commit=SEED_BASELINE["commit"])
        if seed else None,
        "speedup_vs_seed": round(seed_wall / on["wall_s"], 3)
        if seed_wall else None,
        "host": _host(),
        "generated_by": "python -m repro bench",
    }


def gate(report: dict, min_on_off: float = 0.9) -> list:
    """Machine-independent pass/fail checks for one report.

    Returns a list of failure strings (empty = pass).  Identity is a hard
    requirement; the speed check only fails when fastpath-on is *slower*
    than fastpath-off beyond the noise allowance (``min_on_off``), since
    absolute wall times vary across hosts.
    """
    failures = []
    name = report["benchmark"]
    if name == "ffwd":
        if not report["identical"]:
            failures.append(
                f"ffwd: fast-forwarded final framebuffer CRC "
                f"{report['ffwd']['final_fb_crc']} != full-detail "
                f"{report['full_detail']['fb_crc']} — the mode switch "
                f"changed the simulation")
        bound = report["error_bound"]
        for metric, error in report["errors"].items():
            if error > bound:
                failures.append(
                    f"ffwd: {metric} extrapolation error {error * 100:.2f}% "
                    f"exceeds the {bound * 100:.0f}% bound")
        if report["speedup_sampled_vs_full"] < min_on_off:
            failures.append(
                f"ffwd: sampled run is slower than full detail "
                f"({report['sampled']['wall_s']:.3f}s vs "
                f"{report['full_detail']['wall_s']:.3f}s, ratio "
                f"{report['speedup_sampled_vs_full']:.3f} < {min_on_off})")
        return failures
    if not report["identical"]:
        keys = _IDENTITY[name]
        diffs = [key for key in keys
                 if report["fastpath_on"][key] != report["fastpath_off"][key]]
        failures.append(f"{name}: fastpath on/off runs differ on "
                        f"{', '.join(diffs)} — optimization changed the model")
    if report["speedup_on_vs_off"] < min_on_off:
        failures.append(
            f"{name}: fastpath-on is slower than fastpath-off "
            f"({report['fastpath_on']['wall_s']:.3f}s vs "
            f"{report['fastpath_off']['wall_s']:.3f}s, ratio "
            f"{report['speedup_on_vs_off']:.3f} < {min_on_off})")
    seed = report.get("seed_baseline") or {}
    for key in ("end_tick", "events_fired", "cycles", "fb_crc"):
        expected = seed.get(key)
        if expected is not None and report["identity"].get(key) != expected:
            failures.append(
                f"{name}: {key} {report['identity'][key]} != seed-recorded "
                f"{expected} — the schedule drifted from the seed commit")
    return failures


def artifact_name(report: dict) -> str:
    return f"BENCH_{report['benchmark']}.json"


def write_report(report: dict, out_dir: str = ".") -> Path:
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact_name(report)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def format_summary(report: dict) -> str:
    """Human-readable one-benchmark summary for ``bench --summary``."""
    if report["benchmark"] == "ffwd":
        full, sampled = report["full_detail"], report["sampled"]
        lines = [f"ffwd ({report['scale']}): {report['workload']['name']} "
                 f"{report['workload']['width']}x"
                 f"{report['workload']['height']} "
                 f"x{report['workload']['num_frames']} frames, "
                 f"sample {report['workload']['sample']}"]
        lines.append(f"  full detail   {full['wall_s']:>7.3f}s")
        lines.append(f"  sampled       {sampled['wall_s']:>7.3f}s  "
                     f"({sampled['coverage'] * 100:.0f}% coverage, "
                     f"{sampled['windows']} windows)  "
                     f"{report['speedup_sampled_vs_full']:.2f}x")
        lines.append(f"  fast-forward  {report['ffwd']['wall_s']:>7.3f}s  "
                     f"{report['ffwd']['speedup_vs_full']:.2f}x  "
                     f"(fb CRC identical: {report['identical']})")
        errors = "  ".join(f"{k} {v * 100:.2f}%"
                           for k, v in report["errors"].items())
        lines.append(f"  extrapolation error (bound "
                     f"{report['error_bound'] * 100:.0f}%): {errors}")
        return "\n".join(lines)
    on, off = report["fastpath_on"], report["fastpath_off"]
    lines = [f"{report['benchmark']} ({report['scale']}): "
             f"{report['workload']['name']} "
             f"{report['workload']['width']}x{report['workload']['height']}"]
    lines.append(f"  {'mode':<12}  {'wall':>8}  {'events/s':>12}"
                 + (f"  {'frags/s':>10}" if "fragments_per_s" in on else ""))
    for label, row in (("fastpath on", on), ("fastpath off", off)):
        extra = (f"  {row['fragments_per_s']:>10,.0f}"
                 if "fragments_per_s" in row else "")
        lines.append(f"  {label:<12}  {row['wall_s']:>7.3f}s  "
                     f"{row['events_per_s']:>12,.0f}{extra}")
    lines.append(f"  identical: {report['identical']}   "
                 f"on vs off: {report['speedup_on_vs_off']:.2f}x"
                 + (f"   vs seed {report['seed_baseline']['commit']}: "
                    f"{report['speedup_vs_seed']:.2f}x"
                    if report["speedup_vs_seed"] else ""))
    return "\n".join(lines)


def run(names=BENCHMARKS, scale: str = "default") -> list:
    runners = {"fig14": run_fig14, "pipeline": run_pipeline,
               "ffwd": run_ffwd}
    return [runners[name](scale) for name in names]
