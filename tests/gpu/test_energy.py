"""Tests for the event-count energy model."""

import numpy as np
import pytest

from repro.common.config import DRAMConfig, GPUConfig, scaled_gpu
from repro.common.events import EventQueue
from repro.gpu.energy import (
    EnergyBreakdown,
    EnergyModel,
    frame_energy,
    gpu_activity_snapshot,
    measure_frame_energy,
)
from repro.gpu.gpu import EmeraldGPU, GPUFrameStats
from repro.memory.builders import build_baseline_memory

from tests.pipeline.helpers import FLAT_COLOR_FS, FLAT_VS, fullscreen_quad
from repro.gl.context import GLContext
from repro.gl.state import CullMode


def make_gpu():
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=2))
    return EmeraldGPU(events, scaled_gpu(GPUConfig(num_clusters=2)), 48, 48,
                      memory=memory)


def flat_frame(width=48, height=48):
    ctx = GLContext(width, height)
    ctx.use_program(FLAT_VS, FLAT_COLOR_FS)
    ctx.set_state(cull=CullMode.NONE)
    ctx.set_uniform("flat_color", [1.0, 0.0, 0.0, 1.0])
    ctx.draw_mesh(fullscreen_quad())
    return ctx.end_frame()


class TestFrameEnergy:
    def test_components_positive_for_real_frame(self):
        gpu = make_gpu()
        stats, energy = measure_frame_energy(gpu, flat_frame())
        assert energy.execution > 0
        assert energy.l1 > 0
        assert energy.l2 > 0
        assert energy.dram > 0
        assert energy.fixed_function > 0
        assert energy.leakage > 0
        assert energy.total_pj == pytest.approx(
            sum(v for k, v in energy.as_dict().items() if k != "total"))

    def test_total_uj_conversion(self):
        breakdown = EnergyBreakdown(execution=1e6)
        assert breakdown.total_uj == pytest.approx(1.0)

    def test_leakage_scales_with_cycles(self):
        stats = GPUFrameStats(start_tick=0, end_tick=1000)
        a = frame_energy(stats, issued_ops=0, l1_accesses=0)
        stats2 = GPUFrameStats(start_tick=0, end_tick=2000)
        b = frame_energy(stats2, issued_ops=0, l1_accesses=0)
        assert b.leakage == pytest.approx(2 * a.leakage)

    def test_custom_model_coefficients(self):
        stats = GPUFrameStats(start_tick=0, end_tick=100)
        model = EnergyModel(leakage_pj_per_cycle=1.0, dram_byte_pj=0.0)
        stats.dram_bytes = 1_000_000
        energy = frame_energy(stats, 0, 0, model=model)
        assert energy.dram == 0.0
        assert energy.leakage == 100.0

    def test_activity_snapshot_monotonic(self):
        gpu = make_gpu()
        before = gpu_activity_snapshot(gpu)
        gpu.run_frame(flat_frame())
        after = gpu_activity_snapshot(gpu)
        assert after["issued"] > before["issued"]
        assert after["l1_accesses"] > before["l1_accesses"]

    def test_bigger_frame_costs_more(self):
        gpu_small = make_gpu()
        _, small = measure_frame_energy(gpu_small, flat_frame())
        events = EventQueue()
        memory = build_baseline_memory(events, DRAMConfig(channels=2))
        gpu_big = EmeraldGPU(events, scaled_gpu(GPUConfig(num_clusters=2)),
                             96, 96, memory=memory)
        _, big = measure_frame_energy(gpu_big, flat_frame(96, 96))
        assert big.total_pj > small.total_pj

    def test_faster_frame_leaks_less(self):
        """The DFSL energy argument: same work, fewer cycles, less leakage."""
        fast = GPUFrameStats(start_tick=0, end_tick=10_000)
        slow = GPUFrameStats(start_tick=0, end_tick=15_000)
        e_fast = frame_energy(fast, issued_ops=1000, l1_accesses=500)
        e_slow = frame_energy(slow, issued_ops=1000, l1_accesses=500)
        assert e_fast.total_pj < e_slow.total_pj
