"""Primitive assembly, clipping and culling (pipeline stages 4-5).

Triangles are assembled from the index stream (unrolling strips/fans),
trivially rejected when fully outside the view volume, clipped with
Sutherland-Hodgman in homogeneous clip space when straddling a plane, and
back/front-face culled after the perspective divide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.geometry.mesh import PrimitiveMode
from repro.gl.state import CullMode

W_EPSILON = 1e-6

# Clip planes as (coefficient index, sign): dot condition  w + s*coord >= 0.
_PLANES = [
    (0, 1.0),    # x >= -w
    (0, -1.0),   # x <=  w
    (1, 1.0),    # y >= -w
    (1, -1.0),   # y <=  w
    (2, 1.0),    # z >= -w
    (2, -1.0),   # z <=  w
]


def iter_triangles(indices: np.ndarray, mode: PrimitiveMode) -> Iterator[tuple[int, int, int]]:
    """Index triples in draw order, with strip winding correction."""
    idx = indices
    if mode is PrimitiveMode.TRIANGLES:
        for i in range(0, len(idx) - 2, 3):
            yield int(idx[i]), int(idx[i + 1]), int(idx[i + 2])
    elif mode is PrimitiveMode.TRIANGLE_STRIP:
        for i in range(len(idx) - 2):
            if i % 2 == 0:
                yield int(idx[i]), int(idx[i + 1]), int(idx[i + 2])
            else:
                yield int(idx[i + 1]), int(idx[i]), int(idx[i + 2])
    elif mode is PrimitiveMode.TRIANGLE_FAN:
        for i in range(1, len(idx) - 1):
            yield int(idx[0]), int(idx[i]), int(idx[i + 1])
    else:  # pragma: no cover
        raise AssertionError(f"unhandled mode {mode}")


@dataclass
class ClippedPrimitive:
    """A clip-space triangle that survived clipping (not yet culled)."""

    prim_id: int                 # original draw-order primitive index
    clip: np.ndarray             # (3, 4)
    varyings: np.ndarray         # (3, V)
    was_clipped: bool = False


def _inside(vertex: np.ndarray, plane: tuple[int, float]) -> float:
    """Signed distance-like value; >= 0 means inside."""
    coord, sign = plane
    return vertex[3] + (vertex[coord] if sign > 0 else -vertex[coord])


def _clip_polygon(clip: list[np.ndarray], varyings: list[np.ndarray],
                  plane: tuple[int, float]):
    """One Sutherland-Hodgman pass; attributes interpolate linearly."""
    out_clip: list[np.ndarray] = []
    out_var: list[np.ndarray] = []
    count = len(clip)
    for i in range(count):
        current, nxt = clip[i], clip[(i + 1) % count]
        cur_var, next_var = varyings[i], varyings[(i + 1) % count]
        d0 = _inside(current, plane)
        d1 = _inside(nxt, plane)
        if d0 >= 0:
            out_clip.append(current)
            out_var.append(cur_var)
        if (d0 >= 0) != (d1 >= 0):
            t = d0 / (d0 - d1)
            out_clip.append(current + t * (nxt - current))
            out_var.append(cur_var + t * (next_var - cur_var))
    return out_clip, out_var


def clip_triangle(clip: np.ndarray, varyings: np.ndarray,
                  prim_id: int) -> list[ClippedPrimitive]:
    """Clip one clip-space triangle; returns 0..N output triangles."""
    w = clip[:, 3]
    if np.all(w <= W_EPSILON):
        return []
    # Trivial accept: every vertex inside every plane.
    inside_all = np.all(w[:, None] + clip[:, :3] >= 0) and \
        np.all(w[:, None] - clip[:, :3] >= 0) and np.all(w > W_EPSILON)
    if inside_all:
        return [ClippedPrimitive(prim_id, clip.copy(), varyings.copy())]
    # Trivial reject: all vertices outside one plane.
    for coord, sign in _PLANES:
        values = w + (clip[:, coord] if sign > 0 else -clip[:, coord])
        if np.all(values < 0):
            return []
    poly_clip = [clip[i].astype(np.float64) for i in range(3)]
    poly_var = [varyings[i].astype(np.float64) for i in range(3)]
    # Clip against w > epsilon first to avoid dividing by ~0 later.
    kept_clip, kept_var = [], []
    count = len(poly_clip)
    for i in range(count):
        current, nxt = poly_clip[i], poly_clip[(i + 1) % count]
        cur_var, next_var = poly_var[i], poly_var[(i + 1) % count]
        d0 = current[3] - W_EPSILON
        d1 = nxt[3] - W_EPSILON
        if d0 >= 0:
            kept_clip.append(current)
            kept_var.append(cur_var)
        if (d0 >= 0) != (d1 >= 0):
            t = d0 / (d0 - d1)
            kept_clip.append(current + t * (nxt - current))
            kept_var.append(cur_var + t * (next_var - cur_var))
    poly_clip, poly_var = kept_clip, kept_var
    for plane in _PLANES:
        if len(poly_clip) < 3:
            return []
        poly_clip, poly_var = _clip_polygon(poly_clip, poly_var, plane)
    if len(poly_clip) < 3:
        return []
    out = []
    for i in range(1, len(poly_clip) - 1):
        tri_clip = np.stack([poly_clip[0], poly_clip[i], poly_clip[i + 1]])
        tri_var = np.stack([poly_var[0], poly_var[i], poly_var[i + 1]])
        out.append(ClippedPrimitive(prim_id, tri_clip, tri_var,
                                    was_clipped=True))
    return out


def ndc_signed_area(clip: np.ndarray) -> float:
    """Twice the signed area of the triangle in NDC (y up, CCW positive)."""
    ndc = clip[:, :2] / clip[:, 3:4]
    return float(
        (ndc[1, 0] - ndc[0, 0]) * (ndc[2, 1] - ndc[0, 1])
        - (ndc[2, 0] - ndc[0, 0]) * (ndc[1, 1] - ndc[0, 1])
    )


def is_culled(prim: ClippedPrimitive, cull: CullMode) -> bool:
    """Face culling (and zero-area rejection) after clipping."""
    area = ndc_signed_area(prim.clip)
    if area == 0.0:
        return True
    if cull is CullMode.BACK:
        return area < 0
    if cull is CullMode.FRONT:
        return area > 0
    return False


@dataclass
class ClipStats:
    input_primitives: int = 0
    trivially_rejected: int = 0
    clipped: int = 0
    culled: int = 0
    output_primitives: int = 0


def assemble_and_clip(indices: np.ndarray, mode: PrimitiveMode,
                      clip_positions: np.ndarray, varyings: np.ndarray,
                      cull: CullMode) -> tuple[list[ClippedPrimitive], ClipStats]:
    """Full primitive-processing front end: assemble, clip, cull."""
    stats = ClipStats()
    out: list[ClippedPrimitive] = []
    for prim_id, (a, b, c) in enumerate(iter_triangles(indices, mode)):
        stats.input_primitives += 1
        tri_clip = clip_positions[[a, b, c]]
        tri_var = varyings[[a, b, c]]
        pieces = clip_triangle(tri_clip, tri_var, prim_id)
        if not pieces:
            stats.trivially_rejected += 1
            continue
        if pieces[0].was_clipped:
            stats.clipped += 1
        for piece in pieces:
            if is_culled(piece, cull):
                stats.culled += 1
                continue
            out.append(piece)
    stats.output_primitives = len(out)
    return out, stats
