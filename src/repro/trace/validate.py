"""Chrome Trace Event Format well-formedness checks.

:func:`validate_trace` is the referee the trace test suite (and the
acceptance criteria) lean on: it walks an exported trace object and
verifies the structural invariants the tracer promises —

* every record carries the required fields for its phase;
* ``B``/``E`` duration spans balance per (pid, tid) track, close in LIFO
  order with matching names, and never run backwards in time;
* ``X`` complete spans have non-negative durations;
* counter series tagged ``cat="monotonic"`` never decrease;
* async ``e`` records match a previously opened ``b`` with the same
  (category, id, name) key.

Violations raise :class:`TraceFormatError`.  Conditions that are legal
but worth surfacing (async spans still open at end of trace — requests
in flight when the run stopped) come back as warning strings.
"""

from __future__ import annotations

KNOWN_PHASES = frozenset({"B", "E", "X", "C", "i", "b", "e", "M"})


class TraceFormatError(ValueError):
    """The trace violates the Chrome Trace Event Format invariants."""


def _require(condition: bool, index: int, message: str) -> None:
    if not condition:
        raise TraceFormatError(f"traceEvents[{index}]: {message}")


def validate_trace(trace: dict) -> list[str]:
    """Validate one exported trace object; returns a list of warnings."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise TraceFormatError("not a Chrome trace: missing 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise TraceFormatError("'traceEvents' must be a list")

    open_spans: dict[tuple, list[tuple]] = {}   # (pid,tid) -> [(name, ts)]
    last_ts: dict[tuple, float] = {}            # (pid,tid) -> last B/E ts
    monotonic: dict[tuple, float] = {}          # (tid,name,key) -> last value
    open_async: dict[tuple, int] = {}           # (cat,id,name) -> open count
    warnings: list[str] = []

    for i, ev in enumerate(events):
        _require(isinstance(ev, dict), i, "record is not an object")
        ph = ev.get("ph")
        _require(ph in KNOWN_PHASES, i, f"unknown phase {ph!r}")
        _require(isinstance(ev.get("name"), str), i, "missing 'name'")
        _require(isinstance(ev.get("pid"), int), i, "missing 'pid'")
        _require(isinstance(ev.get("tid"), int), i, "missing 'tid'")
        if ph == "M":
            continue
        ts = ev.get("ts")
        _require(isinstance(ts, (int, float)) and ts >= 0, i,
                 f"bad timestamp {ts!r}")
        track = (ev["pid"], ev["tid"])

        if ph == "B":
            _require(ts >= last_ts.get(track, 0), i,
                     "B timestamp runs backwards on its track")
            last_ts[track] = ts
            open_spans.setdefault(track, []).append((ev["name"], ts))
        elif ph == "E":
            _require(ts >= last_ts.get(track, 0), i,
                     "E timestamp runs backwards on its track")
            last_ts[track] = ts
            stack = open_spans.get(track)
            _require(bool(stack), i,
                     f"E {ev['name']!r} with no open B on pid/tid {track}")
            name, start = stack.pop()
            _require(name == ev["name"], i,
                     f"E {ev['name']!r} does not close the innermost "
                     f"B {name!r}")
            _require(ts >= start, i, "span ends before it begins")
        elif ph == "X":
            dur = ev.get("dur")
            _require(isinstance(dur, (int, float)) and dur >= 0, i,
                     f"X record needs a non-negative 'dur', got {dur!r}")
        elif ph == "C":
            args = ev.get("args")
            _require(isinstance(args, dict) and args, i,
                     "C record needs non-empty 'args'")
            for key, value in args.items():
                _require(isinstance(value, (int, float)), i,
                         f"counter series {key!r} has non-numeric value")
                if ev.get("cat") == "monotonic":
                    series = (ev["tid"], ev["name"], key)
                    _require(value >= monotonic.get(series, value), i,
                             f"monotonic counter {key!r} decreased")
                    monotonic[series] = value
        elif ph in ("b", "e"):
            _require("id" in ev, i, f"async {ph!r} record needs an 'id'")
            key = (ev.get("cat"), ev["id"], ev["name"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                _require(open_async.get(key, 0) > 0, i,
                         f"async end {key!r} without a matching begin")
                open_async[key] -= 1
        elif ph == "i":
            _require(ev.get("s") in ("t", "p", "g"), i,
                     "instant record needs a scope 's'")

    for track, stack in open_spans.items():
        _require(not stack, len(events) - 1,
                 f"unclosed B span(s) {[n for n, _ in stack]!r} on "
                 f"pid/tid {track}")
    still_open = sum(count for count in open_async.values() if count > 0)
    if still_open:
        warnings.append(f"{still_open} async span(s) still open at end of "
                        f"trace (requests in flight when the run stopped)")
    return warnings
