"""Tests for draw-call trace record/replay (APITrace substitute)."""

import numpy as np
import pytest

from repro.geometry.models import cube, triangles
from repro.gl.context import GLContext
from repro.gl.state import DepthFunc
from repro.gl.textures import checkerboard
from repro.gl.trace import RegionOfInterest, TraceRecorder, replay

VS = "void main() { gl_Position = vec4(position, 1.0); }"
FS = "void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }"


def record_two_frames():
    ctx = GLContext(32, 32)
    ctx.use_program(VS, FS)
    ctx.set_uniform("mvp", np.eye(4))
    ctx.bind_texture("albedo", checkerboard(size=8, squares=2))
    recorder = TraceRecorder()
    ctx.draw_mesh(cube(), name="c0")
    ctx.draw_mesh(triangles(), name="t0")
    recorder.record_frame(ctx.end_frame())
    ctx.set_state(depth_func=DepthFunc.LEQUAL)
    ctx.draw_mesh(cube(), name="c1")
    recorder.record_frame(ctx.end_frame())
    return recorder


class TestRoundtrip:
    def test_frame_and_call_counts(self):
        trace = record_two_frames().to_json()
        frames = replay(trace)
        assert len(frames) == 2
        assert [len(f.draw_calls) for f in frames] == [2, 1]

    def test_geometry_preserved(self):
        trace = record_two_frames().to_json()
        frames = replay(trace)
        call = frames[0].draw_calls[0]
        original = cube()
        assert call.vbo.num_vertices == original.num_vertices
        assert np.allclose(call.vbo.fetch("position", np.arange(3)),
                           original.positions[:3])

    def test_state_preserved(self):
        trace = record_two_frames().to_json()
        frames = replay(trace)
        assert frames[0].draw_calls[0].state.depth_func is DepthFunc.LESS
        assert frames[1].draw_calls[0].state.depth_func is DepthFunc.LEQUAL

    def test_uniforms_and_textures_preserved(self):
        trace = record_two_frames().to_json()
        call = replay(trace)[0].draw_calls[0]
        assert np.allclose(call.uniforms["mvp"], np.eye(4))
        assert "albedo" in call.textures
        assert call.textures["albedo"].width == 8

    def test_shader_sources_preserved(self):
        call = replay(record_two_frames().to_json())[0].draw_calls[0]
        assert call.vs_source == VS
        assert call.fs_source == FS

    def test_repeated_meshes_share_buffers(self):
        trace = record_two_frames().to_json()
        frames = replay(trace)
        addr0 = frames[0].draw_calls[0].vbo.base_address
        addr1 = frames[1].draw_calls[0].vbo.base_address
        assert addr0 == addr1    # same mesh -> cached VBO

    def test_stencil_state_roundtrip(self):
        import numpy as np
        from repro.gl.state import StencilOp
        from repro.geometry.models import cube
        ctx = GLContext(16, 16)
        ctx.use_program(VS, FS)
        ctx.set_state(stencil_test=True, stencil_func=DepthFunc.EQUAL,
                      stencil_ref=9, stencil_pass_op=StencilOp.INCR,
                      clear_stencil=2)
        ctx.draw_mesh(cube(), name="s")
        recorder = TraceRecorder()
        recorder.record_frame(ctx.end_frame())
        frames = replay(recorder.to_json())
        state = frames[0].draw_calls[0].state
        assert state.stencil_test
        assert state.stencil_func is DepthFunc.EQUAL
        assert state.stencil_ref == 9
        assert state.stencil_pass_op is StencilOp.INCR
        assert frames[0].clear_stencil == 2

    def test_save_and_load(self, tmp_path):
        from repro.gl.trace import load
        path = tmp_path / "trace.json"
        record_two_frames().save(str(path))
        frames = load(str(path))
        assert len(frames) == 2


class TestRegionOfInterest:
    def test_frame_window(self):
        trace = record_two_frames().to_json()
        frames = replay(trace, RegionOfInterest(first_frame=1))
        assert len(frames) == 1
        assert len(frames[0].draw_calls) == 1

    def test_draw_window(self):
        trace = record_two_frames().to_json()
        frames = replay(trace, RegionOfInterest(last_draw=0))
        assert [len(f.draw_calls) for f in frames] == [1, 1]
        assert frames[0].draw_calls[0].name == "c0"

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            replay('{"version": 99, "frames": []}')


def inline_v1(trace_json: str) -> str:
    """Down-convert a v2 trace to the v1 inline format (test helper)."""
    import json
    doc = json.loads(trace_json)
    assert doc["version"] == 2
    buffers, textures = doc.pop("buffers"), doc.pop("textures")
    for frame_doc in doc["frames"]:
        for call_doc in frame_doc["draw_calls"]:
            call_doc["attributes"] = {
                k: buffers[ref] for k, ref in call_doc["attributes"].items()
            }
            call_doc["indices"] = buffers[call_doc["indices"]]
            call_doc["textures"] = {
                k: textures[ref] for k, ref in call_doc["textures"].items()
            }
    doc["version"] = 1
    return json.dumps(doc)


class TestTraceFormatV2:
    """Content-interned trace format: dedupe, determinism, v1 compat."""

    def test_recorder_emits_v2_with_resolvable_tables(self):
        import json
        doc = json.loads(record_two_frames().to_json())
        assert doc["version"] == 2
        for frame_doc in doc["frames"]:
            for call_doc in frame_doc["draw_calls"]:
                for ref in call_doc["attributes"].values():
                    assert ref in doc["buffers"]
                assert call_doc["indices"] in doc["buffers"]
                for ref in call_doc["textures"].values():
                    assert ref in doc["textures"]

    def test_repeated_assets_intern_once(self):
        # The cube is drawn in both frames: its attribute and index
        # arrays must appear in the table once, referenced twice.
        import json
        doc = json.loads(record_two_frames().to_json())
        cube_calls = [call for frame_doc in doc["frames"]
                      for call in frame_doc["draw_calls"]
                      if call["name"].startswith("c")]
        assert len(cube_calls) == 2
        assert cube_calls[0]["attributes"] == cube_calls[1]["attributes"]
        assert cube_calls[0]["indices"] == cube_calls[1]["indices"]
        # And the trace grows with distinct assets, not with draw calls:
        # 2 meshes x (position/normal/uv/color slices + indices) bounds
        # the buffer table.
        assert len(doc["buffers"]) <= 10

    def test_capture_is_deterministic(self):
        from repro.gl.trace import trace_digest
        first = record_two_frames().to_json()
        second = record_two_frames().to_json()
        assert first == second
        assert trace_digest(first) == trace_digest(second)

    def test_replay_recapture_is_a_digest_fixed_point(self):
        from repro.gl.trace import trace_digest
        trace = record_two_frames().to_json()
        recorder = TraceRecorder()
        for frame in replay(trace):
            recorder.record_frame(frame)
        assert trace_digest(recorder.to_json()) == trace_digest(trace)

    def test_v1_inline_documents_still_replay(self):
        trace = record_two_frames().to_json()
        frames_v2 = replay(trace)
        frames_v1 = replay(inline_v1(trace))
        assert [len(f.draw_calls) for f in frames_v1] \
            == [len(f.draw_calls) for f in frames_v2]
        call_v1 = frames_v1[0].draw_calls[0]
        call_v2 = frames_v2[0].draw_calls[0]
        assert np.array_equal(call_v1.vbo.data, call_v2.vbo.data)
        assert np.array_equal(call_v1.ibo.indices, call_v2.ibo.indices)
        assert np.array_equal(call_v1.textures["albedo"].data,
                              call_v2.textures["albedo"].data)


class TestTraceDecodeErrors:
    """Corrupt or truncated traces die with one typed error."""

    def decode_error(self):
        from repro.gl.trace import TraceDecodeError
        return TraceDecodeError

    def test_truncated_json_rejected(self):
        trace = record_two_frames().to_json()
        with pytest.raises(self.decode_error()):
            replay(trace[:len(trace) // 2])

    def test_non_object_root_rejected(self):
        with pytest.raises(self.decode_error()):
            replay('[1, 2, 3]')

    @pytest.mark.parametrize("table", ["buffers", "textures"])
    def test_v2_requires_intern_tables(self, table):
        import json
        doc = json.loads(record_two_frames().to_json())
        del doc[table]
        with pytest.raises(self.decode_error()) as excinfo:
            replay(json.dumps(doc))
        assert excinfo.value.detail == table

    def test_unknown_buffer_ref_names_its_location(self):
        import json
        doc = json.loads(record_two_frames().to_json())
        doc["frames"][0]["draw_calls"][0]["indices"] = "feedfacedeadbeef"
        with pytest.raises(self.decode_error()) as excinfo:
            replay(json.dumps(doc))
        assert excinfo.value.detail == "frames[0].draw_calls[0].indices"

    def test_unknown_texture_ref_names_its_location(self):
        import json
        doc = json.loads(record_two_frames().to_json())
        doc["frames"][0]["draw_calls"][0]["textures"]["albedo"] = "nope"
        with pytest.raises(self.decode_error()) as excinfo:
            replay(json.dumps(doc))
        assert excinfo.value.detail \
            == "frames[0].draw_calls[0].textures.albedo"

    def test_missing_frame_fields_rejected(self):
        import json
        doc = json.loads(record_two_frames().to_json())
        del doc["frames"][1]["draw_calls"]
        with pytest.raises(self.decode_error()) as excinfo:
            replay(json.dumps(doc))
        assert "frames[1]" in excinfo.value.detail

    def test_non_call_object_rejected(self):
        import json
        doc = json.loads(record_two_frames().to_json())
        doc["frames"][0]["draw_calls"][0] = 17
        with pytest.raises(self.decode_error()):
            replay(json.dumps(doc))
