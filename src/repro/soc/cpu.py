"""CPU cluster traffic model with frame-lifecycle dependencies.

The paper's case study I shows that what breaks trace-based evaluation is
exactly the *feedback structure* of CPU traffic: the app thread works hard
preparing a frame, then goes nearly idle waiting for the GPU (Fig. 14-7),
and the rate it makes progress depends on the memory service it receives.

:class:`CPUCore` reproduces that mechanism rather than replaying a trace:

* it keeps a bounded number of outstanding misses (MLP window);
* each completed request is followed by a think time before the next
  issues, so worse memory latency genuinely slows the core down;
* addresses walk sequential runs inside a per-core working set with a
  configurable locality run length, giving CPUs their row-buffer-friendly
  pattern;
* the *app core* runs in work quanta: :meth:`start_job` arms a request
  quota and fires a callback when the quota completes — the SoC's render
  loop uses this for the "CPU prepares the frame" phase;
* *background cores* run continuously at per-core intensities, giving the
  TCM classifier a population of light and heavy threads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import EventQueue
from repro.common.ports import RequestPort
from repro.common.stats import StatGroup
from repro.memory.request import MemRequest, SourceType

LINE = 128


@dataclass
class CPUCoreConfig:
    """Traffic shape for one core."""

    think_time: int = 40             # ticks between a completion and next issue
    outstanding: int = 4             # MLP window
    run_length: int = 8              # sequential lines before jumping
    working_set_bytes: int = 2 * 1024 * 1024
    write_fraction: float = 0.3
    active: bool = True              # background cores: emit continuously


class CPUCore:
    """One core's memory-side behavior (see module docstring)."""

    def __init__(self, events: EventQueue, core_id: int,
                 submit, config: CPUCoreConfig, base_address: int,
                 seed: int = 0) -> None:
        self.events = events
        self.core_id = core_id
        self.config = config
        self.base_address = base_address
        self.stats = StatGroup(f"cpu{core_id}")
        # ``submit`` may be a legacy callable or any port-connectable
        # target (the NoC, a memory system); requests leave through a
        # timing port so bounded links can backpressure the core.
        self.port = RequestPort(f"cpu{core_id}.mem", owner=self,
                                on_retry=self._retry_send)
        self.port.connect(submit)
        self._pending: Optional[MemRequest] = None   # blocked at the port
        self._rng = random.Random((seed << 8) | core_id)
        self._in_flight = 0
        self._run_remaining = 0
        self._cursor = 0
        # Job mode (app thread): issues and completions tracked separately
        # so exactly ``num_requests`` are issued per job.
        self._job_to_issue = 0
        self._job_to_complete = 0
        self._job_done_cb: Optional[Callable[[], None]] = None
        self._continuous = config.active

    # -- job API (app thread) --------------------------------------------------

    def start_job(self, num_requests: int,
                  on_done: Callable[[], None]) -> None:
        """Arm a work quantum: ``num_requests`` completions then callback."""
        if self._job_to_complete > 0:
            raise RuntimeError(f"core {self.core_id} already has a job")
        self._job_to_issue = num_requests
        self._job_to_complete = num_requests
        self._job_done_cb = on_done
        if num_requests <= 0:
            self._finish_job()
            return
        self._pump()

    def _finish_job(self) -> None:
        callback = self._job_done_cb
        self._job_done_cb = None
        self._job_to_issue = 0
        self._job_to_complete = 0
        if callback is not None:
            callback()

    # -- continuous mode (background threads) ------------------------------------

    def start_background(self) -> None:
        self._continuous = True
        self._pump()

    def stop_background(self) -> None:
        self._continuous = False

    # -- issue machinery -------------------------------------------------------------

    @property
    def _wants_to_issue(self) -> bool:
        return self._continuous or self._job_to_issue > 0

    def _pump(self) -> None:
        while (self._pending is None
               and self._in_flight < self.config.outstanding
               and self._wants_to_issue):
            self._issue()

    def _issue(self) -> None:
        address = self._next_address()
        write = self._rng.random() < self.config.write_fraction
        request = MemRequest(address=address, size=LINE, write=write,
                             source=SourceType.CPU, source_id=self.core_id,
                             callback=self._completed)
        if self.port.try_send(request):
            self._sent()
        else:
            # Backpressure: hold the request (its address/write draws are
            # already made, so the RNG streams stay aligned) and stall the
            # issue window until the port's retry.
            self.stats.counter("stalled_sends").add()
            self._pending = request

    def _sent(self) -> None:
        if self._job_to_issue > 0:
            self._job_to_issue -= 1
        self._in_flight += 1
        self.stats.counter("requests").add()

    def _retry_send(self) -> None:
        request = self._pending
        if request is None:
            return
        if self.port.try_send(request):
            self._pending = None
            self._sent()
            self._pump()

    def _next_address(self) -> int:
        if self._run_remaining == 0:
            lines = self.config.working_set_bytes // LINE
            self._cursor = self._rng.randrange(lines)
            self._run_remaining = self.config.run_length
        address = self.base_address + (self._cursor % (
            self.config.working_set_bytes // LINE)) * LINE
        self._cursor += 1
        self._run_remaining -= 1
        return address

    def _completed(self, request: MemRequest) -> None:
        self._in_flight -= 1
        self.stats.histogram("latency").record(request.latency)
        if self._job_to_complete > 0:
            self._job_to_complete -= 1
            if self._job_to_complete == 0:
                self._finish_job()
                if not self._continuous:
                    return
        if self._wants_to_issue:
            self.events.schedule(self.config.think_time, self._pump)


#: Named core personalities for asymmetric (big/little) clusters.  Each
#: entry is ``(traffic shape, frame_coupled)`` — frame-coupled cores run
#: during the CPU prepare phase and pause while the GPU renders.  The
#: first four are the legacy graded mix (see :data:`LEGACY_CORE_MIX`);
#: ``big``/``little`` model a heterogeneous cluster: big cores do heavy,
#: frame-coupled work, little cores tick along continuously with light,
#: latency-sensitive traffic.
CORE_PROFILES: dict[str, tuple[CPUCoreConfig, bool]] = {
    # The app thread: bursty, sequential (row-hit-friendly) frame
    # preparation.  FR-FCFS already serves streams like this well, so
    # DASH's CPU priority changes its service only modestly — matching
    # the paper, where DASH does not speed the app up.
    "app": (CPUCoreConfig(think_time=40, outstanding=8, run_length=32,
                          active=False), False),
    # A streaming, memory-intensive service thread — the TCM classifier's
    # "intensive" population.  It must dominate total CPU bandwidth so
    # the 15% cluster budget (Table 3) puts the other threads in the
    # non-intensive cluster.  Its long row-hit runs are what FR-FCFS
    # naturally favors.
    "streaming": (CPUCoreConfig(think_time=2, outstanding=8,
                                run_length=32), True),
    # Latency-sensitive, low-locality threads — the "non-intensive"
    # population DASH always prioritizes.  Their row-miss requests are
    # served *last* by FR-FCFS but *first* by DASH, where each one breaks
    # a GPU row-hit run (the Fig. 9/14 mechanism).
    "interactive": (CPUCoreConfig(think_time=70, outstanding=2,
                                  run_length=1), False),
    "background": (CPUCoreConfig(think_time=140, outstanding=1,
                                 run_length=1), False),
    # Asymmetric big/little personalities (topology-assembled clusters).
    "big": (CPUCoreConfig(think_time=8, outstanding=8, run_length=16),
            True),
    "little": (CPUCoreConfig(think_time=160, outstanding=1, run_length=2),
               False),
}

#: The pre-topology default: profiles cycled in this order, core 1 the
#: only frame-coupled core.  Kept exactly as the seed wired it so default
#: runs stay bit-identical.
LEGACY_CORE_MIX = ("app", "streaming", "interactive", "background")


class CPUCluster:
    """Core 0 is the app thread; the rest are background threads.

    Background intensities are graded (heavy, moderate, light, ...) so the
    TCM classifier sees a realistic mix; see :data:`CORE_PROFILES` for the
    personalities.  With ``core_types=None`` the legacy graded four-profile
    cycle is used (bit-identical to the seed); an explicit tuple of
    profile names (validated against
    :data:`repro.common.config.CPU_CORE_TYPES`) assembles an asymmetric
    cluster — e.g. ``("app", "big", "little", "little")``.
    """

    def __init__(self, events: EventQueue, submit,
                 num_cores: int = 4, seed: int = 7,
                 base_address: int = 0x8000_0000,
                 core_types: Optional[tuple[str, ...]] = None) -> None:
        if num_cores < 1:
            raise ValueError("need at least one CPU core")
        self.events = events
        self.cores: list[CPUCore] = []
        if core_types is None:
            profiles = [CORE_PROFILES[name][0] for name in LEGACY_CORE_MIX]
            configs = [profiles[core_id % len(profiles)]
                       for core_id in range(num_cores)]
            # The legacy cluster hardwires core 1 as the sole
            # frame-coupled core regardless of cycling.
            self._frame_coupled = [1] if num_cores > 1 else []
        else:
            if len(core_types) != num_cores:
                raise ValueError(
                    f"{len(core_types)} core types for {num_cores} cores")
            unknown = [t for t in core_types if t not in CORE_PROFILES]
            if unknown:
                raise ValueError(
                    f"unknown core types {unknown}; known: "
                    f"{', '.join(CORE_PROFILES)}")
            configs = [CORE_PROFILES[name][0] for name in core_types]
            self._frame_coupled = [i for i, name in enumerate(core_types)
                                   if CORE_PROFILES[name][1]]
        self.core_types = core_types
        for core_id in range(num_cores):
            core = CPUCore(events, core_id, submit, configs[core_id],
                           base_address=base_address + core_id * 0x0100_0000,
                           seed=seed)
            self.cores.append(core)

    @property
    def app_core(self) -> CPUCore:
        return self.cores[0]

    @property
    def frame_coupled_cores(self) -> list[CPUCore]:
        """Cores whose activity follows the frame lifecycle."""
        return [self.cores[i] for i in self._frame_coupled]

    def start_background(self) -> None:
        for core in self.cores[1:]:
            core.start_background()

    def stop_background(self) -> None:
        for core in self.cores[1:]:
            core.stop_background()

    def set_phase(self, phase: str) -> None:
        """Frame-lifecycle hook: "prepare" wakes the frame-coupled cores,
        "render" pauses them (they drain their in-flight window)."""
        if phase not in ("prepare", "render"):
            raise ValueError(f"unknown phase {phase!r}")
        for core in self.frame_coupled_cores:
            if phase == "prepare":
                core.start_background()
            else:
                core.stop_background()

    def total_requests(self) -> int:
        return sum(core.stats.counter("requests").value for core in self.cores)
