"""Fixed-function pipeline stage plumbing.

A :class:`StageQueue` models a hardware stage with a service rate: items
queue up, the stage processes them one at a time, each item occupying the
stage for ``cost_fn(item)`` cycles (1 for most stages; the coarse
rasterizer charges one cycle per candidate tile, per Table 7's
"1 raster tile/cycle" throughputs).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.common.events import EventQueue
from repro.common.stats import StatGroup


class StageQueue:
    """A single-server queue with per-item service cost in cycles."""

    def __init__(self, events: EventQueue, name: str,
                 process: Callable[[object], None],
                 cost_fn: Optional[Callable[[object], int]] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.events = events
        self.name = name
        self.process = process
        self.cost_fn = cost_fn or (lambda item: 1)
        self.stats = stats or StatGroup(name)
        self._queue: deque = deque()
        self._busy = False

    def submit(self, item: object) -> None:
        self._queue.append(item)
        self.stats.counter("items").add()
        self.stats.histogram("queue_depth").record(len(self._queue))
        if not self._busy:
            self._busy = True
            self.events.schedule(0, self._serve)

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return not self._busy and not self._queue

    def _serve(self) -> None:
        if not self._queue:
            self._busy = False
            return
        item = self._queue.popleft()
        cost = max(1, int(self.cost_fn(item)))
        self.stats.counter("busy_cycles").add(cost)
        self.process(item)
        self.events.schedule(cost, self._serve)
