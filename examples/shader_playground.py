#!/usr/bin/env python
"""Shader toolchain tour: compile, inspect and run a custom shader.

Compiles a procedural-rings fragment shader written in the GLSL-like
shader language down to the PTX-like ISA (the TGSItoPTX analog), dumps the
instruction listing, renders a fullscreen quad with it, and saves the
image.

Run:  python examples/shader_playground.py [rings.ppm]
"""

import sys

import numpy as np

from repro.geometry.mesh import Mesh
from repro.gl.context import GLContext
from repro.gl.state import CullMode
from repro.pipeline.renderer import ReferenceRenderer
from repro.shader.compiler import compile_shader
from repro.shader.isa import LatencyClass

VS = """
in vec3 position;
in vec2 uv;
out vec2 v_uv;
void main() {
    gl_Position = vec4(position, 1.0);
    v_uv = uv;
}
"""

# Concentric rings via sin(distance); a divergent branch tints one half.
FS = """
in vec2 v_uv;
uniform vec4 tint;
void main() {
    vec2 centered = v_uv - vec2(0.5, 0.5);
    float d = length(centered);
    float wave = 0.5 + 0.5 * sin(d * 40.0);
    vec3 color = vec3(wave) * tint.xyz;
    if (v_uv.x > 0.5) {
        color.z = 1.0 - color.z;
    }
    gl_FragColor = vec4(color, 1.0);
}
"""


def fullscreen_quad() -> Mesh:
    return Mesh(
        positions=np.array([[-1.0, -1.0, 0.0], [1.0, -1.0, 0.0],
                            [-1.0, 1.0, 0.0], [1.0, 1.0, 0.0]]),
        indices=np.array([0, 1, 2, 1, 3, 2]),
        uvs=np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
        name="quad",
    )


def main() -> None:
    program = compile_shader(FS, "fragment", name="rings")
    print(f"compiled {program.name!r}: {len(program.instructions)} "
          f"instructions, {program.num_regs} registers, "
          f"{program.num_preds} predicates")
    by_class = {
        cls.value: sum(1 for i in program.instructions
                       if i.op.latency_class is cls)
        for cls in LatencyClass
    }
    print(f"instruction mix: {by_class}")
    print("listing:")
    for pc, instr in enumerate(program.instructions):
        print(f"  {pc:3d}: {instr}")

    ctx = GLContext(192, 192)
    ctx.use_program(VS, FS)
    ctx.set_state(cull=CullMode.NONE)
    ctx.set_uniform("tint", [1.0, 0.85, 0.4, 1.0])
    ctx.draw_mesh(fullscreen_quad())
    fb, stats = ReferenceRenderer(192, 192).render(ctx.end_frame())
    output = sys.argv[1] if len(sys.argv) > 1 else "rings.ppm"
    fb.save_ppm(output)
    print(f"\nrendered {stats.fragments_shaded} fragments -> {output}")


if __name__ == "__main__":
    main()
