"""Tests for the CPU traffic model."""

import pytest

from repro.common.config import DRAMConfig
from repro.common.events import EventQueue
from repro.memory.builders import build_baseline_memory
from repro.memory.request import SourceType
from repro.soc.cpu import CPUCluster, CPUCore, CPUCoreConfig


def make_system():
    events = EventQueue()
    memory = build_baseline_memory(events, DRAMConfig(channels=1))
    return events, memory


class TestCPUCore:
    def test_job_completes_and_fires_callback(self):
        events, memory = make_system()
        core = CPUCore(events, 0, memory.submit,
                       CPUCoreConfig(active=False), base_address=0)
        done = []
        core.start_job(20, on_done=lambda: done.append(events.now))
        events.run()
        assert len(done) == 1
        assert core.stats.counter("requests").value == 20

    def test_zero_work_job_fires_immediately(self):
        events, memory = make_system()
        core = CPUCore(events, 0, memory.submit,
                       CPUCoreConfig(active=False), base_address=0)
        done = []
        core.start_job(0, on_done=lambda: done.append(True))
        assert done == [True]

    def test_concurrent_jobs_rejected(self):
        events, memory = make_system()
        core = CPUCore(events, 0, memory.submit,
                       CPUCoreConfig(active=False), base_address=0)
        core.start_job(10, on_done=lambda: None)
        with pytest.raises(RuntimeError):
            core.start_job(5, on_done=lambda: None)

    def test_outstanding_window_respected(self):
        events, memory = make_system()
        config = CPUCoreConfig(outstanding=2, active=False)
        core = CPUCore(events, 0, memory.submit, config, base_address=0)
        core.start_job(10, on_done=lambda: None)
        # Before any completion, only the window has issued.
        assert core.stats.counter("requests").value == 2
        events.run()
        assert core.stats.counter("requests").value == 10

    def test_job_duration_depends_on_memory_latency(self):
        """Feedback: slower DRAM -> slower CPU job (the trace-based blind spot)."""
        def run_with(data_rate):
            events = EventQueue()
            memory = build_baseline_memory(
                events, DRAMConfig(channels=1, data_rate_mbps=data_rate))
            core = CPUCore(events, 0, memory.submit,
                           CPUCoreConfig(active=False), base_address=0)
            done = []
            core.start_job(50, on_done=lambda: done.append(events.now))
            events.run()
            return done[0]

        assert run_with(133) > run_with(1333) * 1.5

    def test_locality_pattern(self):
        """Run-length sequential accesses produce row-buffer hits."""
        events, memory = make_system()
        core = CPUCore(events, 0, memory.submit,
                       CPUCoreConfig(run_length=16, active=False),
                       base_address=0)
        core.start_job(64, on_done=lambda: None)
        events.run()
        assert memory.row_hit_rate() > 0.4

    def test_deterministic_with_seed(self):
        def run_once():
            events, memory = make_system()
            core = CPUCore(events, 0, memory.submit,
                           CPUCoreConfig(active=False), base_address=0,
                           seed=3)
            done = []
            core.start_job(30, on_done=lambda: done.append(events.now))
            events.run()
            return done[0]

        assert run_once() == run_once()

    def test_background_mode_runs_until_stopped(self):
        events, memory = make_system()
        core = CPUCore(events, 1, memory.submit,
                       CPUCoreConfig(think_time=10), base_address=0)
        core.start_background()
        events.run_until(5_000)
        issued = core.stats.counter("requests").value
        assert issued > 10
        core.stop_background()
        events.run()
        final = core.stats.counter("requests").value
        assert final - issued <= core.config.outstanding


class TestCPUCluster:
    def test_cluster_profile_grading(self):
        """Background cores have distinct intensities for TCM to classify."""
        events, memory = make_system()
        cluster = CPUCluster(events, memory.submit, num_cores=4)
        cluster.start_background()
        events.run_until(30_000)
        cluster.stop_background()
        requests = [core.stats.counter("requests").value
                    for core in cluster.cores]
        assert requests[0] == 0          # app core idle without a job
        assert requests[1] > requests[3] * 2   # heavy vs light thread

    def test_app_core_accessor(self):
        events, memory = make_system()
        cluster = CPUCluster(events, memory.submit)
        assert cluster.app_core is cluster.cores[0]

    def test_needs_one_core(self):
        events, memory = make_system()
        with pytest.raises(ValueError):
            CPUCluster(events, memory.submit, num_cores=0)

    def test_total_requests(self):
        events, memory = make_system()
        cluster = CPUCluster(events, memory.submit)
        cluster.app_core.start_job(10, on_done=lambda: None)
        events.run()
        assert cluster.total_requests() == 10
