"""Configuration dataclasses and the paper's configuration presets.

Two presets mirror the paper's tables:

* :func:`case_study1_config` — Table 5 (full-system SoC: 4 CPUs, 4 SIMT
  cores, 2-channel LPDDR3).
* :func:`case_study2_gpu_config` — Table 7 (standalone GPU: 6 SIMT clusters,
  192 lanes, 4-channel LPDDR3-1600).

Both presets also come in ``scaled()`` form: identical structure with a
smaller framebuffer and cache sizes reduced proportionally, so tests and CI
benchmarks finish in seconds.  The scaling knob is explicit and documented —
the paper's absolute sizes remain the default.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
import typing
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache."""

    size_bytes: int
    line_bytes: int = 128
    ways: int = 4
    hit_latency: int = 1
    mshr_entries: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class SIMTCoreConfig:
    """One SIMT core (shader core), Table 2 components."""

    warp_size: int = 32
    max_warps: int = 64
    num_schedulers: int = 2
    alu_latency: int = 4
    sfu_latency: int = 16
    max_threads: int = 2048
    registers: int = 65536
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(4 * 1024, ways=4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(16 * 1024, ways=4))
    l1t: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, ways=4))
    l1z: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, ways=4))
    l1c: CacheConfig = field(default_factory=lambda: CacheConfig(8 * 1024, ways=4))


@dataclass(frozen=True)
class RasterConfig:
    """Fixed-function raster pipeline parameters (Table 7)."""

    raster_tile_px: int = 4          # raster tile is NxN pixels
    tc_tile_raster_tiles: int = 2    # TC tile is NxN raster tiles
    tc_engines_per_cluster: int = 2
    tc_bins_per_engine: int = 4
    coarse_tiles_per_cycle: int = 1
    fine_tiles_per_cycle: int = 1
    hiz_tiles_per_cycle: int = 1
    hiz_enabled: bool = True
    tc_flush_timeout: int = 32       # cycles without new raster tiles

    @property
    def tc_tile_px(self) -> int:
        return self.raster_tile_px * self.tc_tile_raster_tiles


@dataclass(frozen=True)
class GPUConfig:
    """The Emerald GPU: clusters of SIMT cores plus shared L2/AOU."""

    num_clusters: int = 4
    cores_per_cluster: int = 1
    core: SIMTCoreConfig = field(default_factory=SIMTCoreConfig)
    raster: RasterConfig = field(default_factory=RasterConfig)
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(128 * 1024, ways=8, hit_latency=20))
    noc_latency: int = 8             # cluster <-> L2 interconnect latency
    vertex_batch_warps: int = 2      # vertex warps launched per core per pass
    output_vertex_buffer_vertices: int = 9 * 1024
    pmrb_entries: int = 64           # primitive-mask reorder buffer per cluster
    work_tile_size: int = 1          # WT: round-robin granularity in TC tiles
    clock_ghz: float = 1.0

    @property
    def num_cores(self) -> int:
        return self.num_clusters * self.cores_per_cluster


@dataclass(frozen=True)
class DRAMTiming:
    """Simplified LPDDR timing (in controller cycles)."""

    t_rcd: int = 15     # activate -> column command
    t_rp: int = 15      # precharge
    t_cas: int = 15     # column access strobe
    t_burst: int = 4    # data burst occupancy per access
    t_wr: int = 12      # write recovery


@dataclass(frozen=True)
class DRAMConfig:
    """Channels/ranks/banks geometry + data rate."""

    channels: int = 2
    ranks: int = 1
    banks: int = 8
    row_bytes: int = 2048
    bus_bytes: int = 4              # 32-bit wide channel
    data_rate_mbps: int = 1333      # per pin
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    queue_depth: int = 64

    @property
    def peak_bytes_per_ctrl_cycle(self) -> float:
        # double data rate bus: 2 transfers per controller cycle
        return self.bus_bytes * 2


@dataclass(frozen=True)
class DisplayConfig:
    """Display controller: resolution, refresh deadline, burst size."""

    width: int = 1024
    height: int = 768
    bytes_per_pixel: int = 4
    refresh_fps: int = 60
    burst_bytes: int = 256
    abort_fraction: float = 0.5     # abort a scanout this far behind schedule

    @property
    def frame_bytes(self) -> int:
        return self.width * self.height * self.bytes_per_pixel


@dataclass(frozen=True)
class CPUConfig:
    """CPU cluster model for the full-system mode."""

    num_cores: int = 4
    clock_ghz: float = 2.0
    l2_kb_per_core: int = 1024
    # Mean outstanding-miss traffic intensity per phase, requests per 1000
    # GPU-clock ticks (the workload model modulates around these).
    busy_intensity: float = 24.0
    idle_intensity: float = 1.0


@dataclass(frozen=True)
class SoCConfig:
    """Full-system assembly used by case study I."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    display: DisplayConfig = field(default_factory=DisplayConfig)
    framebuffer_width: int = 1024
    framebuffer_height: int = 768
    gpu_frame_period_ms: float = 33.0   # Table 3: GPU frame period (30 FPS)
    display_frame_period_ms: float = 16.0
    system_noc_latency: int = 12


def case_study1_config() -> SoCConfig:
    """Table 5: the full-system configuration of case study I."""
    core = SIMTCoreConfig(
        warp_size=32,
        l1d=CacheConfig(16 * 1024, ways=4),
        l1t=CacheConfig(64 * 1024, ways=4),
        l1z=CacheConfig(32 * 1024, ways=4),
    )
    gpu = GPUConfig(
        num_clusters=4,
        cores_per_cluster=1,
        core=core,
        l2=CacheConfig(128 * 1024, ways=8, hit_latency=20),
        clock_ghz=0.95,
    )
    return SoCConfig(
        gpu=gpu,
        cpu=CPUConfig(num_cores=4, clock_ghz=2.0),
        dram=DRAMConfig(channels=2, data_rate_mbps=1333),
        display=DisplayConfig(width=1024, height=768),
        framebuffer_width=1024,
        framebuffer_height=768,
    )


def case_study2_gpu_config() -> GPUConfig:
    """Table 7: the standalone GPU configuration of case study II."""
    core = SIMTCoreConfig(
        warp_size=32,
        max_threads=2048,
        registers=65536,
        l1d=CacheConfig(32 * 1024, ways=8),
        l1t=CacheConfig(48 * 1024, line_bytes=128, ways=24),
        l1z=CacheConfig(32 * 1024, ways=8),
    )
    raster = RasterConfig(
        raster_tile_px=4,
        tc_tile_raster_tiles=2,      # TC tile = 2x2 raster tiles (8x8 px)
        tc_engines_per_cluster=2,
        tc_bins_per_engine=4,
    )
    return GPUConfig(
        num_clusters=6,
        cores_per_cluster=1,
        core=core,
        raster=raster,
        l2=CacheConfig(2 * 1024 * 1024, ways=32, hit_latency=20),
        clock_ghz=1.0,
    )


def scaled(config: SoCConfig, width: int = 192, height: int = 144) -> SoCConfig:
    """A structurally identical SoC config with a smaller framebuffer.

    Cache and DRAM geometry are unchanged; only the rendered resolution and
    display resolution shrink so a full frame simulates in seconds.
    """
    return replace(
        config,
        display=replace(config.display, width=width, height=height),
        framebuffer_width=width,
        framebuffer_height=height,
    )


def scaled_gpu(config: GPUConfig) -> GPUConfig:
    """A smaller-cache variant of a GPU config for fast unit tests."""
    core = replace(
        config.core,
        l1d=CacheConfig(4 * 1024, ways=4),
        l1t=CacheConfig(8 * 1024, ways=4),
        l1z=CacheConfig(4 * 1024, ways=4),
        l1c=CacheConfig(2 * 1024, ways=2),
        l1i=CacheConfig(2 * 1024, ways=2),
    )
    return replace(config, core=core, l2=CacheConfig(64 * 1024, ways=8, hit_latency=20))


# ---------------------------------------------------------------------------
# Topology descriptors (DESIGN.md §11)
#
# A :class:`SoCTopology` is a typed, serializable description of *what to
# assemble*: GPU cluster count, CPU core mix, one or more DRAM subsystems
# (each with its own scheduler / router / per-channel address mappings),
# and the NoC's per-link bandwidth budgets.  The assembly path
# (:mod:`repro.memory.builders`, :mod:`repro.soc.noc`,
# :class:`repro.soc.soc.EmeraldSoC`) consumes descriptors instead of
# name-strings, and the fleet's result cache hashes them — two runs share
# a cache entry only if they simulated the same machine.
#
# Serialization is canonical-JSON round-trippable and validation is
# strict: unknown keys, wrong types and out-of-range values all raise
# :class:`ConfigError` naming the offending dotted path, never a bare
# TypeError deep inside a constructor.
# ---------------------------------------------------------------------------


class ConfigError(ValueError):
    """A configuration value or document failed validation.

    ``path`` names the offending field as a dotted path (``$`` is the
    document root) so sweep tooling can say *which* knob is wrong.
    """

    def __init__(self, message: str, path: str = "$") -> None:
        super().__init__(f"{path}: {message}" if path != "$" else message)
        self.path = path


def config_to_dict(obj):
    """Serialize a (possibly nested) frozen config dataclass to plain data.

    Inverse of :func:`config_from_dict`; tuples become lists (JSON has no
    tuple), scalars pass through unchanged.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: config_to_dict(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [config_to_dict(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigError(f"cannot serialize {type(obj).__name__}")


def _coerce(hint, value, path: str):
    """Validate ``value`` against a type hint, recursing into dataclasses."""
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is getattr(types, "UnionType", None):
        args = typing.get_args(hint)
        if value is None:
            if type(None) in args:
                return None
            raise ConfigError("must not be null", path)
        inner = [a for a in args if a is not type(None)]
        return _coerce(inner[0], value, path)
    if origin is tuple:
        item_hint = typing.get_args(hint)[0]
        if not isinstance(value, (list, tuple)):
            raise ConfigError(
                f"expected a list, got {type(value).__name__}", path)
        return tuple(_coerce(item_hint, item, f"{path}[{i}]")
                     for i, item in enumerate(value))
    if dataclasses.is_dataclass(hint):
        return config_from_dict(hint, value, path=path)
    if hint is bool:
        if not isinstance(value, bool):
            raise ConfigError(
                f"expected a boolean, got {value!r}", path)
        return value
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"expected an integer, got {value!r}", path)
        return value
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"expected a number, got {value!r}", path)
        return float(value)
    if hint is str:
        if not isinstance(value, str):
            raise ConfigError(
                f"expected a string, got {value!r}", path)
        return value
    raise ConfigError(f"unsupported config field type {hint!r}", path)


def config_from_dict(cls, doc, path: str = "$"):
    """Parse plain data back into config dataclass ``cls``, strictly.

    Unknown keys are rejected (a typo'd knob must not silently fall back
    to its default), types are checked recursively, and any constructor
    validation error (:class:`ValueError`) is re-raised as a
    :class:`ConfigError` carrying the dotted path.
    """
    if not isinstance(doc, dict):
        raise ConfigError(
            f"expected an object for {cls.__name__}, "
            f"got {type(doc).__name__}", path)
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(doc) - set(fields)
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} fields: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(fields))})", path)
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for name, fld in fields.items():
        sub = f"{path}.{name}" if path != "$" else name
        if name in doc:
            kwargs[name] = _coerce(hints[name], doc[name], sub)
        elif (fld.default is dataclasses.MISSING
                and fld.default_factory is dataclasses.MISSING):
            raise ConfigError("missing required field", sub)
    try:
        return cls(**kwargs)
    except ConfigError:
        raise
    except ValueError as exc:
        raise ConfigError(str(exc), path) from exc


#: Memory-endpoint scheduler disciplines (Table 6 column).
MEMORY_SCHEDULERS = ("frfcfs", "dash-cpu", "dash-system")
#: Memory-endpoint request routers: ``address`` decodes the channel from
#: address bits (Table 4 interleave); ``source`` partitions channels by
#: traffic class (the HMC organization).
MEMORY_ROUTERS = ("address", "source")
#: Per-channel address-mapping names (repro.memory.address_map).
CHANNEL_MAPPING_NAMES = ("baseline", "ip")
#: CPU core personality names (repro.soc.cpu.CORE_PROFILES).
CPU_CORE_TYPES = ("app", "streaming", "interactive", "background",
                  "big", "little")


@dataclass(frozen=True)
class MemoryTopology:
    """One DRAM subsystem endpoint: geometry + scheduling + routing."""

    name: str = "dram"
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    scheduler: str = "frfcfs"
    router: str = "address"
    # Per-channel address mappings; None resolves to the router's default
    # (all-baseline for ``address``, the half-and-half HMC split for
    # ``source``).
    channel_mappings: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if isinstance(self.channel_mappings, list):
            object.__setattr__(self, "channel_mappings",
                               tuple(self.channel_mappings))
        if not self.name:
            raise ConfigError("memory endpoint name must be non-empty",
                              "name")
        if self.scheduler not in MEMORY_SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {self.scheduler!r}; valid: "
                f"{', '.join(MEMORY_SCHEDULERS)}", "scheduler")
        if self.router not in MEMORY_ROUTERS:
            raise ConfigError(
                f"unknown router {self.router!r}; valid: "
                f"{', '.join(MEMORY_ROUTERS)}", "router")
        if self.router == "source" and self.dram.channels < 2:
            raise ConfigError(
                f"router 'source' partitions channels by traffic class "
                f"and needs at least 2, got {self.dram.channels}",
                "dram.channels")
        if self.channel_mappings is not None:
            if len(self.channel_mappings) != self.dram.channels:
                raise ConfigError(
                    f"{len(self.channel_mappings)} mappings for "
                    f"{self.dram.channels} channels (need one per channel)",
                    "channel_mappings")
            for i, mapping in enumerate(self.channel_mappings):
                if mapping not in CHANNEL_MAPPING_NAMES:
                    raise ConfigError(
                        f"unknown mapping {mapping!r}; valid: "
                        f"{', '.join(CHANNEL_MAPPING_NAMES)}",
                        f"channel_mappings[{i}]")


@dataclass(frozen=True)
class CPUClusterTopology:
    """The CPU side: core count and (optionally) an explicit core mix.

    ``core_types`` of None keeps the legacy graded four-profile cycle
    (bit-identical to the seed); an explicit tuple assembles asymmetric
    clusters, e.g. ``("app", "big", "little", "little")``.  Core 0 must be
    the ``app`` thread — the render loop drives it.
    """

    num_cores: int = 4
    core_types: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if isinstance(self.core_types, list):
            object.__setattr__(self, "core_types", tuple(self.core_types))
        if self.num_cores < 1:
            raise ConfigError(
                f"need at least one CPU core, got {self.num_cores}",
                "num_cores")
        if self.core_types is not None:
            if len(self.core_types) != self.num_cores:
                raise ConfigError(
                    f"{len(self.core_types)} core types for "
                    f"{self.num_cores} cores (need one per core)",
                    "core_types")
            for i, kind in enumerate(self.core_types):
                if kind not in CPU_CORE_TYPES:
                    raise ConfigError(
                        f"unknown core type {kind!r}; valid: "
                        f"{', '.join(CPU_CORE_TYPES)}", f"core_types[{i}]")
            if self.core_types[0] != "app":
                raise ConfigError(
                    f"core 0 must be 'app' (the render loop's thread), "
                    f"got {self.core_types[0]!r}", "core_types[0]")


@dataclass(frozen=True)
class NoCLinkBudget:
    """Bandwidth/capacity budget for one NoC link (None = unbounded)."""

    capacity: Optional[int] = None
    bytes_per_cycle: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError(
                f"link capacity must be >= 1, got {self.capacity}",
                "capacity")
        if self.bytes_per_cycle is not None and self.bytes_per_cycle <= 0:
            raise ConfigError(
                f"bytes_per_cycle must be positive, "
                f"got {self.bytes_per_cycle}", "bytes_per_cycle")


@dataclass(frozen=True)
class NoCTopology:
    """System NoC: latency, endpoint interleave, per-link budgets.

    ``links`` of None means every link is unbounded (bit-identical to the
    seed's pure-latency hop); otherwise one budget per memory endpoint.
    ``interleave_bytes`` is the address-interleave granularity across
    endpoints when there is more than one.
    """

    latency: int = 12
    interleave_bytes: int = 4096
    links: Optional[tuple[NoCLinkBudget, ...]] = None

    def __post_init__(self) -> None:
        if isinstance(self.links, list):
            object.__setattr__(self, "links", tuple(self.links))
        if self.latency < 0:
            raise ConfigError(
                f"latency must be non-negative, got {self.latency}",
                "latency")
        if self.interleave_bytes < 128 or self.interleave_bytes % 128:
            raise ConfigError(
                f"interleave_bytes must be a positive multiple of the "
                f"128B line size, got {self.interleave_bytes}",
                "interleave_bytes")


@dataclass(frozen=True)
class SoCTopology:
    """The full declarative machine description (see section header)."""

    name: str = "soc"
    gpu: GPUConfig = field(default_factory=GPUConfig)
    cpu: CPUClusterTopology = field(default_factory=CPUClusterTopology)
    memory: tuple[MemoryTopology, ...] = field(
        default_factory=lambda: (MemoryTopology(),))
    noc: NoCTopology = field(default_factory=NoCTopology)

    def __post_init__(self) -> None:
        if isinstance(self.memory, list):
            object.__setattr__(self, "memory", tuple(self.memory))
        if not self.memory:
            raise ConfigError("need at least one memory endpoint", "memory")
        names = [endpoint.name for endpoint in self.memory]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"memory endpoint names must be unique, got {names}",
                "memory")
        if len(self.memory) > 1:
            for i, endpoint in enumerate(self.memory):
                if endpoint.scheduler != "frfcfs":
                    # DASH is one shared classifier state wired into the
                    # render loop and display; it has no multi-endpoint
                    # story yet.
                    raise ConfigError(
                        f"scheduler {endpoint.scheduler!r} supports a "
                        f"single memory endpoint only",
                        f"memory[{i}].scheduler")
        if (self.noc.links is not None
                and len(self.noc.links) != len(self.memory)):
            raise ConfigError(
                f"{len(self.noc.links)} link budgets for "
                f"{len(self.memory)} memory endpoints (need one per "
                f"endpoint)", "noc.links")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "SoCTopology":
        return config_from_dict(cls, doc)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SoCTopology":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"not valid JSON ({exc})") from exc
        return cls.from_dict(doc)

    def topology_hash(self) -> str:
        """Digest of the *structure* (the label does not change the
        machine): two topologies hash equal iff they assemble identical
        systems."""
        doc = self.to_dict()
        del doc["name"]
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
