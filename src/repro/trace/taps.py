"""Per-link tracing as a port interposition.

:class:`TraceTap` is the tracing analogue of the health taps
(:mod:`repro.health.interpose`): a synchronous
:class:`~repro.common.ports.PortTap` stage that records each memory
request's flight across a link as a Chrome async span (``b``/``e``), plus
retry/busy instants and an in-flight occupancy counter.

Placement matters: the SoC interposes the TraceTap **outermost** on the
NoC request path (above the watchdog and resilience taps), so retry
clones — which the resilience tap re-injects below itself — cross the
trace tap only once per logical request.  Span ids live in the request's
shared ``metadata``, so a clone carrying the data back still closes the
original's span on the unwind.

Like every tap, this stage adds no events; interposing it on an unbounded
path leaves the event schedule untouched.
"""

from __future__ import annotations

from repro.common.ports import PortTap

TRACE_KEY = "trace_span"


class TraceTap(PortTap):
    """Record request/response/retry activity crossing one link."""

    def __init__(self, tracer, track: str = "noc",
                 name: str = "noc.trace") -> None:
        super().__init__(name)
        self.tracer = tracer
        self.track = track
        self._in_flight = 0

    def _recv_request(self, request) -> bool:
        accepted = super()._recv_request(request)
        if not accepted:
            self.tracer.instant(self.track, "busy",
                                args={"owner": request.owner})
        return accepted

    def _recv_retry(self) -> None:
        self.tracer.instant(self.track, "retry")
        super()._recv_retry()

    def on_request(self, request) -> None:
        rw = "w" if request.write else "r"
        name = f"{request.owner}.{rw}"
        aid = self.tracer.next_async_id()
        request.metadata[TRACE_KEY] = (aid, name)
        self._in_flight += 1
        self.tracer.async_begin(self.track, name, aid,
                                args={"address": request.address,
                                      "size": request.size})
        self.tracer.counter(self.track, "in_flight", self._in_flight)

    def on_response(self, request) -> bool:
        span = request.metadata.pop(TRACE_KEY, None)
        if span is not None:
            aid, name = span
            self._in_flight -= 1
            self.tracer.async_end(self.track, name, aid,
                                  args={"attempt": request.attempt})
            self.tracer.counter(self.track, "in_flight", self._in_flight)
        return True
